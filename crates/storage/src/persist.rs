//! The [`Persist`] trait: what a backend must provide to be snapshotted.
//!
//! Each of the five possible-worlds representations encodes its *entire*
//! state (catalog + uncertainty structure) behind a one-byte representation
//! tag, so a snapshot file is self-describing: the reader learns which
//! backend it holds from the payload itself.  `maybms::AnyBackend` uses the
//! tag to dispatch its decode.

use crate::codec::{self, Reader, Writer};
use crate::error::{Result, StorageError};
use ws_core::{WorldSet, Wsd};
use ws_relational::Database;
use ws_urel::UDatabase;
use ws_uwsdt::Uwsdt;

/// Representation tag of a single-world [`Database`].
pub const TAG_DATABASE: u8 = 1;
/// Representation tag of a [`Wsd`].
pub const TAG_WSD: u8 = 2;
/// Representation tag of a [`Uwsdt`].
pub const TAG_UWSDT: u8 = 3;
/// Representation tag of a [`UDatabase`] (U-relations).
pub const TAG_UREL: u8 = 4;
/// Representation tag of an explicit [`WorldSet`].
pub const TAG_WORLDS: u8 = 5;

/// A backend state the durability layer can snapshot and recover.
pub trait Persist: Sized {
    /// Append the representation tag plus the full state to `w`.
    fn encode_state(&self, w: &mut Writer);

    /// Decode a state previously written by [`Persist::encode_state`].
    /// Concrete representations reject a foreign tag; dynamic wrappers
    /// (`maybms::AnyBackend`) dispatch on it.
    fn decode_state(r: &mut Reader) -> Result<Self>;

    /// Drop `__`-prefixed scratch relations (executor temporaries, session
    /// result relations) before the state is persisted, so a checkpoint
    /// taken mid-stream never embalms a scratch relation.  Called on a
    /// *clone* of the live state by [`crate::Durable::checkpoint`].
    fn scrub_scratch(&mut self);

    /// Encode to a standalone byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_state(&mut w);
        w.into_bytes()
    }

    /// Decode from a standalone byte slice, rejecting trailing garbage.
    fn decode_from_slice(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes);
        let state = Self::decode_state(&mut r)?;
        r.finish("backend state")?;
        Ok(state)
    }
}

fn expect_tag(r: &mut Reader, expected: u8, what: &str) -> Result<()> {
    let tag = r.u8("representation tag")?;
    if tag != expected {
        return Err(StorageError::corrupt(format!(
            "snapshot holds representation tag {tag}, expected {expected} ({what})"
        )));
    }
    Ok(())
}

/// The names a scrub must drop: every relation whose name carries the shared
/// `__` scratch prefix of the engine's temporary allocator.
fn scratch_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Vec<String> {
    names
        .into_iter()
        .filter(|n| n.starts_with("__"))
        .map(str::to_string)
        .collect()
}

impl Persist for Database {
    fn encode_state(&self, w: &mut Writer) {
        w.u8(TAG_DATABASE);
        codec::enc_database(w, self);
    }

    fn decode_state(r: &mut Reader) -> Result<Self> {
        expect_tag(r, TAG_DATABASE, "database")?;
        codec::dec_database(r)
    }

    fn scrub_scratch(&mut self) {
        for name in scratch_names(self.relation_names()) {
            self.remove_relation(&name);
        }
    }
}

impl Persist for Wsd {
    fn encode_state(&self, w: &mut Writer) {
        w.u8(TAG_WSD);
        codec::enc_wsd(w, self);
    }

    fn decode_state(r: &mut Reader) -> Result<Self> {
        expect_tag(r, TAG_WSD, "wsd")?;
        codec::dec_wsd(r)
    }

    fn scrub_scratch(&mut self) {
        // `drop_relation` removes the relation's columns from shared
        // components, preserving the correlations of everything else.
        for name in scratch_names(self.relation_names()) {
            let _ = self.drop_relation(&name);
        }
    }
}

impl Persist for Uwsdt {
    fn encode_state(&self, w: &mut Writer) {
        w.u8(TAG_UWSDT);
        codec::enc_uwsdt(w, self);
    }

    fn decode_state(r: &mut Reader) -> Result<Self> {
        expect_tag(r, TAG_UWSDT, "uwsdt")?;
        codec::dec_uwsdt(r)
    }

    fn scrub_scratch(&mut self) {
        for name in scratch_names(self.relation_names()) {
            let _ = self.drop_relation(&name);
        }
    }
}

impl Persist for UDatabase {
    fn encode_state(&self, w: &mut Writer) {
        w.u8(TAG_UREL);
        codec::enc_udatabase(w, self);
    }

    fn decode_state(r: &mut Reader) -> Result<Self> {
        expect_tag(r, TAG_UREL, "urel")?;
        codec::dec_udatabase(r)
    }

    fn scrub_scratch(&mut self) {
        for name in scratch_names(self.relation_names()) {
            self.remove_relation(&name);
        }
    }
}

impl Persist for WorldSet {
    fn encode_state(&self, w: &mut Writer) {
        w.u8(TAG_WORLDS);
        codec::enc_worldset(w, self);
    }

    fn decode_state(r: &mut Reader) -> Result<Self> {
        expect_tag(r, TAG_WORLDS, "worlds")?;
        codec::dec_worldset(r)
    }

    fn scrub_scratch(&mut self) {
        let names: Vec<String> = match self.worlds().first() {
            Some((db, _)) => scratch_names(db.relation_names()),
            None => Vec::new(),
        };
        for name in names {
            ws_relational::QueryBackend::drop_scratch(self, &name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_relational::{Relation, Schema};

    #[test]
    fn all_five_representations_roundtrip_with_their_own_tag() {
        let wsd = ws_core::wsd::example_census_wsd();
        let db = wsd.enumerate_worlds(1 << 20).unwrap()[0].0.clone();
        let uwsdt = ws_uwsdt::from_wsd(&wsd).unwrap();
        let urel = ws_urel::from_wsd(&wsd).unwrap();
        let worlds = wsd.rep().unwrap();

        let bytes = db.encode_to_vec();
        assert_eq!(bytes[0], TAG_DATABASE);
        assert_eq!(Database::decode_from_slice(&bytes).unwrap(), db);

        let bytes = wsd.encode_to_vec();
        assert_eq!(bytes[0], TAG_WSD);
        let decoded = Wsd::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded.encode_to_vec(), bytes);

        let bytes = uwsdt.encode_to_vec();
        assert_eq!(bytes[0], TAG_UWSDT);
        let decoded = Uwsdt::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded.encode_to_vec(), bytes);

        let bytes = urel.encode_to_vec();
        assert_eq!(bytes[0], TAG_UREL);
        assert_eq!(UDatabase::decode_from_slice(&bytes).unwrap(), urel);

        let bytes = worlds.encode_to_vec();
        assert_eq!(bytes[0], TAG_WORLDS);
        let decoded = WorldSet::decode_from_slice(&bytes).unwrap();
        assert_eq!(decoded.encode_to_vec(), bytes);

        // Foreign tags are rejected.
        assert!(Wsd::decode_from_slice(&db.encode_to_vec()).is_err());
        assert!(Database::decode_from_slice(&worlds.encode_to_vec()).is_err());
    }

    #[test]
    fn scrubbing_drops_only_scratch_relations() {
        let mut db = Database::new();
        let mut base = Relation::new(Schema::new("R", &["A"]).unwrap());
        base.push_values([1i64]).unwrap();
        db.insert_relation(base);
        let mut scratch = Relation::new(Schema::new("__session_q0", &["A"]).unwrap());
        scratch.push_values([2i64]).unwrap();
        db.insert_relation(scratch);
        db.scrub_scratch();
        assert_eq!(db.relation_names(), vec!["R"]);

        // On a WSD the scratch result shares components with the base
        // relation; scrubbing must leave the base world-set intact.
        let mut wsd = ws_core::wsd::example_census_wsd();
        let before = wsd.rep().unwrap();
        ws_relational::engine::evaluate_query(
            &mut wsd,
            &ws_relational::RaExpr::rel("R").project(vec!["S"]),
            "__scratch_out",
        )
        .unwrap();
        assert!(wsd.contains_relation("__scratch_out"));
        wsd.scrub_scratch();
        assert!(!wsd.contains_relation("__scratch_out"));
        wsd.validate().unwrap();
        assert!(before.same_worlds(&wsd.rep().unwrap()));
    }
}
