//! Errors of the persistence layer.

use std::fmt;

/// Result alias of the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// What went wrong below the backend: I/O, corruption, or format drift.
///
/// I/O failures are carried as rendered messages (not [`std::io::Error`]
/// values) so the type stays `Clone + PartialEq` and can ride inside the
/// session layer's unified error without losing comparability in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying medium failed (filesystem or injected fault).
    Io(String),
    /// Bytes failed validation: bad magic, checksum mismatch, unknown tag,
    /// truncated value, or a decoded state that does not validate.
    Corrupt(String),
    /// The on-disk format is from a version this build does not speak.
    Unsupported(String),
    /// No snapshot exists where one was expected (opening a directory that
    /// was never initialized with [`crate::Durable::create`]).
    NotFound(String),
}

impl StorageError {
    /// An I/O failure.
    pub fn io(msg: impl fmt::Display) -> Self {
        StorageError::Io(msg.to_string())
    }

    /// A corruption diagnosis.
    pub fn corrupt(msg: impl fmt::Display) -> Self {
        StorageError::Corrupt(msg.to_string())
    }

    /// A version-drift diagnosis.
    pub fn unsupported(msg: impl fmt::Display) -> Self {
        StorageError::Unsupported(msg.to_string())
    }

    /// A missing-state diagnosis.
    pub fn not_found(msg: impl fmt::Display) -> Self {
        StorageError::NotFound(msg.to_string())
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage state: {msg}"),
            StorageError::Unsupported(msg) => write!(f, "unsupported storage format: {msg}"),
            StorageError::NotFound(msg) => write!(f, "storage state not found: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// The error of a [`crate::Durable`] wrapper: either the wrapped backend
/// failed (the update itself was rejected) or the durability layer did (the
/// log could not be written).
#[derive(Debug, Clone, PartialEq)]
pub enum DurableError<E> {
    /// The wrapped backend rejected the operation.
    Backend(E),
    /// The persistence layer failed before/while the operation was applied.
    Storage(StorageError),
}

impl<E: fmt::Display> fmt::Display for DurableError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Backend(e) => write!(f, "{e}"),
            DurableError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for DurableError<E> {}

impl<E> From<StorageError> for DurableError<E> {
    fn from(e: StorageError) -> Self {
        DurableError::Storage(e)
    }
}

/// The engine requires every backend error to absorb substrate errors; the
/// durable wrapper forwards them to the backend it wraps.
impl<E: From<ws_relational::RelationalError>> From<ws_relational::RelationalError>
    for DurableError<E>
{
    fn from(e: ws_relational::RelationalError) -> Self {
        DurableError::Backend(E::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_layer() {
        assert!(StorageError::io("disk gone").to_string().contains("I/O"));
        assert!(StorageError::corrupt("bad crc")
            .to_string()
            .contains("corrupt"));
        assert!(StorageError::unsupported("v9")
            .to_string()
            .contains("unsupported"));
        assert!(StorageError::not_found("no snapshot")
            .to_string()
            .contains("not found"));
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }

    #[test]
    fn durable_error_wraps_both_sides() {
        let s: DurableError<String> = StorageError::io("x").into();
        assert!(matches!(s, DurableError::Storage(_)));
        let b: DurableError<ws_relational::RelationalError> =
            ws_relational::RelationalError::Inconsistent.into();
        assert!(matches!(b, DurableError::Backend(_)));
        assert!(b.to_string().contains("inconsistent") || !b.to_string().is_empty());
    }
}
