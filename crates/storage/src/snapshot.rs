//! Snapshot files: one whole backend state, atomically replaced, checksummed.
//!
//! ```text
//! snapshot-<generation, 16 hex digits>.ws
//! ┌────────────┬─────────┬────────────┬─────────────┬─────────┬───────┐
//! │ magic (8B) │ version │ generation │ payload len │ payload │ crc32 │
//! │ "WSSNAP01" │ u32     │ u64        │ u64         │ …       │ u32   │
//! └────────────┴─────────┴────────────┴─────────────┴─────────┴───────┘
//! ```
//!
//! The payload is a [`Persist::encode_state`] rendering (tag byte + backend
//! state); the CRC-32 covers exactly the payload.  Writing goes through
//! [`Vfs::write_atomic`] (write temp → fsync → rename → fsync dir), so a
//! crash mid-checkpoint leaves the previous generation untouched.  Recovery
//! walks the generations newest-first and takes the first snapshot that
//! passes magic, version, checksum and decode — a half-written or corrupted
//! newest snapshot falls back to its predecessor.

use crate::codec::{Reader, Writer};
use crate::crc32::crc32;
use crate::error::{Result, StorageError};
use crate::persist::Persist;
use crate::vfs::Vfs;

/// File-format magic of snapshot files.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"WSSNAP01";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// How many generations to keep on disk (the newest plus one fallback).
pub const SNAPSHOTS_KEPT: usize = 2;

/// The file name of a generation's snapshot.
pub fn snapshot_name(generation: u64) -> String {
    format!("snapshot-{generation:016x}.ws")
}

/// Parse a snapshot file name back into its generation.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".ws")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Serialize one backend state into a self-contained snapshot image.
pub fn encode_snapshot<B: Persist>(generation: u64, backend: &B) -> Vec<u8> {
    let payload = backend.encode_to_vec();
    let mut w = Writer::new();
    w.raw(SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(generation);
    w.len_of(payload.len());
    let crc = crc32(&payload);
    w.raw(&payload);
    w.u32(crc);
    w.into_bytes()
}

/// Verify and decode a snapshot image, returning its generation and state.
pub fn decode_snapshot<B: Persist>(bytes: &[u8]) -> Result<(u64, B)> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8, "snapshot magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(StorageError::corrupt("bad snapshot magic"));
    }
    let version = r.u32("snapshot version")?;
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::unsupported(format!(
            "snapshot format version {version}, this build speaks {SNAPSHOT_VERSION}"
        )));
    }
    let generation = r.u64("snapshot generation")?;
    let len = r.len_of("snapshot payload length")?;
    let payload = r.take(len, "snapshot payload")?;
    let crc = r.u32("snapshot checksum")?;
    r.finish("snapshot")?;
    if crc32(payload) != crc {
        return Err(StorageError::corrupt(format!(
            "snapshot generation {generation} fails its checksum"
        )));
    }
    let backend = B::decode_from_slice(payload)?;
    Ok((generation, backend))
}

/// Write generation `generation`'s snapshot atomically.
pub fn write_snapshot<B: Persist>(vfs: &mut dyn Vfs, generation: u64, backend: &B) -> Result<()> {
    let image = encode_snapshot(generation, backend);
    vfs.write_atomic(&snapshot_name(generation), &image)
}

/// Load the newest valid snapshot: generations are tried newest-first, and
/// invalid images (torn, corrupt, wrong version) are skipped with their
/// diagnosis collected — recovery fails only if *no* generation is readable.
pub fn load_newest<B: Persist>(vfs: &mut dyn Vfs) -> Result<(u64, B)> {
    let mut generations: Vec<u64> = vfs
        .list()?
        .iter()
        .filter_map(|name| parse_snapshot_name(name))
        .collect();
    generations.sort_unstable_by(|a, b| b.cmp(a));
    if generations.is_empty() {
        return Err(StorageError::not_found(
            "no snapshot file; initialize the store with Durable::create first",
        ));
    }
    let mut diagnoses = Vec::new();
    for generation in generations {
        let Some(bytes) = vfs.read(&snapshot_name(generation))? else {
            continue;
        };
        match decode_snapshot::<B>(&bytes) {
            Ok((encoded_generation, backend)) => {
                if encoded_generation != generation {
                    diagnoses.push(format!(
                        "generation {generation}: header says {encoded_generation}"
                    ));
                    continue;
                }
                return Ok((generation, backend));
            }
            Err(e) => diagnoses.push(format!("generation {generation}: {e}")),
        }
    }
    Err(StorageError::corrupt(format!(
        "every snapshot failed validation: {}",
        diagnoses.join("; ")
    )))
}

/// Best-effort removal of snapshots older than the newest [`SNAPSHOTS_KEPT`].
pub fn prune_old(vfs: &mut dyn Vfs, newest: u64) {
    let Ok(names) = vfs.list() else { return };
    for name in names {
        if let Some(generation) = parse_snapshot_name(&name) {
            if generation + SNAPSHOTS_KEPT as u64 <= newest {
                let _ = vfs.remove(&name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use ws_relational::Database;

    fn db() -> Database {
        let wsd = ws_core::wsd::example_census_wsd();
        wsd.enumerate_worlds(1 << 20).unwrap()[0].0.clone()
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(parse_snapshot_name(&snapshot_name(0)), Some(0));
        assert_eq!(
            parse_snapshot_name(&snapshot_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_snapshot_name("wal.log"), None);
        assert_eq!(parse_snapshot_name("snapshot-zz.ws"), None);
    }

    #[test]
    fn newest_valid_snapshot_wins_and_corruption_falls_back() {
        let mut vfs = MemVfs::new();
        let old = db();
        let mut new = old.clone();
        new.remove_relation("R");
        write_snapshot(&mut vfs, 1, &old).unwrap();
        write_snapshot(&mut vfs, 2, &new).unwrap();

        let (generation, loaded): (u64, Database) = load_newest(&mut vfs).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(loaded, new);

        // Flip one payload byte of generation 2: the checksum rejects it and
        // recovery falls back to generation 1.
        let mut bytes = vfs.bytes(&snapshot_name(2)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        vfs.put(&snapshot_name(2), bytes);
        let (generation, loaded): (u64, Database) = load_newest(&mut vfs).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(loaded, old);
    }

    #[test]
    fn empty_store_and_total_corruption_are_distinct_errors() {
        let mut vfs = MemVfs::new();
        assert!(matches!(
            load_newest::<Database>(&mut vfs),
            Err(StorageError::NotFound(_))
        ));
        vfs.put(&snapshot_name(3), b"garbage".to_vec());
        assert!(matches!(
            load_newest::<Database>(&mut vfs),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn pruning_keeps_the_newest_two() {
        let mut vfs = MemVfs::new();
        for generation in 0..5 {
            write_snapshot(&mut vfs, generation, &db()).unwrap();
        }
        prune_old(&mut vfs, 4);
        let mut left: Vec<u64> = vfs
            .list()
            .unwrap()
            .iter()
            .filter_map(|n| parse_snapshot_name(n))
            .collect();
        left.sort_unstable();
        assert_eq!(left, vec![3, 4]);
    }

    #[test]
    fn version_drift_is_reported_as_unsupported() {
        let mut image = encode_snapshot(0, &db());
        image[8] = 99; // version byte
        assert!(matches!(
            decode_snapshot::<Database>(&image),
            Err(StorageError::Unsupported(_))
        ));
    }
}
