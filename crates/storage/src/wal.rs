//! The write-ahead log of the update language.
//!
//! ```text
//! wal.log
//! ┌────────────┬─────────┬────────────┐ ┌─────┬───────┬──────────────────┐
//! │ magic (8B) │ version │ generation │ │ len │ crc32 │ payload (len B)  │ …
//! │ "WSWAL001" │ u32     │ u64        │ │ u32 │ u32   │ kind + UpdateExpr│
//! └────────────┴─────────┴────────────┘ └─────┴───────┴──────────────────┘
//! ```
//!
//! One record per applied update, appended *before* the update touches the
//! backend (log-then-apply).  Every record carries its own CRC-32, so a
//! crash that tears the tail of an append is detected on open and the torn
//! bytes are truncated away — everything before the tear replays, and a
//! record torn by a failed append never reached the backend either, because
//! the log write failed first.
//!
//! A group-committed batch is one [`RECORD_BATCH`] frame holding *all* of
//! its updates behind a single length + CRC ([`batch_record_bytes`]): the
//! frame is appended in one write and either validates whole or is dropped
//! whole, so a crash mid-group-commit always recovers to a batch boundary —
//! no prefix of a batch is ever replayed.
//!
//! Whether a *fully appended* record survives a power cut (as opposed to a
//! process crash) is governed by [`crate::durable::SyncPolicy`]:
//!
//! * `EveryRecord` (default) fsyncs before each update is acknowledged,
//! * `GroupCommit` fsyncs once per coalesced batch frame, acknowledging all
//!   of the batch's updates after that one fsync,
//! * `OnCheckpoint` defers the fsync to checkpoint/sync/close entirely.
//!
//! The header pins the snapshot *generation* the log extends.  A checkpoint
//! writes snapshot `g+1` first (atomically) and then resets the log to
//! generation `g+1`; if the crash lands between the two, recovery loads
//! snapshot `g+1` and finds a log for generation `g` — stale, so it is
//! discarded instead of replayed twice.

use crate::codec::{self, Reader, Writer};
use crate::crc32::crc32;
use crate::error::{Result, StorageError};
use crate::vfs::Vfs;
use ws_core::ops::update::UpdateExpr;

/// File-format magic of the WAL.
pub const WAL_MAGIC: &[u8; 8] = b"WSWAL001";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// The WAL's file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// Header size in bytes: magic + version + generation.
pub const WAL_HEADER_LEN: usize = 8 + 4 + 8;
/// Upper bound on one record's payload (defensive decode limit).
const MAX_RECORD_LEN: u32 = 1 << 28;

/// Record kind: a plain update verb (insert/delete/modify).
pub const RECORD_UPDATE: u8 = 1;
/// Record kind: a conditioning step (worlds removed, mass renormalized).
pub const RECORD_CONDITION: u8 = 2;
/// Record kind: a group-committed batch of updates in one CRC-covered frame.
pub const RECORD_BATCH: u8 = 3;

/// One decoded WAL frame.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    /// [`RECORD_UPDATE`], [`RECORD_CONDITION`] or [`RECORD_BATCH`].
    pub kind: u8,
    /// The logged updates: exactly one for the singleton kinds, the whole
    /// coalesced group for a [`RECORD_BATCH`] frame.
    pub updates: Vec<UpdateExpr>,
}

impl WalRecord {
    /// The sole update of a singleton frame (panics on a batch frame with
    /// more than one update — use [`WalRecord::updates`] there).
    pub fn update(&self) -> &UpdateExpr {
        assert!(
            self.updates.len() == 1,
            "update() on a {}-update batch frame",
            self.updates.len()
        );
        &self.updates[0]
    }
}

/// The result of scanning a WAL image.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// The snapshot generation the log extends.
    pub generation: u64,
    /// The valid frames, in append order (a batch frame is one entry
    /// carrying all of its updates).
    pub records: Vec<WalRecord>,
    /// Byte offset at which each frame starts (record boundaries; the
    /// crash-simulation suite truncates at exactly these points).
    pub offsets: Vec<usize>,
    /// The prefix length that survived validation; bytes past it are torn.
    pub valid_len: usize,
    /// How many trailing bytes failed validation (0 on a clean log).
    pub torn_bytes: usize,
}

impl WalScan {
    /// Total updates across all valid frames (≥ `records.len()` once batch
    /// frames are present).
    pub fn update_count(&self) -> usize {
        self.records.iter().map(|r| r.updates.len()).sum()
    }
}

/// Render the WAL header for a generation.
pub fn header_bytes(generation: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(WAL_MAGIC);
    w.u32(WAL_VERSION);
    w.u64(generation);
    w.into_bytes()
}

/// Render one record (length + checksum + payload) for appending.
pub fn record_bytes(update: &UpdateExpr) -> Vec<u8> {
    let mut payload = Writer::new();
    let kind = match update {
        UpdateExpr::Condition { .. } => RECORD_CONDITION,
        _ => RECORD_UPDATE,
    };
    payload.u8(kind);
    codec::enc_update(&mut payload, update);
    frame(payload.into_bytes())
}

/// Render one [`RECORD_BATCH`] frame holding `updates` behind a single
/// length + CRC, so the whole batch validates or truncates as one unit.
pub fn batch_record_bytes(updates: &[UpdateExpr]) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.u8(RECORD_BATCH);
    payload.len_of(updates.len());
    for update in updates {
        codec::enc_update(&mut payload, update);
    }
    frame(payload.into_bytes())
}

/// Wrap a record payload in the `len + crc32` frame header.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(payload.len() as u32);
    w.u32(crc32(&payload));
    w.raw(&payload);
    w.into_bytes()
}

/// Scan a WAL image: validate the header, then walk records until the bytes
/// run out or stop validating.  Never fails on a torn *tail* — that is the
/// expected crash shape — but rejects a log whose header itself is foreign.
pub fn scan(bytes: &[u8]) -> Result<WalScan> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(StorageError::corrupt(format!(
            "WAL shorter than its {WAL_HEADER_LEN}-byte header"
        )));
    }
    let mut r = Reader::new(bytes);
    let magic = r.take(8, "WAL magic")?;
    if magic != WAL_MAGIC {
        return Err(StorageError::corrupt("bad WAL magic"));
    }
    let version = r.u32("WAL version")?;
    if version != WAL_VERSION {
        return Err(StorageError::unsupported(format!(
            "WAL format version {version}, this build speaks {WAL_VERSION}"
        )));
    }
    let generation = r.u64("WAL generation")?;

    let mut scan = WalScan {
        generation,
        valid_len: WAL_HEADER_LEN,
        ..WalScan::default()
    };
    let mut pos = WAL_HEADER_LEN;
    loop {
        let remaining = &bytes[pos..];
        if remaining.len() < 8 {
            break; // no room for a frame header: clean end or torn tail
        }
        let len = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        let crc = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len > MAX_RECORD_LEN || remaining.len() < 8 + len as usize {
            break; // torn mid-record
        }
        let payload = &remaining[8..8 + len as usize];
        if crc32(payload) != crc {
            break; // torn or bit-rotted: stop here, trust nothing past it
        }
        let mut pr = Reader::new(payload);
        let kind = match pr.u8("record kind") {
            Ok(k @ (RECORD_UPDATE | RECORD_CONDITION | RECORD_BATCH)) => k,
            _ => break,
        };
        let count = if kind == RECORD_BATCH {
            match pr.len_of("batch update count") {
                Ok(n) => n,
                Err(_) => break,
            }
        } else {
            1
        };
        let mut updates = Vec::with_capacity(count.min(1024));
        let mut bad = false;
        for _ in 0..count {
            match codec::dec_update(&mut pr) {
                Ok(update) => updates.push(update),
                Err(_) => {
                    bad = true;
                    break;
                }
            }
        }
        if bad || pr.finish("WAL record").is_err() {
            break;
        }
        scan.offsets.push(pos);
        scan.records.push(WalRecord { kind, updates });
        pos += 8 + len as usize;
        scan.valid_len = pos;
    }
    scan.torn_bytes = bytes.len() - scan.valid_len;
    Ok(scan)
}

/// The append-side handle of the log: knows the generation it extends and
/// appends framed records through the [`Vfs`].
#[derive(Debug)]
pub struct Wal {
    generation: u64,
}

impl Wal {
    /// Reset the log to an empty file for `generation` (atomic: the old log
    /// is replaced whole).
    pub fn reset(vfs: &mut dyn Vfs, generation: u64) -> Result<Wal> {
        vfs.write_atomic(WAL_FILE, &header_bytes(generation))?;
        Ok(Wal { generation })
    }

    /// Open the existing log against the recovered snapshot generation.
    ///
    /// * Missing log, or a log for an *older* generation (a crash between
    ///   checkpoint's snapshot write and log reset): reset to `generation`,
    ///   no records to replay.
    /// * A log for a *newer* generation than any readable snapshot: fatal —
    ///   replaying it against an older state would double-apply history.
    /// * Torn tail: truncated away; the valid prefix is returned for replay.
    pub fn open(vfs: &mut dyn Vfs, generation: u64) -> Result<(Wal, WalScan)> {
        let Some(bytes) = vfs.read(WAL_FILE)? else {
            return Ok((Wal::reset(vfs, generation)?, WalScan::default()));
        };
        if bytes.len() < WAL_HEADER_LEN {
            // A log torn inside its own header carries no records at all.
            return Ok((Wal::reset(vfs, generation)?, WalScan::default()));
        }
        let scan = scan(&bytes)?;
        if scan.generation < generation {
            return Ok((Wal::reset(vfs, generation)?, WalScan::default()));
        }
        if scan.generation > generation {
            return Err(StorageError::corrupt(format!(
                "WAL extends snapshot generation {} but the newest readable snapshot is {}",
                scan.generation, generation
            )));
        }
        if scan.torn_bytes > 0 {
            vfs.truncate(WAL_FILE, scan.valid_len as u64)?;
        }
        Ok((Wal { generation }, scan))
    }

    /// The snapshot generation this log extends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Append one update record; returns the bytes written.
    pub fn append(&mut self, vfs: &mut dyn Vfs, update: &UpdateExpr) -> Result<usize> {
        let bytes = record_bytes(update);
        vfs.append(WAL_FILE, &bytes)?;
        Ok(bytes.len())
    }

    /// Append a whole batch as one [`RECORD_BATCH`] frame in one write;
    /// returns the bytes written.  A crash anywhere inside the write tears
    /// the frame's CRC, so recovery drops the entire batch — never a prefix.
    pub fn append_batch(&mut self, vfs: &mut dyn Vfs, updates: &[UpdateExpr]) -> Result<usize> {
        if updates.is_empty() {
            return Ok(0);
        }
        let bytes = batch_record_bytes(updates);
        vfs.append(WAL_FILE, &bytes)?;
        Ok(bytes.len())
    }

    /// Force the log to stable storage.
    pub fn sync(&mut self, vfs: &mut dyn Vfs) -> Result<()> {
        vfs.sync(WAL_FILE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use ws_relational::{Predicate, Tuple};

    fn updates() -> Vec<UpdateExpr> {
        vec![
            UpdateExpr::insert("R", Tuple::from_iter([1i64, 2])),
            UpdateExpr::delete("R", Predicate::eq_const("A", 1i64)),
            UpdateExpr::condition(vec![]),
        ]
    }

    #[test]
    fn append_scan_roundtrip_with_kinds() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::reset(&mut vfs, 7).unwrap();
        for u in updates() {
            wal.append(&mut vfs, &u).unwrap();
        }
        wal.sync(&mut vfs).unwrap();
        let scan = scan(&vfs.bytes(WAL_FILE).unwrap()).unwrap();
        assert_eq!(scan.generation, 7);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.update().clone())
                .collect::<Vec<_>>(),
            updates()
        );
        assert_eq!(
            scan.records.iter().map(|r| r.kind).collect::<Vec<_>>(),
            vec![RECORD_UPDATE, RECORD_UPDATE, RECORD_CONDITION]
        );
        assert_eq!(scan.offsets.len(), 3);
        assert_eq!(scan.offsets[0], WAL_HEADER_LEN);
    }

    #[test]
    fn torn_tails_are_truncated_on_open() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::reset(&mut vfs, 0).unwrap();
        for u in updates() {
            wal.append(&mut vfs, &u).unwrap();
        }
        let full = vfs.bytes(WAL_FILE).unwrap();
        let scan_full = scan(&full).unwrap();

        // Tear the log anywhere strictly inside the last record.
        for cut in [scan_full.offsets[2] + 1, full.len() - 1] {
            let mut torn = MemVfs::new();
            torn.put(WAL_FILE, full[..cut].to_vec());
            let (_, scanned) = Wal::open(&mut torn, 0).unwrap();
            assert_eq!(scanned.records.len(), 2, "cut at {cut}");
            // The torn bytes are physically gone afterwards.
            assert_eq!(torn.bytes(WAL_FILE).unwrap().len(), scanned.valid_len);
        }

        // A bit flip in the middle record cuts replay off before it.
        let mut flipped = full.clone();
        flipped[scan_full.offsets[1] + 9] ^= 0x01;
        let mut vfs2 = MemVfs::new();
        vfs2.put(WAL_FILE, flipped);
        let (_, scanned) = Wal::open(&mut vfs2, 0).unwrap();
        assert_eq!(scanned.records.len(), 1);
    }

    #[test]
    fn batch_frames_roundtrip_as_one_record() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::reset(&mut vfs, 2).unwrap();
        wal.append(&mut vfs, &updates()[0]).unwrap();
        wal.append_batch(&mut vfs, &updates()).unwrap();
        // An empty batch writes nothing.
        assert_eq!(wal.append_batch(&mut vfs, &[]).unwrap(), 0);
        let scan = scan(&vfs.bytes(WAL_FILE).unwrap()).unwrap();
        assert_eq!(scan.records.len(), 2, "one singleton + one batch frame");
        assert_eq!(scan.update_count(), 4);
        assert_eq!(scan.records[1].kind, RECORD_BATCH);
        assert_eq!(scan.records[1].updates, updates());
    }

    #[test]
    fn a_torn_batch_frame_is_dropped_whole() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::reset(&mut vfs, 0).unwrap();
        wal.append(&mut vfs, &updates()[0]).unwrap();
        wal.append_batch(&mut vfs, &updates()).unwrap();
        let full = vfs.bytes(WAL_FILE).unwrap();
        let batch_start = scan(&full).unwrap().offsets[1];
        // Cut at every byte inside the batch frame: recovery must land on
        // the boundary *before* the batch — never a prefix of it.
        for cut in batch_start + 1..full.len() {
            let mut torn = MemVfs::new();
            torn.put(WAL_FILE, full[..cut].to_vec());
            let (_, scanned) = Wal::open(&mut torn, 0).unwrap();
            assert_eq!(scanned.update_count(), 1, "cut at {cut}");
            assert_eq!(torn.bytes(WAL_FILE).unwrap().len(), batch_start);
        }
    }

    #[test]
    fn generation_mismatches_reset_or_fail() {
        let mut vfs = MemVfs::new();
        let mut wal = Wal::reset(&mut vfs, 3).unwrap();
        wal.append(&mut vfs, &updates()[0]).unwrap();

        // Stale log (checkpoint crashed before the reset): discarded.
        let (wal, scanned) = Wal::open(&mut vfs, 4).unwrap();
        assert_eq!(wal.generation(), 4);
        assert!(scanned.records.is_empty());

        // Log newer than every snapshot: refusing beats double-applying.
        let mut vfs2 = MemVfs::new();
        Wal::reset(&mut vfs2, 9).unwrap();
        assert!(Wal::open(&mut vfs2, 8).is_err());
    }

    #[test]
    fn missing_or_header_torn_logs_start_fresh() {
        let mut vfs = MemVfs::new();
        let (wal, scanned) = Wal::open(&mut vfs, 5).unwrap();
        assert_eq!(wal.generation(), 5);
        assert!(scanned.records.is_empty());
        assert!(vfs.bytes(WAL_FILE).is_some());

        let mut vfs2 = MemVfs::new();
        vfs2.put(WAL_FILE, WAL_MAGIC[..6].to_vec());
        let (_, scanned) = Wal::open(&mut vfs2, 5).unwrap();
        assert!(scanned.records.is_empty());

        let mut vfs3 = MemVfs::new();
        vfs3.put(WAL_FILE, b"NOTAWAL!0000000000000000".to_vec());
        assert!(Wal::open(&mut vfs3, 5).is_err());
    }
}
