//! The hand-rolled binary codec of the persistence layer.
//!
//! The build environment is offline, so there is no serde: every type that
//! crosses the durability boundary — the five backend representations, the
//! update language, predicates and dependencies — is encoded by hand through
//! a tiny [`Writer`]/[`Reader`] pair.  The format is deliberately boring:
//!
//! * fixed-width little-endian integers (`u8`/`u32`/`u64`),
//! * `f64` as its IEEE-754 bit pattern (`to_bits`/`from_bits`, so
//!   probabilities round-trip *exactly* — a renormalized component must
//!   recover bit-identically, not approximately),
//! * length-prefixed UTF-8 strings,
//! * one tag byte per enum variant.
//!
//! Decoding is defensive: every length is checked against the remaining
//! input before allocating, unknown tags are [`StorageError::Corrupt`], and
//! trailing garbage after a complete value is rejected by
//! [`Reader::finish`].  Checksums live one layer up (snapshot files and WAL
//! records carry a CRC-32 over their payload; see [`mod@crate::crc32`],
//! [`crate::snapshot`] and [`crate::wal`]) — the codec itself only promises
//! `decode(encode(x)) == x`.

use crate::error::{Result, StorageError};
use std::collections::BTreeSet;
use ws_core::ops::update::UpdateExpr;
use ws_core::{Component, FieldId, LocalWorld, RelationMeta, WorldSet, Wsd};
use ws_relational::{
    AttrComparison, CmpOp, Database, Dependency, EqualityGeneratingDependency,
    FunctionalDependency, Predicate, RaExpr, Relation, Schema, Tuple, Value,
};
use ws_urel::{UDatabase, URelation, WsDescriptor};
use ws_uwsdt::{PresenceCondition, Uwsdt, UwsdtSnapshot, WorldEntry};

/// Hard ceiling on any decoded collection length; combined with the
/// per-element minimum of one byte this bounds allocation on corrupt input.
const MAX_LEN: u64 = 1 << 32;

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

/// An append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len_of(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append raw bytes (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A bounds-checked byte cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn short(&self, what: &str) -> StorageError {
        StorageError::corrupt(format!(
            "unexpected end of input while reading {what} at offset {}",
            self.pos
        ))
    }

    /// Read `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Look at the next byte without consuming it.
    pub fn peek_u8(&self, what: &str) -> Result<u8> {
        self.buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.short(what))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a collection length, bounded by the remaining input: every
    /// element of every encoded collection occupies at least one byte, so a
    /// length exceeding the unconsumed input is corrupt — rejected *before*
    /// any allocation is sized from it.
    pub fn len_of(&mut self, what: &str) -> Result<usize> {
        let n = self.u64(what)?;
        if n > MAX_LEN || n > self.remaining() as u64 {
            return Err(StorageError::corrupt(format!(
                "implausible length {n} for {what} at offset {}",
                self.pos
            )));
        }
        Ok(n as usize)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read a boolean byte (strictly 0 or 1).
    pub fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StorageError::corrupt(format!(
                "byte {b} is not a boolean for {what}"
            ))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String> {
        let n = self.len_of(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::corrupt(format!("{what} is not valid UTF-8")))
    }

    /// Assert that the input is fully consumed.
    pub fn finish(&self, what: &str) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StorageError::corrupt(format!(
                "{} trailing byte(s) after {what}",
                self.remaining()
            )))
        }
    }
}

fn bad_tag(what: &str, tag: u8) -> StorageError {
    StorageError::corrupt(format!("unknown tag {tag} for {what}"))
}

// ---------------------------------------------------------------------------
// Relational substrate: values, tuples, schemas, relations, predicates
// ---------------------------------------------------------------------------

/// Encode one field value.
pub fn enc_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Bottom => w.u8(0),
        Value::Unknown => w.u8(1),
        Value::Bool(b) => {
            w.u8(2);
            w.bool(*b);
        }
        Value::Int(i) => {
            w.u8(3);
            w.u64(*i as u64);
        }
        Value::Text(t) => {
            w.u8(4);
            w.str(t);
        }
    }
}

/// Decode one field value.
pub fn dec_value(r: &mut Reader) -> Result<Value> {
    match r.u8("value tag")? {
        0 => Ok(Value::Bottom),
        1 => Ok(Value::Unknown),
        2 => Ok(Value::Bool(r.bool("bool value")?)),
        3 => Ok(Value::Int(r.u64("int value")? as i64)),
        4 => Ok(Value::text(r.str("text value")?)),
        t => Err(bad_tag("value", t)),
    }
}

/// Encode a tuple.
pub fn enc_tuple(w: &mut Writer, t: &Tuple) {
    w.len_of(t.arity());
    for v in t.values() {
        enc_value(w, v);
    }
}

/// Decode a tuple.
pub fn dec_tuple(r: &mut Reader) -> Result<Tuple> {
    let n = r.len_of("tuple arity")?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(dec_value(r)?);
    }
    Ok(Tuple::new(values))
}

/// Encode a schema (relation name + ordered attributes).
pub fn enc_schema(w: &mut Writer, s: &Schema) {
    w.str(s.relation());
    w.len_of(s.arity());
    for a in s.attrs() {
        w.str(a);
    }
}

/// Decode a schema.  Duplicate attributes are rejected.
pub fn dec_schema(r: &mut Reader) -> Result<Schema> {
    let name = r.str("relation name")?;
    let n = r.len_of("attribute count")?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        attrs.push(r.str("attribute name")?);
    }
    Schema::new(&name, &attrs)
        .map_err(|e| StorageError::corrupt(format!("invalid schema `{name}`: {e}")))
}

/// Encode a relation (schema + rows in stored order).
pub fn enc_relation(w: &mut Writer, rel: &Relation) {
    enc_schema(w, rel.schema());
    w.len_of(rel.len());
    for row in rel.rows() {
        enc_tuple(w, row);
    }
}

/// Decode a relation.
pub fn dec_relation(r: &mut Reader) -> Result<Relation> {
    let schema = dec_schema(r)?;
    let n = r.len_of("row count")?;
    let mut rel = Relation::new(schema);
    for _ in 0..n {
        let row = dec_tuple(r)?;
        rel.push(row)
            .map_err(|e| StorageError::corrupt(format!("row does not fit its schema: {e}")))?;
    }
    Ok(rel)
}

/// Encode a single-world database (relations in sorted name order).
pub fn enc_database(w: &mut Writer, db: &Database) {
    w.len_of(db.len());
    for (_, rel) in db.iter() {
        enc_relation(w, rel);
    }
}

/// Decode a single-world database.
pub fn dec_database(r: &mut Reader) -> Result<Database> {
    let n = r.len_of("relation count")?;
    let mut db = Database::new();
    for _ in 0..n {
        db.insert_relation(dec_relation(r)?);
    }
    Ok(db)
}

fn enc_cmp_op(w: &mut Writer, op: CmpOp) {
    w.u8(match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    });
}

fn dec_cmp_op(r: &mut Reader) -> Result<CmpOp> {
    Ok(match r.u8("comparison operator")? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(bad_tag("comparison operator", t)),
    })
}

/// Encode a selection predicate.
pub fn enc_predicate(w: &mut Writer, p: &Predicate) {
    match p {
        Predicate::AttrConst { attr, op, value } => {
            w.u8(0);
            w.str(attr);
            enc_cmp_op(w, *op);
            enc_value(w, value);
        }
        Predicate::AttrAttr { left, op, right } => {
            w.u8(1);
            w.str(left);
            enc_cmp_op(w, *op);
            w.str(right);
        }
        Predicate::And(ps) => {
            w.u8(2);
            w.len_of(ps.len());
            for p in ps {
                enc_predicate(w, p);
            }
        }
        Predicate::Or(ps) => {
            w.u8(3);
            w.len_of(ps.len());
            for p in ps {
                enc_predicate(w, p);
            }
        }
        Predicate::Not(p) => {
            w.u8(4);
            enc_predicate(w, p);
        }
    }
}

/// Decode a selection predicate.
pub fn dec_predicate(r: &mut Reader) -> Result<Predicate> {
    Ok(match r.u8("predicate tag")? {
        0 => Predicate::AttrConst {
            attr: r.str("predicate attribute")?,
            op: dec_cmp_op(r)?,
            value: dec_value(r)?,
        },
        1 => Predicate::AttrAttr {
            left: r.str("predicate left attribute")?,
            op: dec_cmp_op(r)?,
            right: r.str("predicate right attribute")?,
        },
        tag @ (2 | 3) => {
            let n = r.len_of("predicate operand count")?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(dec_predicate(r)?);
            }
            if tag == 2 {
                Predicate::And(ps)
            } else {
                Predicate::Or(ps)
            }
        }
        4 => Predicate::Not(Box::new(dec_predicate(r)?)),
        t => return Err(bad_tag("predicate", t)),
    })
}

/// Encode a relational-algebra plan (the wire protocol's `prepare` payload;
/// plans never touch the durability files, which store states and updates).
pub fn enc_ra(w: &mut Writer, e: &RaExpr) {
    match e {
        RaExpr::Rel(name) => {
            w.u8(0);
            w.str(name);
        }
        RaExpr::Select { pred, input } => {
            w.u8(1);
            enc_predicate(w, pred);
            enc_ra(w, input);
        }
        RaExpr::Project { attrs, input } => {
            w.u8(2);
            w.len_of(attrs.len());
            for a in attrs {
                w.str(a);
            }
            enc_ra(w, input);
        }
        RaExpr::Product { left, right } => {
            w.u8(3);
            enc_ra(w, left);
            enc_ra(w, right);
        }
        RaExpr::Union { left, right } => {
            w.u8(4);
            enc_ra(w, left);
            enc_ra(w, right);
        }
        RaExpr::Difference { left, right } => {
            w.u8(5);
            enc_ra(w, left);
            enc_ra(w, right);
        }
        RaExpr::Rename { from, to, input } => {
            w.u8(6);
            w.str(from);
            w.str(to);
            enc_ra(w, input);
        }
    }
}

/// Decode a relational-algebra plan.
pub fn dec_ra(r: &mut Reader) -> Result<RaExpr> {
    Ok(match r.u8("plan tag")? {
        0 => RaExpr::Rel(r.str("relation name")?),
        1 => RaExpr::Select {
            pred: dec_predicate(r)?,
            input: Box::new(dec_ra(r)?),
        },
        2 => {
            let n = r.len_of("projection attribute count")?;
            let mut attrs = Vec::with_capacity(n);
            for _ in 0..n {
                attrs.push(r.str("projection attribute")?);
            }
            RaExpr::Project {
                attrs,
                input: Box::new(dec_ra(r)?),
            }
        }
        tag @ 3..=5 => {
            let left = Box::new(dec_ra(r)?);
            let right = Box::new(dec_ra(r)?);
            match tag {
                3 => RaExpr::Product { left, right },
                4 => RaExpr::Union { left, right },
                _ => RaExpr::Difference { left, right },
            }
        }
        6 => RaExpr::Rename {
            from: r.str("rename source")?,
            to: r.str("rename target")?,
            input: Box::new(dec_ra(r)?),
        },
        t => return Err(bad_tag("plan", t)),
    })
}

// ---------------------------------------------------------------------------
// Dependencies and the update language
// ---------------------------------------------------------------------------

fn enc_attr_comparison(w: &mut Writer, a: &AttrComparison) {
    w.str(&a.attr);
    enc_cmp_op(w, a.op);
    enc_value(w, &a.value);
}

fn dec_attr_comparison(r: &mut Reader) -> Result<AttrComparison> {
    Ok(AttrComparison {
        attr: r.str("comparison attribute")?,
        op: dec_cmp_op(r)?,
        value: dec_value(r)?,
    })
}

/// Encode an integrity constraint.
pub fn enc_dependency(w: &mut Writer, d: &Dependency) {
    match d {
        Dependency::Fd(fd) => {
            w.u8(0);
            w.str(&fd.relation);
            w.len_of(fd.lhs.len());
            for a in &fd.lhs {
                w.str(a);
            }
            w.len_of(fd.rhs.len());
            for a in &fd.rhs {
                w.str(a);
            }
        }
        Dependency::Egd(egd) => {
            w.u8(1);
            w.str(&egd.relation);
            w.len_of(egd.body.len());
            for a in &egd.body {
                enc_attr_comparison(w, a);
            }
            enc_attr_comparison(w, &egd.head);
        }
    }
}

/// Decode an integrity constraint.
pub fn dec_dependency(r: &mut Reader) -> Result<Dependency> {
    Ok(match r.u8("dependency tag")? {
        0 => {
            let relation = r.str("FD relation")?;
            let nl = r.len_of("FD lhs count")?;
            let mut lhs = Vec::with_capacity(nl);
            for _ in 0..nl {
                lhs.push(r.str("FD lhs attribute")?);
            }
            let nr = r.len_of("FD rhs count")?;
            let mut rhs = Vec::with_capacity(nr);
            for _ in 0..nr {
                rhs.push(r.str("FD rhs attribute")?);
            }
            Dependency::Fd(FunctionalDependency::new(relation, lhs, rhs))
        }
        1 => {
            let relation = r.str("EGD relation")?;
            let nb = r.len_of("EGD body count")?;
            let mut body = Vec::with_capacity(nb);
            for _ in 0..nb {
                body.push(dec_attr_comparison(r)?);
            }
            let head = dec_attr_comparison(r)?;
            Dependency::Egd(EqualityGeneratingDependency::new(relation, body, head))
        }
        t => return Err(bad_tag("dependency", t)),
    })
}

/// Encode one update of the update language — the WAL's record payload.
pub fn enc_update(w: &mut Writer, u: &UpdateExpr) {
    match u {
        UpdateExpr::InsertCertain { relation, tuple } => {
            w.u8(0);
            w.str(relation);
            enc_tuple(w, tuple);
        }
        UpdateExpr::InsertPossible {
            relation,
            tuple,
            prob,
        } => {
            w.u8(1);
            w.str(relation);
            enc_tuple(w, tuple);
            w.f64(*prob);
        }
        UpdateExpr::Delete { relation, pred } => {
            w.u8(2);
            w.str(relation);
            enc_predicate(w, pred);
        }
        UpdateExpr::Modify {
            relation,
            pred,
            assignments,
        } => {
            w.u8(3);
            w.str(relation);
            enc_predicate(w, pred);
            w.len_of(assignments.len());
            for (attr, value) in assignments {
                w.str(attr);
                enc_value(w, value);
            }
        }
        UpdateExpr::Condition { constraints } => {
            w.u8(4);
            w.len_of(constraints.len());
            for d in constraints {
                enc_dependency(w, d);
            }
        }
    }
}

/// Decode one update of the update language.
pub fn dec_update(r: &mut Reader) -> Result<UpdateExpr> {
    Ok(match r.u8("update tag")? {
        0 => UpdateExpr::InsertCertain {
            relation: r.str("update relation")?,
            tuple: dec_tuple(r)?,
        },
        1 => UpdateExpr::InsertPossible {
            relation: r.str("update relation")?,
            tuple: dec_tuple(r)?,
            prob: r.f64("insert probability")?,
        },
        2 => UpdateExpr::Delete {
            relation: r.str("update relation")?,
            pred: dec_predicate(r)?,
        },
        3 => {
            let relation = r.str("update relation")?;
            let pred = dec_predicate(r)?;
            let n = r.len_of("assignment count")?;
            let mut assignments = Vec::with_capacity(n);
            for _ in 0..n {
                let attr = r.str("assignment attribute")?;
                assignments.push((attr, dec_value(r)?));
            }
            UpdateExpr::Modify {
                relation,
                pred,
                assignments,
            }
        }
        4 => {
            let n = r.len_of("constraint count")?;
            let mut constraints = Vec::with_capacity(n);
            for _ in 0..n {
                constraints.push(dec_dependency(r)?);
            }
            UpdateExpr::Condition { constraints }
        }
        t => return Err(bad_tag("update", t)),
    })
}

// ---------------------------------------------------------------------------
// WSD internals: fields, components, relation metadata
// ---------------------------------------------------------------------------

fn enc_field(w: &mut Writer, f: &FieldId) {
    w.str(&f.relation);
    w.u64(f.tuple.0 as u64);
    w.str(&f.attr);
}

fn dec_field(r: &mut Reader) -> Result<FieldId> {
    let relation = r.str("field relation")?;
    let tuple = r.u64("field tuple")? as usize;
    let attr = r.str("field attribute")?;
    Ok(FieldId::new(relation, tuple, attr))
}

fn enc_component(w: &mut Writer, c: &Component) {
    w.len_of(c.fields.len());
    for f in &c.fields {
        enc_field(w, f);
    }
    w.len_of(c.rows.len());
    for row in &c.rows {
        for v in &row.values {
            enc_value(w, v);
        }
        w.f64(row.prob);
    }
}

fn dec_component(r: &mut Reader) -> Result<Component> {
    let nf = r.len_of("component field count")?;
    let mut fields = Vec::with_capacity(nf);
    for _ in 0..nf {
        fields.push(dec_field(r)?);
    }
    let nr = r.len_of("component row count")?;
    let mut component = Component::new(fields);
    for _ in 0..nr {
        let mut values = Vec::with_capacity(nf);
        for _ in 0..nf {
            values.push(dec_value(r)?);
        }
        let prob = r.f64("local-world probability")?;
        component.rows.push(LocalWorld::new(values, prob));
    }
    Ok(component)
}

/// Encode a world-set decomposition (metadata + raw component slots,
/// including the `None` holes — slot indices are structural identity).
pub fn enc_wsd(w: &mut Writer, wsd: &Wsd) {
    let metas: Vec<(&str, &RelationMeta)> = wsd.relation_metas().collect();
    w.len_of(metas.len());
    for (name, meta) in metas {
        w.str(name);
        w.len_of(meta.attrs.len());
        for a in &meta.attrs {
            w.str(a);
        }
        w.u64(meta.tuple_count as u64);
        w.len_of(meta.removed.len());
        for t in &meta.removed {
            w.u64(*t as u64);
        }
    }
    let slots = wsd.raw_components();
    w.len_of(slots.len());
    for slot in slots {
        match slot {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                enc_component(w, c);
            }
        }
    }
}

/// Decode a world-set decomposition (validated on reconstruction).
pub fn dec_wsd(r: &mut Reader) -> Result<Wsd> {
    let nr = r.len_of("WSD relation count")?;
    let mut relations = Vec::with_capacity(nr);
    for _ in 0..nr {
        let name = r.str("WSD relation name")?;
        let na = r.len_of("WSD attribute count")?;
        let mut attrs = Vec::with_capacity(na);
        for _ in 0..na {
            attrs.push(std::sync::Arc::from(r.str("WSD attribute")?.as_str()));
        }
        let tuple_count = r.u64("WSD tuple count")? as usize;
        let nrem = r.len_of("WSD removed count")?;
        let mut removed = BTreeSet::new();
        for _ in 0..nrem {
            removed.insert(r.u64("WSD removed slot")? as usize);
        }
        relations.push((
            name,
            RelationMeta {
                attrs,
                tuple_count,
                removed,
            },
        ));
    }
    let ns = r.len_of("WSD component slot count")?;
    let mut components = Vec::with_capacity(ns);
    for _ in 0..ns {
        components.push(match r.u8("component slot tag")? {
            0 => None,
            1 => Some(dec_component(r)?),
            t => return Err(bad_tag("component slot", t)),
        });
    }
    Wsd::from_raw_parts(relations, components)
        .map_err(|e| StorageError::corrupt(format!("invalid WSD snapshot: {e}")))
}

// ---------------------------------------------------------------------------
// UWSDT (via its deterministic snapshot view)
// ---------------------------------------------------------------------------

/// Encode a UWSDT through [`Uwsdt::to_snapshot`]'s canonical ordering.
pub fn enc_uwsdt(w: &mut Writer, u: &Uwsdt) {
    let s = u.to_snapshot();
    w.len_of(s.templates.len());
    for t in &s.templates {
        enc_relation(w, t);
    }
    w.len_of(s.components.len());
    for (cid, worlds, fields) in &s.components {
        w.u64(*cid as u64);
        w.len_of(worlds.len());
        for entry in worlds {
            w.u64(entry.lwid as u64);
            w.f64(entry.prob);
        }
        w.len_of(fields.len());
        for f in fields {
            enc_field(w, f);
        }
    }
    w.len_of(s.values.len());
    for (field, values) in &s.values {
        enc_field(w, field);
        w.len_of(values.len());
        for (lwid, value) in values {
            w.u64(*lwid as u64);
            enc_value(w, value);
        }
    }
    w.len_of(s.presence.len());
    for (relation, tuple, conditions) in &s.presence {
        w.str(relation);
        w.u64(*tuple as u64);
        w.len_of(conditions.len());
        for cond in conditions {
            w.u64(cond.cid as u64);
            w.len_of(cond.lwids.len());
            for l in &cond.lwids {
                w.u64(*l as u64);
            }
        }
    }
    w.u64(s.next_cid as u64);
}

/// Decode a UWSDT through [`Uwsdt::from_snapshot`] (re-validated).
pub fn dec_uwsdt(r: &mut Reader) -> Result<Uwsdt> {
    let nt = r.len_of("UWSDT template count")?;
    let mut templates = Vec::with_capacity(nt);
    for _ in 0..nt {
        templates.push(dec_relation(r)?);
    }
    let nc = r.len_of("UWSDT component count")?;
    let mut components = Vec::with_capacity(nc);
    for _ in 0..nc {
        let cid = r.u64("UWSDT component id")? as usize;
        let nw = r.len_of("UWSDT local-world count")?;
        let mut worlds = Vec::with_capacity(nw);
        for _ in 0..nw {
            let lwid = r.u64("UWSDT lwid")? as usize;
            let prob = r.f64("UWSDT local-world probability")?;
            worlds.push(WorldEntry { lwid, prob });
        }
        let nf = r.len_of("UWSDT component field count")?;
        let mut fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            fields.push(dec_field(r)?);
        }
        components.push((cid, worlds, fields));
    }
    let nv = r.len_of("UWSDT C-entry count")?;
    let mut values = Vec::with_capacity(nv);
    for _ in 0..nv {
        let field = dec_field(r)?;
        let n = r.len_of("UWSDT value count")?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            let lwid = r.u64("UWSDT value lwid")? as usize;
            vals.push((lwid, dec_value(r)?));
        }
        values.push((field, vals));
    }
    let np = r.len_of("UWSDT presence count")?;
    let mut presence = Vec::with_capacity(np);
    for _ in 0..np {
        let relation = r.str("UWSDT presence relation")?;
        let tuple = r.u64("UWSDT presence tuple")? as usize;
        let ncond = r.len_of("UWSDT presence condition count")?;
        let mut conditions = Vec::with_capacity(ncond);
        for _ in 0..ncond {
            let cid = r.u64("UWSDT presence cid")? as usize;
            let nl = r.len_of("UWSDT presence lwid count")?;
            let mut lwids = BTreeSet::new();
            for _ in 0..nl {
                lwids.insert(r.u64("UWSDT presence lwid")? as usize);
            }
            conditions.push(PresenceCondition { cid, lwids });
        }
        presence.push((relation, tuple, conditions));
    }
    let next_cid = r.u64("UWSDT next cid")? as usize;
    Uwsdt::from_snapshot(UwsdtSnapshot {
        templates,
        components,
        values,
        presence,
        next_cid,
    })
    .map_err(|e| StorageError::corrupt(format!("invalid UWSDT snapshot: {e}")))
}

// ---------------------------------------------------------------------------
// U-relations
// ---------------------------------------------------------------------------

fn enc_descriptor(w: &mut Writer, d: &WsDescriptor) {
    w.len_of(d.len());
    for (var, idx) in d.bindings() {
        w.str(var);
        w.u64(idx as u64);
    }
}

fn dec_descriptor(r: &mut Reader) -> Result<WsDescriptor> {
    let n = r.len_of("descriptor binding count")?;
    let mut bindings = Vec::with_capacity(n);
    for _ in 0..n {
        let var = r.str("descriptor variable")?;
        bindings.push((var, r.u64("descriptor index")? as usize));
    }
    WsDescriptor::of(bindings)
        .ok_or_else(|| StorageError::corrupt("descriptor binds a variable twice"))
}

/// Encode a U-relational database (world table + annotated relations).
pub fn enc_udatabase(w: &mut Writer, db: &UDatabase) {
    let table = db.world_table();
    let vars: Vec<&str> = table.variables().collect();
    w.len_of(vars.len());
    for var in vars {
        w.str(var);
        let dist = table.distribution(var).expect("declared variable");
        w.len_of(dist.len());
        for p in dist {
            w.f64(*p);
        }
    }
    let names = db.relation_names();
    w.len_of(names.len());
    for name in names {
        let rel = db.relation(name).expect("listed relation");
        enc_schema(w, rel.schema());
        w.len_of(rel.len());
        for (tuple, descriptor) in rel.rows() {
            enc_tuple(w, tuple);
            enc_descriptor(w, descriptor);
        }
    }
}

/// Decode a U-relational database (descriptors re-validated against the
/// decoded world table).
pub fn dec_udatabase(r: &mut Reader) -> Result<UDatabase> {
    let mut db = UDatabase::new();
    let nv = r.len_of("world-table variable count")?;
    for _ in 0..nv {
        let var = r.str("world-table variable")?;
        let nd = r.len_of("world-table domain size")?;
        let mut dist = Vec::with_capacity(nd);
        for _ in 0..nd {
            dist.push(r.f64("world-table probability")?);
        }
        db.world_table_mut()
            .add_variable(&var, dist)
            .map_err(|e| StorageError::corrupt(format!("invalid variable `{var}`: {e}")))?;
    }
    let nr = r.len_of("U-relation count")?;
    for _ in 0..nr {
        let schema = dec_schema(r)?;
        let n = r.len_of("U-relation row count")?;
        let mut rel = URelation::new(schema);
        for _ in 0..n {
            let tuple = dec_tuple(r)?;
            let descriptor = dec_descriptor(r)?;
            rel.push(tuple, descriptor)
                .map_err(|e| StorageError::corrupt(format!("invalid U-relation row: {e}")))?;
        }
        db.insert_relation(rel);
    }
    db.validate()
        .map_err(|e| StorageError::corrupt(format!("invalid U-database snapshot: {e}")))?;
    Ok(db)
}

// ---------------------------------------------------------------------------
// Explicit world-sets
// ---------------------------------------------------------------------------

/// Encode an explicit world-set verbatim (world order is preserved — it
/// determines the canonical order of streamed possible tuples).
pub fn enc_worldset(w: &mut Writer, ws: &WorldSet) {
    w.len_of(ws.len());
    for (db, p) in ws.worlds() {
        enc_database(w, db);
        w.f64(*p);
    }
}

/// Decode an explicit world-set without re-merging worlds.
pub fn dec_worldset(r: &mut Reader) -> Result<WorldSet> {
    let n = r.len_of("world count")?;
    let mut worlds = Vec::with_capacity(n);
    for _ in 0..n {
        let db = dec_database(r)?;
        let p = r.f64("world probability")?;
        worlds.push((db, p));
    }
    Ok(WorldSet::from_raw_worlds(worlds))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T, E, D>(value: &T, enc: E, dec: D) -> T
    where
        E: Fn(&mut Writer, &T),
        D: Fn(&mut Reader) -> Result<T>,
    {
        let mut w = Writer::new();
        enc(&mut w, value);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = dec(&mut r).expect("decodes");
        r.finish("roundtrip value").expect("fully consumed");
        decoded
    }

    #[test]
    fn primitive_values_roundtrip() {
        for v in [
            Value::Bottom,
            Value::Unknown,
            Value::Bool(true),
            Value::int(-42),
            Value::int(i64::MAX),
            Value::text("Smith ⊥ ?"),
        ] {
            assert_eq!(roundtrip(&v, enc_value, dec_value), v);
        }
        let t = Tuple::from_iter([Value::int(1), Value::Bottom, Value::text("x")]);
        assert_eq!(roundtrip(&t, enc_tuple, dec_tuple), t);
    }

    #[test]
    fn predicates_and_updates_roundtrip() {
        let pred = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::or(vec![
                Predicate::cmp_attr("A", CmpOp::Lt, "B"),
                Predicate::not(Predicate::cmp_const("B", CmpOp::Ge, 3i64)),
            ]),
        ]);
        assert_eq!(roundtrip(&pred, enc_predicate, dec_predicate), pred);

        let updates = vec![
            UpdateExpr::insert("R", Tuple::from_iter([1i64, 2])),
            UpdateExpr::insert_possible("R", Tuple::from_iter([3i64, 4]), 0.25),
            UpdateExpr::delete("S", pred.clone()),
            UpdateExpr::modify("R", pred, vec![("B".to_string(), Value::int(7))]),
            UpdateExpr::condition(vec![
                Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["B"])),
                Dependency::Egd(EqualityGeneratingDependency::implies(
                    "R",
                    "A",
                    1i64,
                    "B",
                    CmpOp::Ne,
                    2i64,
                )),
            ]),
        ];
        for u in updates {
            assert_eq!(roundtrip(&u, enc_update, dec_update), u);
        }
    }

    #[test]
    fn plans_roundtrip() {
        let plan = RaExpr::Project {
            attrs: vec!["S".into(), "N".into()],
            input: Box::new(RaExpr::Select {
                pred: Predicate::eq_const("M", 1i64),
                input: Box::new(RaExpr::Union {
                    left: Box::new(RaExpr::Rename {
                        from: "A".into(),
                        to: "S".into(),
                        input: Box::new(RaExpr::rel("R")),
                    }),
                    right: Box::new(RaExpr::Difference {
                        left: Box::new(RaExpr::Product {
                            left: Box::new(RaExpr::rel("S")),
                            right: Box::new(RaExpr::rel("T")),
                        }),
                        right: Box::new(RaExpr::rel("U")),
                    }),
                }),
            }),
        };
        assert_eq!(roundtrip(&plan, enc_ra, dec_ra), plan);

        // Unknown plan tags are corrupt, not trusted.
        let mut w = Writer::new();
        enc_ra(&mut w, &RaExpr::rel("R"));
        let mut bytes = w.into_bytes();
        bytes[0] = 42;
        assert!(dec_ra(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn wsd_roundtrips_through_raw_parts() {
        let wsd = ws_core::wsd::example_census_wsd();
        let decoded = roundtrip(&wsd, enc_wsd, dec_wsd);
        decoded.validate().unwrap();
        assert!(wsd
            .rep()
            .unwrap()
            .same_distribution(&decoded.rep().unwrap(), 0.0));
        // Determinism: encoding the decoded value reproduces the bytes.
        let mut a = Writer::new();
        enc_wsd(&mut a, &wsd);
        let mut b = Writer::new();
        enc_wsd(&mut b, &decoded);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn corrupt_input_is_rejected_not_trusted() {
        let mut w = Writer::new();
        enc_value(&mut w, &Value::int(5));
        let mut bytes = w.into_bytes();
        bytes[0] = 99; // unknown tag
        assert!(dec_value(&mut Reader::new(&bytes)).is_err());

        // Truncated tuple.
        let mut w = Writer::new();
        enc_tuple(&mut w, &Tuple::from_iter([1i64, 2, 3]));
        let bytes = w.into_bytes();
        assert!(dec_tuple(&mut Reader::new(&bytes[..bytes.len() - 1])).is_err());

        // Implausible length prefix.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).len_of("count").is_err());

        // Trailing garbage.
        let mut w = Writer::new();
        enc_value(&mut w, &Value::Bottom);
        w.u8(7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        dec_value(&mut r).unwrap();
        assert!(r.finish("value").is_err());
    }
}
