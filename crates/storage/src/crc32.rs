//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), hand-rolled because the
//! build is offline.  Table-driven, one byte per step — plenty for WAL
//! records and snapshot payloads whose cost is dominated by encoding.

/// The reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"world-set decomposition".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
