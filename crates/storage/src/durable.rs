//! [`Durable<B>`]: the log-then-apply wrapper that makes any
//! [`WriteBackend`] survive a process crash.
//!
//! Write path — every update verb:
//!
//! 1. encodes itself as one CRC-framed [`crate::wal`] record and appends it
//!    to the log (**log first**),
//! 2. then applies through the wrapped backend's existing [`WriteBackend`]
//!    verb (**apply second**).
//!
//! If the log write fails, the backend is untouched.  If the process dies
//! after the log write, recovery replays the record — applying it then has
//! the same (deterministic) outcome it would have had live, *including* a
//! deterministic failure: a conditioning step that emptied the world-set
//! errored live, and it errors identically on replay, leaving the state
//! bit-identical to the crashed process's.
//!
//! Read path ([`ws_relational::QueryBackend`]) is pass-through: queries only
//! materialize scratch relations, which are never logged and never
//! snapshotted (see [`Persist::scrub_scratch`]).
//!
//! [`Durable::checkpoint`] writes snapshot generation `g+1` atomically, then
//! resets the log to `g+1`; [`Durable::open`] loads the newest valid
//! snapshot and replays whatever log tail extends it.  The crash-safety
//! argument for every interleaving is in the [`crate::wal`] docs.
//!
//! When appends reach *stable* storage is a separate axis, chosen by
//! [`SyncPolicy`]:
//!
//! * [`SyncPolicy::EveryRecord`] — fsync before each update is
//!   acknowledged (the default; power-cut durable per update),
//! * [`SyncPolicy::GroupCommit`] — coalesce concurrent updates into one
//!   batch frame via [`Durable::apply_batch`] and fsync once per batch,
//!   acknowledging every update in the batch after that single fsync,
//! * [`SyncPolicy::OnCheckpoint`] — defer fsyncs to
//!   checkpoint/sync/close.

use crate::error::{DurableError, Result, StorageError};
use crate::persist::Persist;
use crate::snapshot;
use crate::vfs::{DirVfs, Vfs};
use crate::wal::{Wal, WAL_HEADER_LEN};
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ws_core::ops::update::{apply_update, UpdateExpr};
use ws_relational::engine::{ExecContext, QueryBackend, SchemaCatalog, WriteBackend};
use ws_relational::{Dependency, Predicate, Schema, Tuple, Value};

/// Durability counters, surfaced through `maybms::SessionStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Records appended to the WAL since the last checkpoint (after
    /// recovery: the replayed tail it opened with).
    pub wal_records: u64,
    /// Bytes appended to the WAL since the last checkpoint.
    pub wal_bytes: u64,
    /// Checkpoints taken through this handle.
    pub checkpoints: u64,
    /// The snapshot generation the log currently extends.
    pub snapshot_generation: u64,
    /// WAL records replayed by the last [`Durable::open`].
    pub recovered_records: u64,
    /// Replayed records whose application failed live too (deterministic
    /// failures such as an inconsistency-reporting conditioning step).
    pub replayed_failures: u64,
    /// Torn trailing bytes truncated off the WAL on open.
    pub torn_bytes_truncated: u64,
    /// Batches appended through [`Durable::apply_batch`] (each batch is one
    /// WAL frame + at most one fsync).
    pub commit_batches: u64,
    /// Updates carried by those batches; the mean batch size is
    /// `batched_updates / commit_batches`.
    pub batched_updates: u64,
}

/// When WAL appends reach stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record (default): an update acknowledged
    /// with `Ok` survives a power cut, not just a process crash.
    #[default]
    EveryRecord,
    /// Coalesce updates into batch frames: [`Durable::apply_batch`] appends
    /// at most `max_batch` updates per [`crate::wal::RECORD_BATCH`] frame
    /// and fsyncs **once per call**, so every update in the batch becomes
    /// power-cut durable with one fsync.  `max_wait` is read by concurrent
    /// batchers (the ws-server committer) as the longest a leader waits for
    /// followers to coalesce; the single-threaded write path ignores it.
    GroupCommit {
        /// Most updates allowed in one batch frame (0 is treated as 1).
        max_batch: usize,
        /// How long a concurrent batcher waits to fill a batch.
        max_wait: Duration,
    },
    /// Only flush to the OS per record; fsync happens at
    /// [`Durable::checkpoint`], [`Durable::sync`] and [`Durable::close`].
    /// Faster, but acknowledged updates between syncs can be lost to a
    /// power cut (never torn — the per-record CRC still truncates cleanly).
    OnCheckpoint,
}

/// A write-ahead-logged, snapshot-checkpointed backend.
pub struct Durable<B> {
    inner: B,
    vfs: Box<dyn Vfs>,
    wal: Wal,
    stats: DurabilityStats,
    sync_policy: SyncPolicy,
    /// Set when the log and the snapshot line diverged (a checkpoint wrote
    /// its snapshot but could not reset the log): further appends would be
    /// silently discarded by recovery, so the write path refuses them.
    poisoned: Option<String>,
    /// Observability domain for the WAL latency histograms
    /// (`wal.append_ns`, `wal.fsync_ns`, `wal.checkpoint_ns`,
    /// `wal.recovery_replay_ns`); `None` records nothing.
    observer: Option<Arc<ws_obs::Observer>>,
}

impl<B> fmt::Debug for Durable<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Durable")
            .field("generation", &self.wal.generation())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<B: Persist + WriteBackend + Clone> Durable<B> {
    /// Initialize a fresh store on `vfs`: snapshot generation 0 of the given
    /// backend (scrubbed of scratch relations) plus an empty log.
    ///
    /// Refuses a medium that already holds a store (any snapshot file):
    /// writing generation 0 next to existing higher generations would make
    /// the *old* state win the next recovery and silently discard
    /// everything logged through this handle.  Recover an existing store
    /// with [`Durable::open`], or remove its files explicitly first.
    pub fn create(mut vfs: Box<dyn Vfs>, backend: B) -> Result<Self> {
        let existing: Vec<String> = vfs
            .list()?
            .into_iter()
            .filter(|name| snapshot::parse_snapshot_name(name).is_some())
            .collect();
        if !existing.is_empty() {
            return Err(StorageError::corrupt(format!(
                "refusing to initialize over an existing store (found {}); \
                 open it with Durable::open or delete it first",
                existing.join(", ")
            )));
        }
        let mut scrubbed = backend.clone();
        scrubbed.scrub_scratch();
        snapshot::write_snapshot(vfs.as_mut(), 0, &scrubbed)?;
        let wal = Wal::reset(vfs.as_mut(), 0)?;
        Ok(Durable {
            inner: backend,
            vfs,
            wal,
            stats: DurabilityStats::default(),
            sync_policy: SyncPolicy::default(),
            poisoned: None,
            observer: None,
        })
    }

    /// [`Durable::create`] on a filesystem directory.
    pub fn create_dir(dir: impl AsRef<Path>, backend: B) -> Result<Self> {
        Self::create(Box::new(DirVfs::open(dir.as_ref())?), backend)
    }

    /// Snapshot the current state (scrubbed of scratch relations) as the
    /// next generation and reset the log.  Returns the new generation.
    ///
    /// If the snapshot lands but the log reset fails, the handle is
    /// **poisoned**: recovery would load the new snapshot and discard the
    /// stale-generation log, so accepting further appends would silently
    /// lose them — the write path refuses instead (reads keep working, and
    /// everything logged so far is safely inside the new snapshot).
    pub fn checkpoint(&mut self) -> Result<u64> {
        let started = Instant::now();
        let mut scrubbed = self.inner.clone();
        scrubbed.scrub_scratch();
        let generation = self.wal.generation() + 1;
        snapshot::write_snapshot(self.vfs.as_mut(), generation, &scrubbed)?;
        match Wal::reset(self.vfs.as_mut(), generation) {
            Ok(wal) => self.wal = wal,
            Err(e) => {
                self.poisoned = Some(format!(
                    "snapshot generation {generation} is durable but the log \
                     could not be reset to it: {e}"
                ));
                return Err(e);
            }
        }
        snapshot::prune_old(self.vfs.as_mut(), generation);
        self.stats.checkpoints += 1;
        self.stats.snapshot_generation = generation;
        self.stats.wal_records = 0;
        self.stats.wal_bytes = 0;
        self.record_ns("wal.checkpoint_ns", started.elapsed());
        Ok(generation)
    }
}

impl<B: Persist + WriteBackend> Durable<B> {
    /// Recover a store from `vfs`: load the newest valid snapshot, truncate
    /// the WAL's torn tail, and replay the remaining records through the
    /// wrapped backend's own [`WriteBackend`] verbs.
    pub fn open(vfs: Box<dyn Vfs>) -> Result<Self> {
        Self::open_with(vfs, None)
    }

    /// [`Durable::open`] with an observer attached from the first replayed
    /// record on: recovery replay is timed into `wal.recovery_replay_ns`
    /// and the handle keeps recording WAL latencies afterwards.
    pub fn open_observed(vfs: Box<dyn Vfs>, observer: Arc<ws_obs::Observer>) -> Result<Self> {
        Self::open_with(vfs, Some(observer))
    }

    fn open_with(mut vfs: Box<dyn Vfs>, observer: Option<Arc<ws_obs::Observer>>) -> Result<Self> {
        let (generation, mut inner) = snapshot::load_newest::<B>(vfs.as_mut())?;
        let (wal, scanned) = Wal::open(vfs.as_mut(), generation)?;
        let mut stats = DurabilityStats {
            snapshot_generation: generation,
            recovered_records: scanned.update_count() as u64,
            torn_bytes_truncated: scanned.torn_bytes as u64,
            wal_records: scanned.update_count() as u64,
            wal_bytes: scanned.valid_len.saturating_sub(WAL_HEADER_LEN) as u64,
            ..DurabilityStats::default()
        };
        let replay_started = Instant::now();
        for record in &scanned.records {
            // A record that failed live fails identically on replay (the
            // verbs are deterministic); reproducing the failure reproduces
            // the crashed process's state, so replay continues past it.  A
            // batch frame replays all of its updates in order — the frame
            // either validated whole or was truncated whole, so recovery
            // always lands on a batch boundary.
            for update in &record.updates {
                if apply_update(&mut inner, update).is_err() {
                    stats.replayed_failures += 1;
                }
            }
        }
        if let Some(observer) = &observer {
            observer
                .metrics()
                .histogram("wal.recovery_replay_ns")
                .record_duration(replay_started.elapsed());
            observer
                .metrics()
                .counter("wal.recovery.records")
                .add(stats.recovered_records);
        }
        Ok(Durable {
            inner,
            vfs,
            wal,
            stats,
            sync_policy: SyncPolicy::default(),
            poisoned: None,
            observer,
        })
    }

    /// [`Durable::open`] on a filesystem directory.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open(Box::new(DirVfs::open(dir.as_ref())?))
    }
}

impl<B> Durable<B> {
    /// Shared access to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the wrapped backend.
    ///
    /// Mutations made through this handle **bypass the log** and will not
    /// survive recovery until the next [`Durable::checkpoint`]; it exists
    /// for read-side engine plumbing and representation inspection.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Tear the wrapper down without syncing, handing the backend back.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// The snapshot generation the log currently extends.
    pub fn generation(&self) -> u64 {
        self.wal.generation()
    }

    /// The durability counters.
    pub fn stats(&self) -> DurabilityStats {
        self.stats
    }

    /// Force the log to stable storage (fsync).
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync(self.vfs.as_mut())
    }

    /// Flush and fsync the log, surfacing I/O errors, then hand the backend
    /// back — the drop-with-result teardown `Session::close` builds on.
    ///
    /// Closing a **poisoned** handle (a checkpoint's snapshot landed but
    /// its log reset failed) is an error that reports the whole cause
    /// chain: the original poison cause first, then the final sync's
    /// outcome if that failed too — not just whichever error happened
    /// last.  The backend's state is still recoverable via
    /// [`Durable::open`] (it lives in the durable snapshot).
    pub fn close(mut self) -> Result<B> {
        let synced = self.wal.sync(self.vfs.as_mut());
        match (self.poisoned.take(), synced) {
            (None, Ok(())) => Ok(self.inner),
            (None, Err(e)) => Err(e),
            (Some(why), Ok(())) => {
                Err(StorageError::io(format!("closing a poisoned store: {why}")))
            }
            (Some(why), Err(e)) => Err(StorageError::io(format!(
                "closing a poisoned store: {why}; the final sync failed too: {e}"
            ))),
        }
    }

    /// How WAL appends reach stable storage (default:
    /// [`SyncPolicy::EveryRecord`]).
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Trade per-update fsyncs for throughput (see [`SyncPolicy`]).
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.sync_policy = policy;
    }

    /// Attach an observability domain: WAL appends, fsyncs and checkpoints
    /// record latency histograms on it from here on.
    pub fn set_observer(&mut self, observer: Arc<ws_obs::Observer>) {
        self.observer = Some(observer);
    }

    /// Record `elapsed` into the named histogram, when observed.
    fn record_ns(&self, name: &str, elapsed: Duration) {
        if let Some(observer) = &self.observer {
            observer.metrics().histogram(name).record_duration(elapsed);
        }
    }

    /// Append one record to the log (the *log* half of log-then-apply).
    fn log(&mut self, update: &UpdateExpr) -> std::result::Result<(), StorageError> {
        if let Some(why) = &self.poisoned {
            return Err(StorageError::io(format!(
                "store refuses writes: {why}; reopen it to resume"
            )));
        }
        let started = Instant::now();
        let bytes = self.wal.append(self.vfs.as_mut(), update)?;
        self.record_ns("wal.append_ns", started.elapsed());
        if self.sync_policy == SyncPolicy::EveryRecord {
            let started = Instant::now();
            self.wal.sync(self.vfs.as_mut())?;
            self.record_ns("wal.fsync_ns", started.elapsed());
        }
        self.stats.wal_records += 1;
        self.stats.wal_bytes += bytes as u64;
        Ok(())
    }
}

impl<B: WriteBackend> Durable<B> {
    /// The group-commit entry point: log the whole batch, fsync **once**
    /// (unless the policy is [`SyncPolicy::OnCheckpoint`]), then apply each
    /// update, returning the per-update outcomes in submission order.
    ///
    /// The batch is framed as one [`crate::wal::RECORD_BATCH`] record (split
    /// at the policy's `max_batch`), so a crash mid-append tears the frame's
    /// CRC and recovery drops the batch whole — callers whose updates were
    /// in a torn batch were never acknowledged, and no prefix of a batch is
    /// ever replayed.
    ///
    /// Per-update failures (e.g. a deterministic `Inconsistent` conditioning
    /// outcome) are *values* in the returned vector, not errors of the call:
    /// they are logged and replayed like any other update.  The outer error
    /// is reserved for log I/O failures, in which case no update of the
    /// batch touched the backend.
    pub fn apply_batch(
        &mut self,
        updates: &[UpdateExpr],
    ) -> Result<Vec<std::result::Result<f64, B::Error>>> {
        if let Some(why) = &self.poisoned {
            return Err(StorageError::io(format!(
                "store refuses writes: {why}; reopen it to resume"
            )));
        }
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        let max_batch = match self.sync_policy {
            SyncPolicy::GroupCommit { max_batch, .. } => max_batch.max(1),
            _ => updates.len(),
        };
        let mut bytes = 0usize;
        let started = Instant::now();
        for chunk in updates.chunks(max_batch) {
            bytes += if chunk.len() == 1 {
                self.wal.append(self.vfs.as_mut(), &chunk[0])?
            } else {
                self.wal.append_batch(self.vfs.as_mut(), chunk)?
            };
        }
        self.record_ns("wal.append_ns", started.elapsed());
        if !matches!(self.sync_policy, SyncPolicy::OnCheckpoint) {
            let started = Instant::now();
            self.wal.sync(self.vfs.as_mut())?;
            self.record_ns("wal.fsync_ns", started.elapsed());
        }
        self.stats.wal_records += updates.len() as u64;
        self.stats.wal_bytes += bytes as u64;
        self.stats.commit_batches += 1;
        self.stats.batched_updates += updates.len() as u64;
        Ok(updates
            .iter()
            .map(|update| apply_update(&mut self.inner, update))
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Engine plumbing: reads pass through, writes log first.
// ---------------------------------------------------------------------------

impl<B: SchemaCatalog> SchemaCatalog for Durable<B> {
    fn schema_of(&self, relation: &str) -> ws_relational::Result<Schema> {
        self.inner.schema_of(relation)
    }

    fn contains_relation(&self, relation: &str) -> bool {
        self.inner.contains_relation(relation)
    }
}

impl<B: QueryBackend> QueryBackend for Durable<B> {
    type Error = DurableError<B::Error>;

    fn materialize_base(&mut self, name: &str, out: &str) -> std::result::Result<(), Self::Error> {
        self.inner
            .materialize_base(name, out)
            .map_err(DurableError::Backend)
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_select(input, pred, out, ctx)
            .map_err(DurableError::Backend)
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_project(input, attrs, out, ctx)
            .map_err(DurableError::Backend)
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_product(left, right, out, ctx)
            .map_err(DurableError::Backend)
    }

    fn apply_equi_join(
        &mut self,
        left: &str,
        right: &str,
        left_attr: &str,
        right_attr: &str,
        out: &str,
        ctx: &mut ExecContext,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_equi_join(left, right, left_attr, right_attr, out, ctx)
            .map_err(DurableError::Backend)
    }

    fn apply_union(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_union(left, right, out)
            .map_err(DurableError::Backend)
    }

    fn apply_difference(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_difference(left, right, out)
            .map_err(DurableError::Backend)
    }

    fn apply_rename(
        &mut self,
        input: &str,
        from: &str,
        to: &str,
        out: &str,
    ) -> std::result::Result<(), Self::Error> {
        self.inner
            .apply_rename(input, from, to, out)
            .map_err(DurableError::Backend)
    }

    fn drop_scratch(&mut self, name: &str) {
        self.inner.drop_scratch(name);
    }
}

impl<B: WriteBackend> WriteBackend for Durable<B> {
    fn insert_certain(
        &mut self,
        relation: &str,
        tuple: &Tuple,
    ) -> std::result::Result<(), Self::Error> {
        self.log(&UpdateExpr::insert(relation, tuple.clone()))?;
        self.inner
            .insert_certain(relation, tuple)
            .map_err(DurableError::Backend)
    }

    fn insert_possible(
        &mut self,
        relation: &str,
        tuple: &Tuple,
        prob: f64,
    ) -> std::result::Result<(), Self::Error> {
        self.log(&UpdateExpr::insert_possible(relation, tuple.clone(), prob))?;
        self.inner
            .insert_possible(relation, tuple, prob)
            .map_err(DurableError::Backend)
    }

    fn delete_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
    ) -> std::result::Result<(), Self::Error> {
        self.log(&UpdateExpr::delete(relation, pred.clone()))?;
        self.inner
            .delete_where(relation, pred)
            .map_err(DurableError::Backend)
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> std::result::Result<(), Self::Error> {
        self.log(&UpdateExpr::modify(
            relation,
            pred.clone(),
            assignments.to_vec(),
        ))?;
        self.inner
            .modify_where(relation, pred, assignments)
            .map_err(DurableError::Backend)
    }

    fn apply_condition(
        &mut self,
        constraints: &[Dependency],
    ) -> std::result::Result<f64, Self::Error> {
        self.log(&UpdateExpr::condition(constraints.to_vec()))?;
        self.inner
            .apply_condition(constraints)
            .map_err(DurableError::Backend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use ws_core::Wsd;
    use ws_relational::{CmpOp, EqualityGeneratingDependency};

    fn boxed(vfs: &MemVfs) -> Box<dyn Vfs> {
        Box::new(vfs.clone())
    }

    #[test]
    fn updates_survive_a_reopen() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd.clone()).unwrap();
        durable
            .insert_certain(
                "R",
                &Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
            )
            .unwrap();
        durable
            .delete_where("R", &Predicate::eq_const("N", "Smith"))
            .unwrap();
        let live = durable.inner().rep().unwrap();
        assert_eq!(durable.stats().wal_records, 2);

        let recovered = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(recovered.stats().recovered_records, 2);
        assert_eq!(recovered.stats().replayed_failures, 0);
        let rec = recovered.inner().rep().unwrap();
        assert!(live.same_worlds(&rec) && live.same_distribution(&rec, 0.0));
    }

    #[test]
    fn checkpoint_truncates_the_log_and_bumps_the_generation() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd).unwrap();
        durable
            .modify_where(
                "R",
                &Predicate::eq_const("S", 785i64),
                &[("M".to_string(), Value::int(1))],
            )
            .unwrap();
        assert_eq!(durable.checkpoint().unwrap(), 1);
        let stats = durable.stats();
        assert_eq!((stats.wal_records, stats.checkpoints), (0, 1));
        let live = durable.inner().rep().unwrap();

        let recovered = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(recovered.generation(), 1);
        assert_eq!(recovered.stats().recovered_records, 0);
        assert!(live.same_distribution(&recovered.inner().rep().unwrap(), 0.0));
    }

    #[test]
    fn an_inconsistent_condition_replays_as_the_same_failure() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd).unwrap();
        // No world satisfies S=185 ⇒ M > 100.
        let impossible = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "N",
            "Smith",
            "M",
            CmpOp::Gt,
            100i64,
        ));
        assert!(durable
            .apply_condition(std::slice::from_ref(&impossible))
            .is_err());
        let live = durable.inner().clone();

        let recovered = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(recovered.stats().replayed_failures, 1);
        // The failure left the same (partially chased) state behind.
        assert_eq!(recovered.inner().encode_to_vec(), live.encode_to_vec());
    }

    #[test]
    fn failed_log_writes_never_touch_the_backend() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd.clone()).unwrap();
        vfs.set_write_budget(Some(3));
        let err = durable
            .insert_certain(
                "R",
                &Tuple::from_iter([Value::int(1), Value::text("x"), Value::int(1)]),
            )
            .unwrap_err();
        assert!(matches!(err, DurableError::Storage(_)));
        assert_eq!(durable.inner().world_count(), wsd.world_count());
        vfs.set_write_budget(None);

        // The torn record is truncated away on the next open, leaving the
        // snapshot state.
        let recovered = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(recovered.stats().recovered_records, 0);
        assert!(recovered.stats().torn_bytes_truncated > 0);
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd.clone()).unwrap();
        durable.checkpoint().unwrap();
        // Re-initializing over generations {0, 1} would make the old state
        // win the next recovery; it must be refused, store intact.
        let err = Durable::create(boxed(&vfs), wsd).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "got {err}");
        let reopened = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(reopened.generation(), 1);
    }

    #[test]
    fn a_failed_log_reset_poisons_the_write_path() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd.clone()).unwrap();
        // Budget exactly the next snapshot image: the checkpoint's snapshot
        // lands, the 20-byte log reset tears.
        let image = crate::snapshot::encode_snapshot(1, &wsd);
        vfs.set_write_budget(Some(image.len()));
        assert!(durable.checkpoint().is_err());
        vfs.set_write_budget(None);
        // Appends are refused — recovery would discard them silently.
        let err = durable
            .insert_certain(
                "R",
                &Tuple::from_iter([Value::int(1), Value::text("x"), Value::int(1)]),
            )
            .unwrap_err();
        assert!(matches!(err, DurableError::Storage(_)), "got {err}");
        assert_eq!(durable.inner().world_count(), wsd.world_count());
        // Reopening resumes from the durable snapshot.
        let reopened = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(reopened.generation(), 1);
        assert_eq!(reopened.stats().recovered_records, 0);
    }

    #[test]
    fn sync_policy_defaults_to_every_record() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd).unwrap();
        assert_eq!(durable.sync_policy(), SyncPolicy::EveryRecord);
        durable.set_sync_policy(SyncPolicy::OnCheckpoint);
        durable
            .delete_where("R", &Predicate::eq_const("N", "Smith"))
            .unwrap();
        assert_eq!(durable.stats().wal_records, 1);
    }

    #[test]
    fn group_commit_fsyncs_once_per_batch() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd).unwrap();
        durable.set_sync_policy(SyncPolicy::GroupCommit {
            max_batch: 64,
            max_wait: std::time::Duration::from_millis(2),
        });
        let updates: Vec<UpdateExpr> = (0..5)
            .map(|i| {
                UpdateExpr::insert(
                    "R",
                    Tuple::from_iter([Value::int(1000 + i), Value::text("x"), Value::int(1)]),
                )
            })
            .collect();
        let before = vfs.sync_count();
        let outcomes = durable.apply_batch(&updates).unwrap();
        assert_eq!(outcomes.len(), 5);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(vfs.sync_count(), before + 1, "one fsync for the batch");
        assert_eq!(durable.stats().commit_batches, 1);
        assert_eq!(durable.stats().batched_updates, 5);

        // The per-record default pays one fsync per update instead.
        durable.set_sync_policy(SyncPolicy::EveryRecord);
        let before = vfs.sync_count();
        for update in &updates[..3] {
            durable.apply_batch(std::slice::from_ref(update)).unwrap();
        }
        assert_eq!(vfs.sync_count(), before + 3);
    }

    #[test]
    fn apply_batch_splits_frames_at_max_batch() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd).unwrap();
        durable.set_sync_policy(SyncPolicy::GroupCommit {
            max_batch: 2,
            max_wait: std::time::Duration::ZERO,
        });
        let updates: Vec<UpdateExpr> = (0..5)
            .map(|i| {
                UpdateExpr::insert(
                    "R",
                    Tuple::from_iter([Value::int(2000 + i), Value::text("y"), Value::int(1)]),
                )
            })
            .collect();
        durable.apply_batch(&updates).unwrap();
        let scan = crate::wal::scan(&vfs.bytes(crate::wal::WAL_FILE).unwrap()).unwrap();
        // 2 + 2 + 1: two batch frames and one singleton.
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.update_count(), 5);
        assert_eq!(durable.stats().wal_records, 5);

        // Recovery replays every update of every frame.
        let recovered = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(recovered.stats().recovered_records, 5);
        let live = durable.inner().rep().unwrap();
        let rec = recovered.inner().rep().unwrap();
        assert!(live.same_worlds(&rec) && live.same_distribution(&rec, 0.0));
    }

    #[test]
    fn a_batched_inconsistency_is_an_outcome_not_an_error() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd).unwrap();
        durable.set_sync_policy(SyncPolicy::GroupCommit {
            max_batch: 8,
            max_wait: std::time::Duration::ZERO,
        });
        let impossible = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "N",
            "Smith",
            "M",
            CmpOp::Gt,
            100i64,
        ));
        let batch = vec![
            UpdateExpr::insert(
                "R",
                Tuple::from_iter([Value::int(7), Value::text("z"), Value::int(0)]),
            ),
            UpdateExpr::condition(vec![impossible]),
        ];
        let outcomes = durable.apply_batch(&batch).unwrap();
        assert!(outcomes[0].is_ok());
        assert!(
            outcomes[1].is_err(),
            "the inconsistency is a per-update outcome"
        );
        let live = durable.inner().clone();

        // Replay reproduces the same partial state, failure included.
        let recovered = Durable::<Wsd>::open(boxed(&vfs)).unwrap();
        assert_eq!(recovered.stats().recovered_records, 2);
        assert_eq!(recovered.stats().replayed_failures, 1);
        assert_eq!(recovered.inner().encode_to_vec(), live.encode_to_vec());
    }

    #[test]
    fn closing_a_poisoned_store_reports_the_cause_chain() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let mut durable = Durable::create(boxed(&vfs), wsd.clone()).unwrap();
        let image = crate::snapshot::encode_snapshot(1, &wsd);
        vfs.set_write_budget(Some(image.len()));
        assert!(durable.checkpoint().is_err());
        vfs.set_write_budget(None);
        let err = durable.close().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("poisoned"), "got: {msg}");
        assert!(
            msg.contains("could not be reset"),
            "the poison cause must survive into close's error: {msg}"
        );
    }

    #[test]
    fn close_surfaces_sync_and_hands_the_backend_back() {
        let vfs = MemVfs::new();
        let wsd = ws_core::wsd::example_census_wsd();
        let durable = Durable::create(boxed(&vfs), wsd.clone()).unwrap();
        let back = durable.close().unwrap();
        assert_eq!(back.world_count(), wsd.world_count());
    }
}
