//! # ws-storage — durable snapshots + a write-ahead log of the update
//! language
//!
//! Every representation in this stack lived and died in RAM: the paper's
//! pitch is managing 10^(10^6) worlds *as a database system*, and a database
//! system survives a restart.  MayBMS inherited durability from the host
//! RDBMS it compiled into; the five native backends here (single-world
//! [`ws_relational::Database`], [`ws_core::Wsd`], [`ws_uwsdt::Uwsdt`],
//! [`ws_urel::UDatabase`], explicit [`ws_core::WorldSet`]) need their own
//! persistence subsystem.  This crate is that subsystem, in three layers:
//!
//! * [`codec`] + [`persist`] — a versioned, hand-rolled binary codec (the
//!   build is offline, so no serde) with exact round-trip
//!   `decode(encode(x)) == x` for all five representations *and* for the
//!   PR 4 update language ([`ws_core::ops::update::UpdateExpr`],
//!   dependencies, predicates), which is exactly the logical-operation
//!   vocabulary a WAL should record.
//! * [`snapshot`] + [`wal`] — atomic, checksummed snapshot files
//!   (write-temp → fsync → rename) and a CRC-per-record write-ahead log
//!   with torn-tail truncation on open, over a tiny [`vfs::Vfs`] medium
//!   abstraction (a real directory, or a fault-injecting in-memory medium
//!   the crash-recovery differential suite uses to cut the power after
//!   every WAL-record prefix).
//! * [`durable`] — [`Durable<B>`]: log-then-apply on every
//!   [`ws_relational::WriteBackend`] verb, `checkpoint()` = snapshot + log
//!   truncation, `open()` = newest valid snapshot + WAL-tail replay through
//!   the backend's own verbs.
//!
//! `maybms::Session::open_durable` mounts the whole thing behind the session
//! API, so `session.apply(...)` is write-ahead logged without the caller
//! doing anything.
//!
//! ## Recovery contract
//!
//! After a crash at *any* byte boundary, `open()` reconstructs exactly the
//! state whose updates were fully logged: the newest intact snapshot plus
//! every intact WAL record, in order, including deterministic failures
//! (a conditioning step that reported inconsistency live fails identically
//! on replay).  This is proven per backend by the repository-level
//! `tests/durability_equivalence.rs` differential suite against the
//! in-memory oracle.

pub mod codec;
pub mod crc32;
pub mod durable;
pub mod error;
pub mod persist;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use crc32::crc32;
pub use durable::{DurabilityStats, Durable, SyncPolicy};
pub use error::{DurableError, StorageError};
pub use persist::Persist;
pub use vfs::{DirVfs, LatencyVfs, MemVfs, Vfs};
pub use wal::{Wal, WalRecord, WalScan};
