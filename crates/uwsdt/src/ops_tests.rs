//! Unit tests of the UWSDT operators (`crate::ops`), complementing the
//! oracle-based integration tests in the repository-level `tests/` directory:
//! each operator is exercised on a small hand-built UWSDT and checked by
//! enumerating the represented worlds.

use crate::build::{from_or_relation, OrField};
use crate::model::Uwsdt;
use crate::ops;
use ws_relational::{CmpOp, Predicate, Relation, Schema, Tuple, Value};

/// R[A, B] with three tuples; t1.B and t2.A are uncertain.
fn sample() -> Uwsdt {
    let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
    base.push_values([1i64, 10]).unwrap();
    base.push_values([2i64, 20]).unwrap();
    base.push_values([3i64, 30]).unwrap();
    from_or_relation(
        &base,
        &[
            OrField::uniform(0, "B", vec![Value::int(10), Value::int(11)]),
            OrField::uniform(1, "A", vec![Value::int(2), Value::int(4)]),
        ],
    )
    .unwrap()
}

/// Collect, per world, the rows of one relation (as sorted tuples) together
/// with the world's probability.
fn worlds_of(uwsdt: &Uwsdt, relation: &str) -> Vec<(Vec<Tuple>, f64)> {
    uwsdt
        .enumerate_worlds(100_000)
        .unwrap()
        .into_iter()
        .map(|(db, p)| {
            let mut rows: Vec<Tuple> = db.relation(relation).unwrap().rows().to_vec();
            rows.sort();
            rows.dedup();
            (rows, p)
        })
        .collect()
}

#[test]
fn select_on_certain_fields_filters_the_template_only() {
    let mut uwsdt = sample();
    ops::select(&mut uwsdt, "R", "P", &Predicate::eq_const("A", 3i64)).unwrap();
    uwsdt.validate().unwrap();
    let template = uwsdt.template("P").unwrap();
    assert_eq!(template.len(), 1);
    assert_eq!(template.rows()[0][1], Value::int(30));
    // No new components were created, nothing composed.
    assert_eq!(uwsdt.component_ids().len(), 2);
}

#[test]
fn select_on_uncertain_fields_restricts_values_per_world() {
    let mut uwsdt = sample();
    ops::select(
        &mut uwsdt,
        "R",
        "P",
        &Predicate::cmp_const("B", CmpOp::Gt, 10i64),
    )
    .unwrap();
    uwsdt.validate().unwrap();
    for (r_rows, _) in worlds_of(&uwsdt, "R") {
        let _ = r_rows;
    }
    // In every world, P = σ_{B>10}(R).
    for (db, _) in uwsdt.enumerate_worlds(10_000).unwrap() {
        let r = db.relation("R").unwrap();
        let p = db.relation("P").unwrap();
        for row in r.rows() {
            assert_eq!(row[1].as_int().unwrap() > 10, p.contains(row));
        }
        for row in p.rows() {
            assert!(r.contains(row));
        }
    }
}

#[test]
fn select_dropping_every_alternative_removes_the_tuple() {
    let mut uwsdt = sample();
    // t1.B ∈ {10, 11}: the selection B > 50 never holds for tuple 1.
    ops::select(
        &mut uwsdt,
        "R",
        "P",
        &Predicate::cmp_const("B", CmpOp::Gt, 50i64),
    )
    .unwrap();
    assert_eq!(uwsdt.template("P").unwrap().len(), 0);
}

#[test]
fn conjunction_spanning_two_components_composes_them() {
    let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
    base.push_values([1i64, 10]).unwrap();
    let mut uwsdt = from_or_relation(
        &base,
        &[
            OrField::uniform(0, "A", vec![Value::int(1), Value::int(2)]),
            OrField::uniform(0, "B", vec![Value::int(10), Value::int(20)]),
        ],
    )
    .unwrap();
    assert_eq!(uwsdt.component_ids().len(), 2);
    ops::select(
        &mut uwsdt,
        "R",
        "P",
        &Predicate::or(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::eq_const("B", 20i64),
        ]),
    )
    .unwrap();
    // The disjunction spans both placeholders: they are now in one component.
    assert_eq!(uwsdt.component_ids().len(), 1);
    for (db, _) in uwsdt.enumerate_worlds(100).unwrap() {
        let r = db.relation("R").unwrap();
        let p = db.relation("P").unwrap();
        for row in r.rows() {
            let keep = row[0] == Value::int(1) || row[1] == Value::int(20);
            assert_eq!(keep, p.contains(row));
        }
    }
}

#[test]
fn attribute_comparison_selection_within_a_tuple() {
    let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
    base.push_values([1i64, 1]).unwrap();
    base.push_values([2i64, 5]).unwrap();
    let mut uwsdt = from_or_relation(
        &base,
        &[OrField::uniform(1, "B", vec![Value::int(2), Value::int(5)])],
    )
    .unwrap();
    ops::select(
        &mut uwsdt,
        "R",
        "P",
        &Predicate::cmp_attr("A", CmpOp::Lt, "B"),
    )
    .unwrap();
    for (db, _) in uwsdt.enumerate_worlds(100).unwrap() {
        let p = db.relation("P").unwrap();
        let r = db.relation("R").unwrap();
        for row in r.rows() {
            assert_eq!(row[0].as_int() < row[1].as_int(), p.contains(row));
        }
    }
}

#[test]
fn projection_preserves_absence_information() {
    // Select away some alternatives of t1.B, then project B out: tuple 1 must
    // not reappear in the worlds where the selection had removed it.
    let mut uwsdt = sample();
    ops::select(&mut uwsdt, "R", "S", &Predicate::eq_const("B", 11i64)).unwrap();
    ops::project(&mut uwsdt, "S", "P", &["A"]).unwrap();
    uwsdt.validate().unwrap();
    for (db, _) in uwsdt.enumerate_worlds(10_000).unwrap() {
        let s = db.relation("S").unwrap();
        let p = db.relation("P").unwrap();
        assert_eq!(s.len(), p.len());
        for row in s.rows() {
            assert!(p.contains(&Tuple::new(vec![row[0].clone()])));
        }
    }
}

#[test]
fn projection_keeps_placeholders_of_kept_attributes() {
    let mut uwsdt = sample();
    ops::project(&mut uwsdt, "R", "P", &["B"]).unwrap();
    let stats = crate::stats::stats_for(&uwsdt, "P").unwrap();
    assert_eq!(stats.placeholders, 1); // only t1.B was uncertain among B's
    assert_eq!(stats.template_rows, 3);
    assert!(crate::ops::possible_tuples(&uwsdt, "P")
        .unwrap()
        .contains(&Tuple::from_iter([11i64])));
}

#[test]
fn rename_and_union_carry_placeholders() {
    let mut uwsdt = sample();
    ops::rename(&mut uwsdt, "R", "R2", "A", "A2").unwrap();
    assert!(uwsdt.template("R2").unwrap().schema().contains("A2"));
    assert_eq!(
        crate::stats::stats_for(&uwsdt, "R2").unwrap().placeholders,
        2
    );

    let mut uwsdt = sample();
    ops::select(&mut uwsdt, "R", "S1", &Predicate::eq_const("A", 1i64)).unwrap();
    ops::select(&mut uwsdt, "R", "S2", &Predicate::eq_const("A", 3i64)).unwrap();
    ops::union(&mut uwsdt, "S1", "S2", "U").unwrap();
    assert_eq!(uwsdt.template("U").unwrap().len(), 2);
    for (db, _) in uwsdt.enumerate_worlds(10_000).unwrap() {
        let u = db.relation("U").unwrap();
        let r = db.relation("R").unwrap();
        for row in r.rows() {
            let keep = row[0] == Value::int(1) || row[0] == Value::int(3);
            assert_eq!(keep, u.contains(row));
        }
    }
    // Union of incompatible schemas is rejected.
    ops::rename(&mut uwsdt, "R", "R3", "A", "A3").unwrap();
    assert!(ops::union(&mut uwsdt, "R", "R3", "X").is_err());
}

#[test]
fn product_and_join_semantics() {
    let mut uwsdt = sample();
    let mut other = Relation::new(Schema::new("S", &["C"]).unwrap());
    other.push_values([10i64]).unwrap();
    other.push_values([11i64]).unwrap();
    uwsdt.add_template(other).unwrap();

    let mut with_product = uwsdt.clone();
    ops::product(&mut with_product, "R", "S", "T").unwrap();
    assert_eq!(with_product.template("T").unwrap().len(), 6);

    ops::join(&mut uwsdt, "R", "S", "J", "B", "C").unwrap();
    for (db, _) in uwsdt.enumerate_worlds(10_000).unwrap() {
        let j = db.relation("J").unwrap();
        let r = db.relation("R").unwrap();
        let s = db.relation("S").unwrap();
        let mut expected = 0;
        for a in r.rows() {
            for b in s.rows() {
                if a[1] == b[0] {
                    expected += 1;
                    assert!(j.contains(&a.concat(b)));
                }
            }
        }
        assert_eq!(j.len(), expected);
    }
}

#[test]
fn difference_respects_uncertain_matches() {
    let mut base = Relation::new(Schema::new("R", &["A"]).unwrap());
    base.push_values([1i64]).unwrap();
    base.push_values([2i64]).unwrap();
    let mut uwsdt = from_or_relation(&base, &[]).unwrap();
    let mut other = Relation::new(Schema::new("S", &["A"]).unwrap());
    other.push_values([0i64]).unwrap();
    let s_noise = vec![OrField::uniform(0, "A", vec![Value::int(1), Value::int(3)])];
    let s = from_or_relation(&other, &s_noise).unwrap();
    uwsdt
        .add_template(s.template("S").unwrap().clone())
        .unwrap();
    for field in s.placeholders_of("S") {
        let values: Vec<(Value, f64)> = s
            .component_worlds(s.component_of(&field).unwrap())
            .unwrap()
            .iter()
            .filter_map(|w| {
                s.placeholder_values(&field)
                    .unwrap()
                    .get(&w.lwid)
                    .map(|v| (v.clone(), w.prob))
            })
            .collect();
        uwsdt.add_placeholder(field, values).unwrap();
    }
    ops::difference(&mut uwsdt, "R", "S", "D").unwrap();
    uwsdt.validate().unwrap();
    for (db, _) in uwsdt.enumerate_worlds(100).unwrap() {
        let d = db.relation("D").unwrap();
        let s_rel = db.relation("S").unwrap();
        // 1 is in the difference iff S's tuple is 3 in that world.
        assert_eq!(
            d.contains(&Tuple::from_iter([1i64])),
            s_rel.contains(&Tuple::from_iter([3i64]))
        );
        // 2 is never matched by S, so it is always in the difference.
        assert!(d.contains(&Tuple::from_iter([2i64])));
    }
    // Schema mismatch is rejected.
    assert!(ops::difference(&mut uwsdt, "R", "D", "D").is_err());
}

#[test]
fn certain_core_returns_only_unconditional_tuples() {
    let mut uwsdt = sample();
    ops::select(
        &mut uwsdt,
        "R",
        "P",
        &Predicate::cmp_const("B", CmpOp::Gt, 10i64),
    )
    .unwrap();
    let core_r = ops::certain_core(&uwsdt, "R").unwrap();
    assert_eq!(core_r.len(), 1); // only tuple (3, 30) has no placeholders
    let core_p = ops::certain_core(&uwsdt, "P").unwrap();
    // (2|4, 20) has an uncertain A; (3, 30) is certain and always selected.
    assert_eq!(core_p.len(), 1);
    assert_eq!(core_p.rows()[0][0], Value::int(3));
}

#[test]
fn result_relations_cannot_clobber_existing_names() {
    let mut uwsdt = sample();
    assert!(ops::select(&mut uwsdt, "R", "R", &Predicate::eq_const("A", 1i64)).is_err());
    assert!(ops::project(&mut uwsdt, "R", "R", &["A"]).is_err());
    assert!(ops::rename(&mut uwsdt, "R", "R", "A", "A2").is_err());
    assert!(ops::select(&mut uwsdt, "NOPE", "X", &Predicate::eq_const("A", 1i64)).is_err());
    assert!(ops::project(&mut uwsdt, "R", "P", &["NOPE"]).is_err());
}
