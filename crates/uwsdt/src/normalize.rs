//! Normalization of UWSDTs (§7 adapted to the uniform representation).
//!
//! Queries and the chase leave UWSDTs in a correct but not minimal state:
//! composed components may contain duplicate local worlds, placeholders whose
//! remaining value is unique are still stored in the component relation
//! instead of the template, presence conditions may have become vacuous, and
//! components may no longer be referenced at all.  The normalization passes
//! here mirror the `compress` / `decompose` / invalid-tuple algorithms of
//! Figure 20:
//!
//! * [`compress_components`] — merge indistinguishable local worlds, summing
//!   their probabilities (Fig. 20 `compress`),
//! * [`fold_certain_placeholders`] — move placeholders that carry the same
//!   value in every local world back into the template (the UWSDT analogue of
//!   maximal decomposition: a one-value component is a `D_i` relation of the
//!   WSDT definition and belongs in the template),
//! * [`remove_vacuous_presence`] — drop presence conditions that hold in
//!   every local world of their component, and
//! * [`prune_unreferenced_components`] — drop components that define no
//!   placeholder and constrain no tuple.
//!
//! [`normalize`] runs all passes to a fixpoint and reports what changed; the
//! represented world-set (and its probability distribution) is unchanged,
//! which `tests::normalization_preserves_the_world_set` and the
//! `uwsdt_vs_wsd` integration suite verify.

use std::collections::{BTreeMap, BTreeSet};

use ws_relational::Value;

use crate::error::Result;
use crate::model::{Cid, Lwid, Uwsdt};

/// What a normalization pass changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NormalizationReport {
    /// Local worlds merged away by compression.
    pub merged_local_worlds: usize,
    /// Placeholders folded back into their template.
    pub folded_placeholders: usize,
    /// Presence conditions dropped because they were vacuous.
    pub dropped_presence_conditions: usize,
    /// Components removed because nothing referenced them.
    pub pruned_components: usize,
}

impl NormalizationReport {
    /// Whether the pass changed anything.
    pub fn changed(&self) -> bool {
        *self != NormalizationReport::default()
    }

    fn absorb(&mut self, other: NormalizationReport) {
        self.merged_local_worlds += other.merged_local_worlds;
        self.folded_placeholders += other.folded_placeholders;
        self.dropped_presence_conditions += other.dropped_presence_conditions;
        self.pruned_components += other.pruned_components;
    }
}

/// Merge local worlds of a component that are indistinguishable: they assign
/// the same value (or the same absence) to every placeholder of the component
/// and agree on membership in every presence condition referencing it.
/// Probabilities are summed.  Returns the number of merged-away local worlds.
pub fn compress_components(uwsdt: &mut Uwsdt) -> Result<usize> {
    let mut merged_total = 0;
    for cid in uwsdt.component_ids() {
        merged_total += compress_component(uwsdt, cid)?;
    }
    Ok(merged_total)
}

fn compress_component(uwsdt: &mut Uwsdt, cid: Cid) -> Result<usize> {
    let lwids: Vec<Lwid> = uwsdt
        .component_worlds(cid)?
        .iter()
        .map(|w| w.lwid)
        .collect();
    if lwids.len() < 2 {
        return Ok(0);
    }
    let fields = uwsdt.component_fields(cid).to_vec();
    // Signature of a local world: its value (or absence) for every
    // placeholder, plus its membership in every presence condition on `cid`.
    let presence_sets: Vec<BTreeSet<Lwid>> = uwsdt
        .all_presence()
        .filter(|(_, _, c)| c.cid == cid)
        .map(|(_, _, c)| c.lwids.clone())
        .collect();
    let mut signature_to_rep: BTreeMap<Vec<(Option<Value>, bool)>, Lwid> = BTreeMap::new();
    let mut merge_into: BTreeMap<Lwid, Lwid> = BTreeMap::new();
    for &lwid in &lwids {
        let mut signature: Vec<(Option<Value>, bool)> = Vec::new();
        for field in &fields {
            let value = uwsdt
                .placeholder_values(field)
                .and_then(|m| m.get(&lwid).cloned());
            signature.push((value, false));
        }
        for set in &presence_sets {
            signature.push((None, set.contains(&lwid)));
        }
        match signature_to_rep.get(&signature) {
            Some(&rep) => {
                merge_into.insert(lwid, rep);
            }
            None => {
                signature_to_rep.insert(signature, lwid);
            }
        }
    }
    if merge_into.is_empty() {
        return Ok(0);
    }

    // Move the probability mass onto the representatives.
    {
        let worlds = uwsdt.worlds_mut(cid)?;
        let mut extra: BTreeMap<Lwid, f64> = BTreeMap::new();
        for entry in worlds.iter() {
            if let Some(&rep) = merge_into.get(&entry.lwid) {
                *extra.entry(rep).or_default() += entry.prob;
            }
        }
        worlds.retain(|w| !merge_into.contains_key(&w.lwid));
        for entry in worlds.iter_mut() {
            if let Some(p) = extra.get(&entry.lwid) {
                entry.prob += p;
            }
        }
    }
    // Drop the merged local worlds from the value maps and presence sets
    // (their representative carries the identical information).
    for field in &fields {
        if let Some(values) = uwsdt.values_map_mut(field) {
            values.retain(|lwid, _| !merge_into.contains_key(lwid));
        }
    }
    for condition in uwsdt.presence_conditions_mut() {
        if condition.cid == cid {
            condition.lwids.retain(|l| !merge_into.contains_key(l));
        }
    }
    Ok(merge_into.len())
}

/// Fold placeholders that carry the same value in *every* local world of
/// their component back into the template relation.  Returns the number of
/// folded placeholders.
pub fn fold_certain_placeholders(uwsdt: &mut Uwsdt) -> Result<usize> {
    let mut folded = 0;
    for relation in uwsdt
        .relation_names()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
    {
        for field in uwsdt.placeholders_of(&relation) {
            let Some(cid) = uwsdt.component_of(&field) else {
                continue;
            };
            let lwids: Vec<Lwid> = uwsdt
                .component_worlds(cid)?
                .iter()
                .map(|w| w.lwid)
                .collect();
            let Some(values) = uwsdt.placeholder_values(&field) else {
                continue;
            };
            // Certain iff a value exists for every local world and all values
            // coincide.
            let mut iter = lwids.iter();
            let Some(first) = iter.next().and_then(|l| values.get(l)) else {
                continue;
            };
            let first = first.clone();
            if !lwids.iter().all(|l| values.get(l) == Some(&first)) {
                continue;
            }
            uwsdt.set_template_value(&field, first)?;
            uwsdt.remove_placeholder(&field);
            folded += 1;
        }
    }
    Ok(folded)
}

/// Remove presence conditions that mention every local world of their
/// component (they constrain nothing).  Returns the number removed.
pub fn remove_vacuous_presence(uwsdt: &mut Uwsdt) -> Result<usize> {
    // Collect the full lwid set of every component first (immutable pass).
    let mut full_sets: BTreeMap<Cid, BTreeSet<Lwid>> = BTreeMap::new();
    for cid in uwsdt.component_ids() {
        full_sets.insert(
            cid,
            uwsdt
                .component_worlds(cid)?
                .iter()
                .map(|w| w.lwid)
                .collect(),
        );
    }
    // Rewrite: a vacuous condition is marked by emptying nothing — we instead
    // rebuild each tuple's condition list without the vacuous entries.
    let tuples: Vec<(String, usize)> = uwsdt
        .all_presence()
        .map(|(rel, tuple, _)| (rel.to_string(), tuple))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut removed = 0;
    for (relation, tuple) in tuples {
        let conditions = uwsdt.presence_of(&relation, tuple).to_vec();
        let kept: Vec<_> = conditions
            .iter()
            .filter(|c| match full_sets.get(&c.cid) {
                Some(full) => &c.lwids != full,
                None => true,
            })
            .cloned()
            .collect();
        removed += conditions.len() - kept.len();
        uwsdt.set_presence(&relation, tuple, kept);
    }
    Ok(removed)
}

/// Drop components that define no placeholder and appear in no presence
/// condition.  Returns the number of dropped components.
pub fn prune_unreferenced_components(uwsdt: &mut Uwsdt) -> Result<usize> {
    let referenced: BTreeSet<Cid> = uwsdt.all_presence().map(|(_, _, c)| c.cid).collect();
    let mut pruned = 0;
    for cid in uwsdt.component_ids() {
        if uwsdt.component_fields(cid).is_empty() && !referenced.contains(&cid) {
            uwsdt.drop_component(cid)?;
            pruned += 1;
        }
    }
    Ok(pruned)
}

/// Run every normalization pass to a fixpoint.
pub fn normalize(uwsdt: &mut Uwsdt) -> Result<NormalizationReport> {
    let mut total = NormalizationReport::default();
    loop {
        let pass = NormalizationReport {
            merged_local_worlds: compress_components(uwsdt)?,
            folded_placeholders: fold_certain_placeholders(uwsdt)?,
            dropped_presence_conditions: remove_vacuous_presence(uwsdt)?,
            pruned_components: prune_unreferenced_components(uwsdt)?,
        };
        if !pass.changed() {
            return Ok(total);
        }
        total.absorb(pass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::from_wsd;
    use crate::model::WorldEntry;
    use crate::ops;
    use crate::stats::stats_for;
    use ws_core::wsd::example_census_wsd;
    use ws_core::FieldId;
    use ws_relational::{Predicate, Relation, Schema, Tuple, Value};

    fn distributions_match(a: &Uwsdt, b: &Uwsdt, relation: &str) {
        let worlds_a = a.enumerate_worlds(1 << 16).unwrap();
        let worlds_b = b.enumerate_worlds(1 << 16).unwrap();
        let mass = |worlds: &[(ws_relational::Database, f64)], rel: &Relation| -> f64 {
            worlds
                .iter()
                .filter(|(db, _)| {
                    db.relation(relation)
                        .map(|r| r.set_eq(rel))
                        .unwrap_or(false)
                })
                .map(|(_, p)| p)
                .sum()
        };
        for (db, p) in &worlds_a {
            let rel = db.relation(relation).unwrap();
            let q = mass(&worlds_b, rel);
            assert!((mass(&worlds_a, rel) - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn compression_merges_duplicate_local_worlds() {
        // A component with two indistinguishable local worlds for one
        // placeholder.
        let mut uwsdt = Uwsdt::new();
        let schema = Schema::new("R", &["A"]).unwrap();
        let mut template = Relation::new(schema);
        template.push(Tuple::from_iter([Value::Unknown])).unwrap();
        uwsdt.add_template(template).unwrap();
        let cid = uwsdt
            .create_component(vec![
                WorldEntry {
                    lwid: 0,
                    prob: 0.25,
                },
                WorldEntry {
                    lwid: 1,
                    prob: 0.25,
                },
                WorldEntry { lwid: 2, prob: 0.5 },
            ])
            .unwrap();
        let field = FieldId::new("R", 0, "A");
        let values: std::collections::BTreeMap<_, _> =
            [(0, Value::int(1)), (1, Value::int(1)), (2, Value::int(2))]
                .into_iter()
                .collect();
        uwsdt
            .add_placeholder_in_component(field.clone(), cid, values)
            .unwrap();

        let before = uwsdt.clone();
        let merged = compress_components(&mut uwsdt).unwrap();
        assert_eq!(merged, 1);
        assert_eq!(uwsdt.component_worlds(cid).unwrap().len(), 2);
        let total: f64 = uwsdt
            .component_worlds(cid)
            .unwrap()
            .iter()
            .map(|w| w.prob)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        distributions_match(&before, &uwsdt, "R");
    }

    #[test]
    fn certain_placeholders_are_folded_into_the_template() {
        // After compression the placeholder below has a single value left.
        let mut uwsdt = Uwsdt::new();
        let schema = Schema::new("R", &["A", "B"]).unwrap();
        let mut template = Relation::new(schema);
        template
            .push(Tuple::from_iter([Value::Unknown, Value::int(9)]))
            .unwrap();
        uwsdt.add_template(template).unwrap();
        let field = FieldId::new("R", 0, "A");
        uwsdt
            .add_placeholder(
                field.clone(),
                vec![(Value::int(7), 0.6), (Value::int(7), 0.4)],
            )
            .unwrap();
        let report = normalize(&mut uwsdt).unwrap();
        assert_eq!(report.merged_local_worlds, 1);
        assert_eq!(report.folded_placeholders, 1);
        assert!(!uwsdt.is_placeholder(&field));
        assert_eq!(
            uwsdt.template("R").unwrap().rows()[0][0],
            Value::int(7),
            "the certain value moved into the template"
        );
        assert_eq!(uwsdt.component_ids().len(), 0);
    }

    #[test]
    fn normalization_preserves_the_world_set() {
        // Run a query, then normalize and compare the represented world-sets.
        let mut uwsdt = from_wsd(&example_census_wsd()).unwrap();
        ops::select(&mut uwsdt, "R", "Q", &Predicate::eq_const("M", 1i64)).unwrap();
        let before = uwsdt.clone();
        let report = normalize(&mut uwsdt).unwrap();
        let _ = report; // any outcome is fine as long as semantics hold
        distributions_match(&before, &uwsdt, "R");
        distributions_match(&before, &uwsdt, "Q");
    }

    #[test]
    fn already_normal_uwsdts_are_left_alone() {
        // The unqueried census UWSDT is already in normal form: distinct
        // local worlds, no certain placeholders, no presence conditions.
        let mut uwsdt = from_wsd(&example_census_wsd()).unwrap();
        let before = uwsdt.clone();
        let report = normalize(&mut uwsdt).unwrap();
        distributions_match(&before, &uwsdt, "R");
        assert_eq!(report.merged_local_worlds, 0);
        assert_eq!(report.folded_placeholders, 0);
    }

    #[test]
    fn chased_census_scenario_shrinks_under_normalization() {
        // A small census scenario: chase the dependencies, then normalize.
        // Components whose local worlds collapsed to a single value must be
        // folded into the template, so the placeholder count cannot grow.
        let mut wsd = example_census_wsd();
        ws_core::chase::chase(
            &mut wsd,
            &[ws_core::Dependency::Egd(
                ws_core::EqualityGeneratingDependency::implies(
                    "R",
                    "S",
                    185i64,
                    "M",
                    ws_relational::CmpOp::Eq,
                    1i64,
                ),
            )],
        )
        .unwrap();
        let mut uwsdt = from_wsd(&wsd).unwrap();
        let before_stats = stats_for(&uwsdt, "R").unwrap();
        normalize(&mut uwsdt).unwrap();
        let after_stats = stats_for(&uwsdt, "R").unwrap();
        assert!(after_stats.components <= before_stats.components);
        assert!(after_stats.c_size <= before_stats.c_size);
    }
}
