//! The update language on UWSDTs: the [`WriteBackend`] implementation.
//!
//! Updates follow the same sparseness philosophy as the query operators in
//! [`crate::ops`]: the template rows carry the bulk of the data, so an update
//! whose predicate only touches certain fields is processed at single-world
//! cost (template edits and presence-condition changes), and components are
//! composed only when a predicate or assignment genuinely spans several of
//! them.  Concretely:
//!
//! * certain inserts append a template row;
//! * possible inserts append a template row guarded by a presence condition
//!   over a fresh two-local-world component (`present` with mass `p`,
//!   `absent` with mass `1 − p`);
//! * deletes *restrict presence conditions* — the tuple is removed from
//!   exactly the local worlds whose placeholder values match the predicate —
//!   and never remove template rows (slots keep their identity, mirroring
//!   the WSD convention of blanking fields to `⊥`);
//! * modifications rewrite `C` values in the matching local worlds,
//!   placeholder-izing template fields that become world-dependent; and
//! * conditioning is the §8 chase, which composes, removes violating local
//!   worlds and renormalizes.
//!
//! A final [`mod@crate::normalize`] pass re-decomposes: it folds placeholders
//! that became certain back into the template, drops vacuous presence
//! conditions and prunes unreferenced components.

use crate::error::{Result, UwsdtError};
use crate::model::{Cid, Lwid, Uwsdt, WorldEntry};
use crate::normalize;
use std::collections::BTreeSet;
use ws_core::FieldId;
use ws_relational::engine::{check_assignments, check_insertable, check_probability};
use ws_relational::{Dependency, Predicate, Tuple, Value, WriteBackend};

/// The distinct components of the placeholder fields among `attrs` of a
/// tuple.
fn components_of_attrs(uwsdt: &Uwsdt, relation: &str, tuple: usize, attrs: &[&str]) -> Vec<Cid> {
    let mut cids: Vec<Cid> = attrs
        .iter()
        .filter_map(|a| uwsdt.component_of(&FieldId::new(relation, tuple, *a)))
        .collect();
    cids.sort_unstable();
    cids.dedup();
    cids
}

/// Mark a template tuple as absent from every world: a presence condition
/// with an empty local-world set (conjoined with whatever conditions the
/// tuple already has) can never be satisfied.
fn mark_absent(uwsdt: &mut Uwsdt, relation: &str, tuple: usize) -> Result<()> {
    let cid = match uwsdt.presence_of(relation, tuple).first() {
        Some(cond) => cond.cid,
        None => uwsdt.create_component(vec![WorldEntry { lwid: 0, prob: 1.0 }])?,
    };
    uwsdt.add_presence(relation, tuple, cid, BTreeSet::new())
}

impl WriteBackend for Uwsdt {
    fn insert_certain(&mut self, relation: &str, tuple: &Tuple) -> Result<()> {
        let schema = self.template(relation)?.schema().clone();
        check_insertable(&schema, tuple)?;
        self.template_mut(relation)?.push(tuple.clone())?;
        Ok(())
    }

    fn insert_possible(&mut self, relation: &str, tuple: &Tuple, prob: f64) -> Result<()> {
        check_probability(prob)?;
        let schema = self.template(relation)?.schema().clone();
        check_insertable(&schema, tuple)?;
        if prob <= 0.0 {
            return Ok(());
        }
        if prob >= 1.0 {
            return self.insert_certain(relation, tuple);
        }
        self.template_mut(relation)?.push(tuple.clone())?;
        let t = self.template(relation)?.len() - 1;
        let cid = self.create_component(vec![
            WorldEntry { lwid: 0, prob },
            WorldEntry {
                lwid: 1,
                prob: 1.0 - prob,
            },
        ])?;
        self.add_presence(relation, t, cid, BTreeSet::from([0]))
    }

    fn delete_where(&mut self, relation: &str, pred: &Predicate) -> Result<()> {
        let template = self.template(relation)?.clone();
        let referenced: Vec<&str> = pred.referenced_attrs();
        for a in &referenced {
            template.schema().position_of(a)?;
        }
        for (t, row) in template.rows().iter().enumerate() {
            let uncertain_refs: Vec<&str> = referenced
                .iter()
                .copied()
                .filter(|a| {
                    let pos = template.schema().position(a).unwrap();
                    row[pos].is_unknown()
                })
                .collect();
            if uncertain_refs.is_empty() {
                // Single-world cost: the predicate matches in every world the
                // tuple inhabits, or in none.
                if pred.eval(template.schema(), row)? {
                    mark_absent(self, relation, t)?;
                }
                continue;
            }
            let cids = components_of_attrs(self, relation, t, &uncertain_refs);
            let cid = self.compose(&cids)?;
            let mut keep: BTreeSet<Lwid> = BTreeSet::new();
            'lwids: for w in self.component_worlds(cid)?.to_vec() {
                let mut values = row.clone();
                for a in &uncertain_refs {
                    let field = FieldId::new(relation, t, *a);
                    let pos = template.schema().position(a).unwrap();
                    match self
                        .placeholder_values(&field)
                        .and_then(|vals| vals.get(&w.lwid))
                    {
                        Some(v) if !v.is_bottom() => values.set(pos, v.clone()),
                        // Absent in this local world: nothing to delete, the
                        // tuple stays (absent) there.
                        _ => {
                            keep.insert(w.lwid);
                            continue 'lwids;
                        }
                    }
                }
                if !pred.eval(template.schema(), &values)? {
                    keep.insert(w.lwid);
                }
            }
            self.add_presence(relation, t, cid, keep)?;
        }
        normalize::normalize(self)?;
        Ok(())
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<()> {
        let template = self.template(relation)?.clone();
        let schema = template.schema().clone();
        let referenced: Vec<&str> = pred.referenced_attrs();
        for a in referenced
            .iter()
            .copied()
            .chain(assignments.iter().map(|(a, _)| a.as_str()))
        {
            schema.position_of(a)?;
        }
        check_assignments(assignments)?;
        for (t, row) in template.rows().iter().enumerate() {
            // Every involved attribute that is a placeholder ties this tuple
            // to a component.
            let involved: Vec<&str> = {
                let mut v: Vec<&str> = referenced.clone();
                v.extend(assignments.iter().map(|(a, _)| a.as_str()));
                v.sort_unstable();
                v.dedup();
                v
            };
            let uncertain: Vec<&str> = involved
                .iter()
                .copied()
                .filter(|a| row[schema.position_of(a).unwrap()].is_unknown())
                .collect();
            if uncertain.is_empty() {
                // The predicate and the assigned fields are certain: the
                // tuple changes in every world it inhabits, directly in the
                // template.
                if pred.eval(&schema, row)? {
                    for (attr, value) in assignments {
                        self.set_template_value(
                            &FieldId::new(relation, t, attr.as_str()),
                            value.clone(),
                        )?;
                    }
                }
                continue;
            }
            let cids = components_of_attrs(self, relation, t, &uncertain);
            let cid = self.compose(&cids)?;
            let all_lwids: Vec<Lwid> = self.component_worlds(cid)?.iter().map(|w| w.lwid).collect();
            let mut matching: BTreeSet<Lwid> = BTreeSet::new();
            'lwids: for &lwid in &all_lwids {
                // The tuple is absent wherever a placeholder of the composed
                // component has no value, or a presence condition on it
                // excludes the local world; absent tuples are not modified.
                if self
                    .presence_of(relation, t)
                    .iter()
                    .any(|c| c.cid == cid && !c.lwids.contains(&lwid))
                {
                    continue;
                }
                let mut values = row.clone();
                for a in &uncertain {
                    let field = FieldId::new(relation, t, *a);
                    let pos = schema.position_of(a).unwrap();
                    match self
                        .placeholder_values(&field)
                        .and_then(|vals| vals.get(&lwid))
                    {
                        Some(v) if !v.is_bottom() => values.set(pos, v.clone()),
                        _ => continue 'lwids,
                    }
                }
                if pred.eval(&schema, &values)? {
                    matching.insert(lwid);
                }
            }
            if matching.is_empty() {
                continue;
            }
            for (attr, value) in assignments {
                let field = FieldId::new(relation, t, attr.as_str());
                let pos = schema.position_of(attr)?;
                if row[pos].is_unknown() {
                    // The placeholder lives in the composed component (its
                    // component was part of the composition); rewrite its
                    // values in the matching local worlds.
                    let values = self.values_map_mut(&field).ok_or_else(|| {
                        UwsdtError::invalid(format!("placeholder {field} has no C entries"))
                    })?;
                    for lwid in &matching {
                        if let Some(v) = values.get_mut(lwid) {
                            *v = value.clone();
                        }
                    }
                } else if matching.len() == all_lwids.len() {
                    // Modified in every local world: stays certain.
                    self.set_template_value(&field, value.clone())?;
                } else {
                    // The field becomes world-dependent: placeholder-ize it
                    // inside the composed component.
                    let old = row[pos].clone();
                    let values: std::collections::BTreeMap<Lwid, Value> = all_lwids
                        .iter()
                        .map(|lwid| {
                            let v = if matching.contains(lwid) {
                                value.clone()
                            } else {
                                old.clone()
                            };
                            (*lwid, v)
                        })
                        .collect();
                    self.set_template_value(&field, Value::Unknown)?;
                    self.add_placeholder_in_component(field, cid, values)?;
                }
            }
        }
        normalize::normalize(self)?;
        Ok(())
    }

    fn apply_condition(&mut self, constraints: &[Dependency]) -> Result<f64> {
        crate::chase::chase(self, constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::from_wsd;
    use ws_core::ops::update::{apply_update, UpdateExpr};
    use ws_core::wsd::example_census_wsd;
    use ws_core::WorldSet;
    use ws_relational::CmpOp;

    /// Oracle: the same update applied to every enumerated world.
    fn oracle(updates: &[UpdateExpr]) -> WorldSet {
        let wsd = example_census_wsd();
        let mut worlds = WorldSet::from_weighted_worlds(wsd.enumerate_worlds(1 << 20).unwrap());
        for u in updates {
            apply_update(&mut worlds, u).unwrap();
        }
        worlds
    }

    fn updated(updates: &[UpdateExpr]) -> WorldSet {
        let mut uwsdt = from_wsd(&example_census_wsd()).unwrap();
        for u in updates {
            apply_update(&mut uwsdt, u).unwrap();
        }
        uwsdt.validate().unwrap();
        WorldSet::from_weighted_worlds(uwsdt.enumerate_worlds(1 << 20).unwrap())
    }

    fn check(updates: &[UpdateExpr]) {
        let expected = oracle(updates);
        let actual = updated(updates);
        assert!(
            expected.same_worlds(&actual) && expected.same_distribution(&actual, 1e-9),
            "UWSDT disagrees with the per-world oracle for {updates:?}"
        );
    }

    #[test]
    fn inserts_match_the_per_world_oracle() {
        check(&[UpdateExpr::insert(
            "R",
            Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
        )]);
        check(&[UpdateExpr::insert_possible(
            "R",
            Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
            0.25,
        )]);
    }

    #[test]
    fn deletes_match_the_per_world_oracle() {
        // Certain predicate (template fast path).
        check(&[UpdateExpr::delete("R", Predicate::eq_const("N", "Smith"))]);
        // Placeholder predicate (presence-restriction path).
        check(&[UpdateExpr::delete("R", Predicate::eq_const("M", 1i64))]);
        // Predicate spanning a correlated component.
        check(&[UpdateExpr::delete("R", Predicate::eq_const("S", 785i64))]);
    }

    #[test]
    fn modifies_match_the_per_world_oracle() {
        // Certain predicate + certain assignment: pure template edit.
        check(&[UpdateExpr::modify(
            "R",
            Predicate::eq_const("N", "Brown"),
            vec![("N".to_string(), Value::text("Braun"))],
        )]);
        // Placeholder predicate forcing a certain field to become uncertain.
        check(&[UpdateExpr::modify(
            "R",
            Predicate::eq_const("S", 785i64),
            vec![("N".to_string(), Value::text("ex-785"))],
        )]);
        // Placeholder assignment target.
        check(&[UpdateExpr::modify(
            "R",
            Predicate::eq_const("S", 785i64),
            vec![("M".to_string(), Value::int(1))],
        )]);
    }

    #[test]
    fn interleaved_update_sequences_match_the_oracle() {
        check(&[
            UpdateExpr::insert_possible(
                "R",
                Tuple::from_iter([Value::int(500), Value::text("Maybe"), Value::int(3)]),
                0.5,
            ),
            UpdateExpr::modify(
                "R",
                Predicate::cmp_const("M", CmpOp::Ge, 3i64),
                vec![("M".to_string(), Value::int(0))],
            ),
            UpdateExpr::delete("R", Predicate::eq_const("M", 0i64)),
        ]);
    }

    #[test]
    fn conditioning_reports_mass_and_renormalizes() {
        let mut uwsdt = from_wsd(&example_census_wsd()).unwrap();
        let dep = Dependency::Egd(ws_relational::EqualityGeneratingDependency::implies(
            "R",
            "S",
            785i64,
            "M",
            CmpOp::Eq,
            1i64,
        ));
        let mass = apply_update(&mut uwsdt, &UpdateExpr::condition(vec![dep.clone()])).unwrap();
        // Oracle mass by world filtering.
        let worlds = example_census_wsd().enumerate_worlds(1 << 20).unwrap();
        let expected: f64 = worlds
            .iter()
            .filter(|(db, _)| ws_relational::world_satisfies(db, &dep).unwrap())
            .map(|(_, p)| p)
            .sum();
        assert!((mass - expected).abs() < 1e-9, "{mass} vs {expected}");
        let total: f64 = uwsdt
            .enumerate_worlds(1 << 20)
            .unwrap()
            .iter()
            .map(|(_, p)| p)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_updates_are_rejected() {
        let mut uwsdt = from_wsd(&example_census_wsd()).unwrap();
        assert!(apply_update(
            &mut uwsdt,
            &UpdateExpr::insert("NOPE", Tuple::from_iter([1i64]))
        )
        .is_err());
        assert!(apply_update(
            &mut uwsdt,
            &UpdateExpr::insert("R", Tuple::from_iter([1i64]))
        )
        .is_err());
        assert!(apply_update(
            &mut uwsdt,
            &UpdateExpr::insert_possible("R", Tuple::from_iter([1i64, 2, 3]), -0.5)
        )
        .is_err());
        assert!(apply_update(
            &mut uwsdt,
            &UpdateExpr::delete("R", Predicate::eq_const("Z", 1i64))
        )
        .is_err());
        assert!(apply_update(
            &mut uwsdt,
            &UpdateExpr::modify(
                "R",
                Predicate::eq_const("M", 1i64),
                vec![("M".to_string(), Value::Unknown)]
            )
        )
        .is_err());
    }
}
