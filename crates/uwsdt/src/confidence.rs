//! Confidence computation and possible tuples on UWSDTs (§6 applied to the
//! uniform representation).
//!
//! The algorithms mirror `ws-core::confidence`: all placeholders of a tuple
//! are gathered into a tuple-level view (composing components virtually,
//! without mutating the store), local worlds of one component are mutually
//! exclusive, and distinct components are independent, so
//! `conf(t) = 1 − Π_C (1 − conf_C(t))`.
//!
//! Certain tuples (no placeholders, no presence conditions) short-circuit to
//! confidence 1 when they equal `t`, which is what makes confidence queries
//! cheap on sparse UWSDTs: only the few uncertain tuples ever touch the
//! component tables.

use crate::error::{Result, UwsdtError};
use crate::model::{Cid, Lwid, Uwsdt};
use crate::ops::possible_tuples;
use std::collections::{BTreeMap, BTreeSet};
use ws_core::FieldId;
use ws_relational::{Tuple, Value};

/// The confidence of `tuple` in `relation`: the probability that some world
/// contains it.
pub fn conf(uwsdt: &Uwsdt, relation: &str, tuple: &Tuple) -> Result<f64> {
    let template = uwsdt.template(relation)?;
    if tuple.arity() != template.schema().arity() {
        return Err(UwsdtError::invalid(format!(
            "tuple arity {} does not match relation `{relation}` arity {}",
            tuple.arity(),
            template.schema().arity()
        )));
    }
    // Collect the candidate template tuples (those whose certain fields match)
    // together with the components they depend on.
    struct Candidate {
        placeholders: Vec<(usize, FieldId)>,
        presence_tuple: usize,
        cids: Vec<Cid>,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    'tuples: for (t, row) in template.rows().iter().enumerate() {
        for (i, v) in row.values().iter().enumerate() {
            if !v.is_unknown() && *v != tuple[i] {
                continue 'tuples;
            }
        }
        let placeholders: Vec<(usize, FieldId)> = template
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(i, _)| row[*i].is_unknown())
            .map(|(i, a)| (i, FieldId::new(relation, t, a.as_ref())))
            .collect();
        let presence = uwsdt.presence_of(relation, t);
        if placeholders.is_empty() && presence.is_empty() {
            // The tuple is certain and equals `t` in every world.
            return Ok(1.0);
        }
        let mut cids: Vec<Cid> = placeholders
            .iter()
            .filter_map(|(_, f)| uwsdt.component_of(f))
            .chain(presence.iter().map(|c| c.cid))
            .collect();
        cids.sort_unstable();
        cids.dedup();
        candidates.push(Candidate {
            placeholders,
            presence_tuple: t,
            cids,
        });
    }
    // Group candidates sharing components (they are correlated); distinct
    // groups are independent and combine with 1 − Π(1 − conf_group).
    let mut groups: Vec<(BTreeSet<Cid>, Vec<usize>)> = Vec::new();
    for (idx, candidate) in candidates.iter().enumerate() {
        let mut cids: BTreeSet<Cid> = candidate.cids.iter().copied().collect();
        let mut members = vec![idx];
        let mut remaining = Vec::new();
        for (gcids, gmembers) in groups.drain(..) {
            if gcids.intersection(&cids).next().is_some() {
                cids.extend(gcids);
                members.extend(gmembers);
            } else {
                remaining.push((gcids, gmembers));
            }
        }
        remaining.push((cids, members));
        groups = remaining;
    }
    let mut not_contained = 1.0f64;
    for (cids, members) in groups {
        let cids: Vec<Cid> = cids.into_iter().collect();
        // Probability that, in a joint local world of this group's
        // components, at least one member tuple equals `tuple`.
        let p = joint_probability(uwsdt, &cids, |chosen| {
            members.iter().any(|&idx| {
                let candidate = &candidates[idx];
                let presence = uwsdt.presence_of(relation, candidate.presence_tuple);
                for cond in presence {
                    if !cond.lwids.contains(&chosen[&cond.cid]) {
                        return false;
                    }
                }
                candidate.placeholders.iter().all(|(i, field)| {
                    let cid = uwsdt
                        .component_of(field)
                        .expect("placeholder has a component");
                    uwsdt
                        .placeholder_values(field)
                        .and_then(|vals| vals.get(&chosen[&cid]))
                        .is_some_and(|v| *v == tuple[*i])
                })
            })
        })?;
        not_contained *= 1.0 - p;
    }
    Ok(1.0 - not_contained)
}

/// Sum of the probabilities of the joint local worlds of `cids` satisfying
/// the predicate.
fn joint_probability(
    uwsdt: &Uwsdt,
    cids: &[Cid],
    satisfied: impl Fn(&BTreeMap<Cid, Lwid>) -> bool,
) -> Result<f64> {
    let mut total = 0.0;
    let mut chosen: BTreeMap<Cid, Lwid> = BTreeMap::new();
    fn recurse(
        uwsdt: &Uwsdt,
        cids: &[Cid],
        depth: usize,
        prob: f64,
        chosen: &mut BTreeMap<Cid, Lwid>,
        satisfied: &impl Fn(&BTreeMap<Cid, Lwid>) -> bool,
        total: &mut f64,
    ) -> Result<()> {
        if depth == cids.len() {
            if satisfied(chosen) {
                *total += prob;
            }
            return Ok(());
        }
        let cid = cids[depth];
        for w in uwsdt.component_worlds(cid)?.to_vec() {
            chosen.insert(cid, w.lwid);
            recurse(
                uwsdt,
                cids,
                depth + 1,
                prob * w.prob,
                chosen,
                satisfied,
                total,
            )?;
        }
        chosen.remove(&cid);
        Ok(())
    }
    recurse(uwsdt, cids, 0, 1.0, &mut chosen, &satisfied, &mut total)?;
    Ok(total)
}

/// The `possibleᵖ` operator on UWSDTs: every tuple appearing in at least one
/// world, together with its confidence.
pub fn possible_with_confidence(uwsdt: &Uwsdt, relation: &str) -> Result<Vec<(Tuple, f64)>> {
    let tuples = possible_tuples(uwsdt, relation)?;
    let mut out = Vec::with_capacity(tuples.len());
    for tuple in tuples {
        let c = conf(uwsdt, relation, &tuple)?;
        out.push((tuple, c));
    }
    Ok(out)
}

/// A tuple is certain iff it appears in every world.
pub fn is_certain(uwsdt: &Uwsdt, relation: &str, tuple: &Tuple) -> Result<bool> {
    Ok(conf(uwsdt, relation, tuple)? >= 1.0 - 1e-9)
}

/// The expected number of tuples of a relation (sum of tuple presence
/// probabilities) — a cheap summary statistic used in reports.
pub fn expected_cardinality(uwsdt: &Uwsdt, relation: &str) -> Result<f64> {
    let template = uwsdt.template(relation)?;
    let mut expected = 0.0;
    for (t, row) in template.rows().iter().enumerate() {
        let placeholders: Vec<FieldId> = template
            .schema()
            .attrs()
            .iter()
            .enumerate()
            .filter(|(i, _)| row[*i].is_unknown())
            .map(|(_, a)| FieldId::new(relation, t, a.as_ref()))
            .collect();
        let presence = uwsdt.presence_of(relation, t);
        if placeholders.is_empty() && presence.is_empty() {
            expected += 1.0;
            continue;
        }
        let mut cids: Vec<Cid> = placeholders
            .iter()
            .filter_map(|f| uwsdt.component_of(f))
            .chain(presence.iter().map(|c| c.cid))
            .collect();
        cids.sort_unstable();
        cids.dedup();
        expected += joint_probability(uwsdt, &cids, |chosen| {
            for cond in presence {
                if !cond.lwids.contains(&chosen[&cond.cid]) {
                    return false;
                }
            }
            placeholders.iter().all(|f| {
                let cid = uwsdt.component_of(f).expect("placeholder has a component");
                uwsdt
                    .placeholder_values(f)
                    .map(|vals| vals.contains_key(&chosen[&cid]))
                    .unwrap_or(false)
            })
        })?;
    }
    Ok(expected)
}

/// The distinct values a relation's attribute can take across all worlds,
/// with the confidence of each value (marginal distribution of the column
/// restricted to present tuples being counted at least once).
pub fn possible_column_values(
    uwsdt: &Uwsdt,
    relation: &str,
    attr: &str,
) -> Result<BTreeSet<Value>> {
    let template = uwsdt.template(relation)?;
    let pos = template.schema().position_of(attr)?;
    let mut out = BTreeSet::new();
    for (t, row) in template.rows().iter().enumerate() {
        if row[pos].is_unknown() {
            for v in uwsdt.possible_field_values(relation, t, attr)? {
                out.insert(v);
            }
        } else {
            out.insert(row[pos].clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{from_or_relation, from_wsd, OrField};
    use ws_relational::{CmpOp, Predicate, RaExpr, Relation, Schema};

    #[test]
    fn example11_confidences_via_the_uwsdt() {
        // π_S over the Figure 4 world-set: conf(185)=0.6, conf(186)=0.6,
        // conf(785)=0.8, matching Example 11.
        let wsd = ws_core::wsd::example_census_wsd();
        let mut uwsdt = from_wsd(&wsd).unwrap();
        ws_relational::engine::evaluate_query(
            &mut uwsdt,
            &RaExpr::rel("R").project(vec!["S"]),
            "Q",
        )
        .unwrap();
        let answers = possible_with_confidence(&uwsdt, "Q").unwrap();
        let lookup = |v: i64| {
            answers
                .iter()
                .find(|(t, _)| t[0] == Value::int(v))
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert!((lookup(185) - 0.6).abs() < 1e-9);
        assert!((lookup(186) - 0.6).abs() < 1e-9);
        assert!((lookup(785) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn confidence_matches_world_enumeration() {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 10]).unwrap();
        base.push_values([2i64, 20]).unwrap();
        base.push_values([1i64, 30]).unwrap();
        let noise = vec![
            OrField::uniform(0, "B", vec![Value::int(10), Value::int(30)]),
            OrField::uniform(2, "A", vec![Value::int(1), Value::int(2)]),
        ];
        let mut uwsdt = from_or_relation(&base, &noise).unwrap();
        ws_relational::engine::evaluate_query(
            &mut uwsdt,
            &RaExpr::rel("R").select(Predicate::cmp_const("B", CmpOp::Ge, 20i64)),
            "Q",
        )
        .unwrap();
        for relation in ["R", "Q"] {
            let worlds = uwsdt.enumerate_worlds(10_000).unwrap();
            for (tuple, confidence) in possible_with_confidence(&uwsdt, relation).unwrap() {
                let oracle: f64 = worlds
                    .iter()
                    .filter(|(db, _)| db.relation(relation).unwrap().contains(&tuple))
                    .map(|(_, p)| p)
                    .sum();
                assert!(
                    (confidence - oracle).abs() < 1e-9,
                    "{relation}: conf({tuple}) = {confidence}, oracle {oracle}"
                );
            }
        }
    }

    #[test]
    fn certain_tuples_and_expected_cardinality() {
        let mut base = Relation::new(Schema::new("R", &["A"]).unwrap());
        base.push_values([1i64]).unwrap();
        base.push_values([2i64]).unwrap();
        let noise = vec![OrField::uniform(1, "A", vec![Value::int(2), Value::int(3)])];
        let mut uwsdt = from_or_relation(&base, &noise).unwrap();
        assert!(is_certain(&uwsdt, "R", &Tuple::from_iter([1i64])).unwrap());
        assert!(!is_certain(&uwsdt, "R", &Tuple::from_iter([2i64])).unwrap());
        assert!((expected_cardinality(&uwsdt, "R").unwrap() - 2.0).abs() < 1e-9);
        // A selection that keeps tuple 2 only half the time reduces the
        // expected cardinality of the answer accordingly.
        ws_relational::engine::evaluate_query(
            &mut uwsdt,
            &RaExpr::rel("R").select(Predicate::cmp_const("A", CmpOp::Le, 2i64)),
            "Q",
        )
        .unwrap();
        assert!((expected_cardinality(&uwsdt, "Q").unwrap() - 1.5).abs() < 1e-9);
        // Column values across worlds.
        let values = possible_column_values(&uwsdt, "R", "A").unwrap();
        assert_eq!(values.len(), 3);
        // Arity mismatch is rejected.
        assert!(conf(&uwsdt, "R", &Tuple::from_iter([1i64, 2])).is_err());
        assert!(conf(&uwsdt, "NOPE", &Tuple::from_iter([1i64])).is_err());
    }
}
