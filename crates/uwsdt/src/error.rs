//! Errors of the UWSDT layer.

use std::fmt;
use ws_core::WsError;
use ws_relational::RelationalError;

/// Result alias for the UWSDT layer.
pub type Result<T> = std::result::Result<T, UwsdtError>;

/// Errors raised by UWSDT construction, querying and cleaning.
#[derive(Debug, Clone, PartialEq)]
pub enum UwsdtError {
    /// A relation name is not represented.
    UnknownRelation(String),
    /// A component identifier is not present in `W`.
    UnknownComponent(usize),
    /// The represented world-set became empty (no consistent world remains).
    Inconsistent,
    /// Enumerating the possible worlds would exceed the requested limit.
    TooManyWorlds {
        /// Number of described worlds (saturating).
        worlds: u128,
        /// The limit that was exceeded.
        limit: u128,
    },
    /// A query shape not supported by the UWSDT engine (fall back to the
    /// WSD-level evaluation in `ws-core`).
    Unsupported(String),
    /// An error bubbled up from the relational substrate.
    Relational(RelationalError),
    /// An error bubbled up from the WSD layer.
    Core(String),
    /// Anything else worth reporting with a message.
    Invalid(String),
}

impl UwsdtError {
    /// Build an [`UwsdtError::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        UwsdtError::Invalid(msg.into())
    }

    /// Build an [`UwsdtError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        UwsdtError::Unsupported(msg.into())
    }
}

impl fmt::Display for UwsdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UwsdtError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            UwsdtError::UnknownComponent(c) => write!(f, "unknown component C{c}"),
            UwsdtError::Inconsistent => {
                write!(f, "world-set is inconsistent (no world remains)")
            }
            UwsdtError::TooManyWorlds { worlds, limit } => write!(
                f,
                "the representation describes {worlds} worlds, more than the enumeration limit {limit}"
            ),
            UwsdtError::Unsupported(msg) => write!(f, "unsupported on UWSDTs: {msg}"),
            UwsdtError::Relational(e) => write!(f, "relational error: {e}"),
            UwsdtError::Core(e) => write!(f, "world-set error: {e}"),
            UwsdtError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for UwsdtError {}

impl From<RelationalError> for UwsdtError {
    fn from(e: RelationalError) -> Self {
        match e {
            RelationalError::Inconsistent => UwsdtError::Inconsistent,
            other => UwsdtError::Relational(other),
        }
    }
}

impl From<WsError> for UwsdtError {
    fn from(e: WsError) -> Self {
        match e {
            WsError::Inconsistent => UwsdtError::Inconsistent,
            other => UwsdtError::Core(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(UwsdtError::UnknownRelation("R".into())
            .to_string()
            .contains('R'));
        assert!(UwsdtError::UnknownComponent(3).to_string().contains("C3"));
        assert!(UwsdtError::Inconsistent
            .to_string()
            .contains("inconsistent"));
        assert!(UwsdtError::unsupported("difference")
            .to_string()
            .contains("difference"));
        assert!(UwsdtError::TooManyWorlds {
            worlds: 8,
            limit: 2
        }
        .to_string()
        .contains('8'));
        let e: UwsdtError = RelationalError::UnknownRelation("S".into()).into();
        assert!(matches!(e, UwsdtError::Relational(_)));
        let e: UwsdtError = WsError::Inconsistent.into();
        assert_eq!(e, UwsdtError::Inconsistent);
        let e: UwsdtError = WsError::invalid("x").into();
        assert!(matches!(e, UwsdtError::Core(_)));
        assert_eq!(UwsdtError::invalid("boom").to_string(), "boom");
    }
}
