//! # ws-uwsdt — uniform world-set decompositions with template relations
//!
//! UWSDTs (§3/§5 of the paper) store a world-set in a form a conventional
//! RDBMS can hold: fixed-schema component relations
//! `C[FID,LWID,VAL]`, `F[FID,CID]`, `W[CID,LWID,PR]` plus one template
//! relation per represented relation.  The template carries everything that
//! is certain; placeholders (`?`) mark the few fields on which the worlds
//! disagree.  This is the representation the paper's MayBMS prototype uses on
//! top of PostgreSQL and the one all large-scale experiments (§9) run on; in
//! this reproduction the substrate is the in-memory engine of
//! `ws-relational`.
//!
//! The crate provides
//!
//! * the [`model::Uwsdt`] store with component composition, local-world
//!   removal and world enumeration,
//! * loaders from "dirty" or-relations and from WSD/WSDTs ([`build`]),
//! * relational algebra with single-world-like cost on the templates
//!   ([`ops`], [`query`]),
//! * the update language (inserts, deletes, modifications, conditioning) as
//!   the [`ws_relational::WriteBackend`] implementation ([`update`]),
//! * the chase for data cleaning ([`chase`]), and
//! * the representation statistics reported in the paper's evaluation
//!   ([`stats`]).

pub mod build;
pub mod chase;
pub mod confidence;
pub mod error;
pub mod model;
pub mod normalize;
pub mod ops;
pub mod query;
pub mod stats;
pub mod update;

pub use build::{from_or_relation, from_wsd, from_wsdt, OrField};
pub use confidence::{conf, expected_cardinality, is_certain, possible_with_confidence};
pub use error::{Result, UwsdtError};
pub use model::{Cid, Lwid, PresenceCondition, Uwsdt, UwsdtSnapshot, WorldEntry};
pub use normalize::{normalize, NormalizationReport};
#[allow(deprecated)] // the deprecated shim stays importable during migration
pub use query::evaluate_query;
pub use stats::{component_size_histogram, stats_for, UwsdtStats};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::build::{from_or_relation, from_wsd, from_wsdt, OrField};
    pub use crate::chase::{chase, chase_egd, chase_fd};
    pub use crate::confidence::{conf, expected_cardinality, is_certain, possible_with_confidence};
    pub use crate::error::{Result, UwsdtError};
    pub use crate::model::{Cid, Lwid, PresenceCondition, Uwsdt, WorldEntry};
    pub use crate::normalize::{normalize, NormalizationReport};
    pub use crate::ops;
    #[allow(deprecated)] // the deprecated shim stays importable during migration
    pub use crate::query::evaluate_query;
    pub use crate::stats::{
        bucketed_histogram, component_size_histogram, stats_all, stats_for, UwsdtStats,
    };
}
