//! Relational algebra on UWSDTs (§5, Figure 16).
//!
//! Each operator reads one or two relations of the UWSDT and materializes a
//! new result relation *in the same UWSDT*, sharing the component store, so
//! that the result stays correlated with its inputs (exactly as for WSDs in
//! §4).  The template relation carries the bulk of the data and is processed
//! with ordinary relational operations; the component relations are only
//! touched for tuples with placeholders, which is what makes query processing
//! on UWSDTs comparable to single-world processing when uncertainty is
//! sparse (§9).
//!
//! Where the paper's Fig. 16 removes "incomplete world tuples" from `C`
//! (line 4), this implementation additionally supports *presence conditions*
//! — the "exists column" refinement mentioned in §4 — so that projections
//! never need to compose components.

use crate::error::{Result, UwsdtError};
use crate::model::{Cid, Lwid, PresenceCondition, Uwsdt};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use ws_core::FieldId;
use ws_relational::{Predicate, Relation, Schema, Tuple, Value};

/// Copy the placeholder machinery of one source field to a destination field
/// (same component, same values), optionally restricted to a set of local
/// worlds of `restrict_cid`.
fn copy_placeholder(
    uwsdt: &mut Uwsdt,
    src: &FieldId,
    dst: FieldId,
    restrict: Option<(&Cid, &BTreeSet<Lwid>)>,
) -> Result<()> {
    let cid = uwsdt
        .component_of(src)
        .ok_or_else(|| UwsdtError::invalid(format!("{src} is not a placeholder")))?;
    let mut values = uwsdt.placeholder_values(src).cloned().unwrap_or_default();
    if let Some((rcid, lwids)) = restrict {
        if *rcid == cid {
            values.retain(|l, _| lwids.contains(l));
        }
    }
    uwsdt.add_placeholder_in_component(dst, cid, values)?;
    Ok(())
}

/// Copy a source tuple's presence conditions onto a destination tuple.
fn copy_presence(
    uwsdt: &mut Uwsdt,
    src_rel: &str,
    src_tuple: usize,
    dst_rel: &str,
    dst_tuple: usize,
) -> Result<()> {
    let conditions: Vec<PresenceCondition> = uwsdt.presence_of(src_rel, src_tuple).to_vec();
    for cond in conditions {
        uwsdt.add_presence(dst_rel, dst_tuple, cond.cid, cond.lwids)?;
    }
    Ok(())
}

/// The distinct components of the uncertain fields among `attrs` of a tuple.
fn components_of_attrs(uwsdt: &Uwsdt, relation: &str, tuple: usize, attrs: &[&str]) -> Vec<Cid> {
    let mut cids: Vec<Cid> = attrs
        .iter()
        .filter_map(|a| uwsdt.component_of(&FieldId::new(relation, tuple, *a)))
        .collect();
    cids.sort_unstable();
    cids.dedup();
    cids
}

/// `P := σ_pred(R)` for an arbitrary predicate over constants and attribute
/// comparisons (the composite conditions of the census queries Q1–Q6).
///
/// Certain tuples are filtered directly against the template (exactly the
/// single-world cost); tuples with placeholders referenced by the predicate
/// restrict their placeholder values to the satisfying local worlds,
/// composing components only when the predicate spans several of them.
pub fn select(uwsdt: &mut Uwsdt, src: &str, dst: &str, pred: &Predicate) -> Result<()> {
    if uwsdt.contains_relation(dst) {
        return Err(UwsdtError::invalid(format!(
            "relation `{dst}` already exists"
        )));
    }
    let src_template = uwsdt.template(src)?.clone();
    let schema = src_template.schema().renamed_relation(dst);
    uwsdt.add_template(Relation::new(schema))?;

    let referenced: Vec<&str> = pred.referenced_attrs();
    for a in &referenced {
        src_template.schema().position_of(a)?;
    }
    // Every referenced attribute resolved above, so compilation cannot fail
    // and the per-row evaluations below skip all name lookups.
    let compiled = pred.compile(src_template.schema())?;
    let attrs: Vec<String> = src_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();

    for (t, row) in src_template.rows().iter().enumerate() {
        // Which referenced attributes are uncertain for this tuple?
        let uncertain_refs: Vec<&str> = referenced
            .iter()
            .copied()
            .filter(|a| {
                let pos = src_template.schema().position(a).unwrap();
                row[pos].is_unknown()
            })
            .collect();

        let restriction: Option<(Cid, BTreeSet<Lwid>)> = if uncertain_refs.is_empty() {
            // Purely certain condition: evaluate on the template row.
            if !compiled.eval(row) {
                continue;
            }
            None
        } else {
            // Compose the components spanned by the condition, then find the
            // satisfying local worlds.
            let cids = components_of_attrs(uwsdt, src, t, &uncertain_refs);
            let cid = uwsdt.compose(&cids)?;
            let lwids: Vec<Lwid> = uwsdt
                .component_worlds(cid)?
                .iter()
                .map(|w| w.lwid)
                .collect();
            let mut satisfied = BTreeSet::new();
            'lwids: for lwid in lwids {
                let mut values = row.clone();
                for a in &uncertain_refs {
                    let field = FieldId::new(src, t, *a);
                    let pos = src_template.schema().position(a).unwrap();
                    match uwsdt
                        .placeholder_values(&field)
                        .and_then(|vals| vals.get(&lwid))
                    {
                        Some(v) => values.set(pos, v.clone()),
                        // The source tuple is absent in this local world.
                        None => continue 'lwids,
                    }
                }
                if compiled.eval(&values) {
                    satisfied.insert(lwid);
                }
            }
            if satisfied.is_empty() {
                continue;
            }
            Some((cid, satisfied))
        };

        // Materialize the result tuple.
        let dst_idx = uwsdt.template(dst)?.len();
        uwsdt.template_mut(dst)?.push(row.clone())?;
        for (i, attr) in attrs.iter().enumerate() {
            if row[i].is_unknown() {
                let src_field = FieldId::new(src, t, attr.as_str());
                let dst_field = FieldId::new(dst, dst_idx, attr.as_str());
                let restrict = restriction.as_ref().map(|(c, s)| (c, s));
                copy_placeholder(uwsdt, &src_field, dst_field, restrict)?;
            }
        }
        copy_presence(uwsdt, src, t, dst, dst_idx)?;
        if let Some((cid, satisfied)) = &restriction {
            uwsdt.add_presence(dst, dst_idx, *cid, satisfied.clone())?;
        }
    }
    Ok(())
}

/// `P := π_attrs(R)` — projection.
///
/// Thanks to presence conditions no component composition is needed: if a
/// projected-away placeholder encoded the absence of its tuple in some local
/// worlds, that information is preserved as a presence condition on the
/// result tuple.
pub fn project(uwsdt: &mut Uwsdt, src: &str, dst: &str, attrs: &[&str]) -> Result<()> {
    if uwsdt.contains_relation(dst) {
        return Err(UwsdtError::invalid(format!(
            "relation `{dst}` already exists"
        )));
    }
    let src_template = uwsdt.template(src)?.clone();
    let positions: Vec<usize> = attrs
        .iter()
        .map(|a| src_template.schema().position_of(a))
        .collect::<std::result::Result<_, _>>()?;
    let schema = src_template
        .schema()
        .projected(attrs)?
        .renamed_relation(dst);
    uwsdt.add_template(Relation::new(schema))?;

    let all_attrs: Vec<String> = src_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();

    for (t, row) in src_template.rows().iter().enumerate() {
        let dst_idx = uwsdt.template(dst)?.len();
        uwsdt
            .template_mut(dst)?
            .push(row.project_positions(&positions))?;
        // Kept placeholders are copied.
        for (k, &pos) in positions.iter().enumerate() {
            if row[pos].is_unknown() {
                let src_field = FieldId::new(src, t, all_attrs[pos].as_str());
                let dst_field = FieldId::new(dst, dst_idx, attrs[k]);
                copy_placeholder(uwsdt, &src_field, dst_field, None)?;
            }
        }
        copy_presence(uwsdt, src, t, dst, dst_idx)?;
        // Dropped placeholders that encode absence become presence conditions.
        for (pos, attr) in all_attrs.iter().enumerate() {
            if positions.contains(&pos) || !row[pos].is_unknown() {
                continue;
            }
            let field = FieldId::new(src, t, attr.as_str());
            let cid = uwsdt
                .component_of(&field)
                .ok_or_else(|| UwsdtError::invalid(format!("{field} is not a placeholder")))?;
            let covered: BTreeSet<Lwid> = uwsdt
                .placeholder_values(&field)
                .map(|vals| vals.keys().copied().collect())
                .unwrap_or_default();
            let total = uwsdt.component_worlds(cid)?.len();
            if covered.len() < total {
                uwsdt.add_presence(dst, dst_idx, cid, covered)?;
            }
        }
    }
    Ok(())
}

/// `P := δ_{from→to}(R)` — attribute renaming.
pub fn rename(uwsdt: &mut Uwsdt, src: &str, dst: &str, from: &str, to: &str) -> Result<()> {
    if uwsdt.contains_relation(dst) {
        return Err(UwsdtError::invalid(format!(
            "relation `{dst}` already exists"
        )));
    }
    let src_template = uwsdt.template(src)?.clone();
    let schema = src_template
        .schema()
        .renamed_attr(from, to)?
        .renamed_relation(dst);
    uwsdt.add_template(Relation::new(schema.clone()))?;
    let old_attrs: Vec<String> = src_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();
    let new_attrs: Vec<String> = schema.attrs().iter().map(|a| a.to_string()).collect();
    for (t, row) in src_template.rows().iter().enumerate() {
        let dst_idx = uwsdt.template(dst)?.len();
        uwsdt.template_mut(dst)?.push(row.clone())?;
        for (i, old) in old_attrs.iter().enumerate() {
            if row[i].is_unknown() {
                copy_placeholder(
                    uwsdt,
                    &FieldId::new(src, t, old.as_str()),
                    FieldId::new(dst, dst_idx, new_attrs[i].as_str()),
                    None,
                )?;
            }
        }
        copy_presence(uwsdt, src, t, dst, dst_idx)?;
    }
    Ok(())
}

/// `T := R ∪ S` — union of two relations with identical attribute lists.
pub fn union(uwsdt: &mut Uwsdt, left: &str, right: &str, dst: &str) -> Result<()> {
    if uwsdt.contains_relation(dst) {
        return Err(UwsdtError::invalid(format!(
            "relation `{dst}` already exists"
        )));
    }
    let left_template = uwsdt.template(left)?.clone();
    let right_template = uwsdt.template(right)?.clone();
    if left_template.schema().attrs() != right_template.schema().attrs() {
        return Err(UwsdtError::invalid(format!(
            "union operands `{left}` and `{right}` have different schemas"
        )));
    }
    let schema = left_template.schema().renamed_relation(dst);
    uwsdt.add_template(Relation::new(schema))?;
    let attrs: Vec<String> = left_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();
    for (src, template) in [(left, &left_template), (right, &right_template)] {
        for (t, row) in template.rows().iter().enumerate() {
            let dst_idx = uwsdt.template(dst)?.len();
            uwsdt.template_mut(dst)?.push(row.clone())?;
            for (i, attr) in attrs.iter().enumerate() {
                if row[i].is_unknown() {
                    copy_placeholder(
                        uwsdt,
                        &FieldId::new(src, t, attr.as_str()),
                        FieldId::new(dst, dst_idx, attr.as_str()),
                        None,
                    )?;
                }
            }
            copy_presence(uwsdt, src, t, dst, dst_idx)?;
        }
    }
    Ok(())
}

/// `T := R × S` — cartesian product (attribute sets must be disjoint).
///
/// The result template has `|R|·|S|` rows; prefer [`join`] whenever an
/// equality condition is available (the paper merges the product with its
/// join selections for exactly this reason).
pub fn product(uwsdt: &mut Uwsdt, left: &str, right: &str, dst: &str) -> Result<()> {
    join_impl(uwsdt, left, right, dst, None)
}

/// `T := R ⋈_{left_attr = right_attr} S` — equi-join, evaluated as a hash
/// join over the possible values of the join attributes.
pub fn join(
    uwsdt: &mut Uwsdt,
    left: &str,
    right: &str,
    dst: &str,
    left_attr: &str,
    right_attr: &str,
) -> Result<()> {
    join_impl(uwsdt, left, right, dst, Some((left_attr, right_attr)))
}

fn join_impl(
    uwsdt: &mut Uwsdt,
    left: &str,
    right: &str,
    dst: &str,
    condition: Option<(&str, &str)>,
) -> Result<()> {
    if uwsdt.contains_relation(dst) {
        return Err(UwsdtError::invalid(format!(
            "relation `{dst}` already exists"
        )));
    }
    let left_template = uwsdt.template(left)?.clone();
    let right_template = uwsdt.template(right)?.clone();
    let schema = left_template
        .schema()
        .product(right_template.schema(), dst)?;
    uwsdt.add_template(Relation::new(schema))?;
    let left_attrs: Vec<String> = left_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();
    let right_attrs: Vec<String> = right_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();

    // Candidate pairs: all pairs for a plain product, hash-matched pairs for
    // an equi-join.
    let pairs: Vec<(usize, usize)> = match condition {
        None => (0..left_template.len())
            .flat_map(|i| (0..right_template.len()).map(move |j| (i, j)))
            .collect(),
        Some((la, ra)) => {
            let mut by_value: HashMap<Value, Vec<usize>> = HashMap::new();
            for j in 0..right_template.len() {
                for v in uwsdt.possible_field_values(right, j, ra)? {
                    by_value.entry(v).or_default().push(j);
                }
            }
            let mut pairs = Vec::new();
            for i in 0..left_template.len() {
                let mut seen: BTreeSet<usize> = BTreeSet::new();
                for v in uwsdt.possible_field_values(left, i, la)? {
                    if let Some(js) = by_value.get(&v) {
                        for &j in js {
                            if seen.insert(j) {
                                pairs.push((i, j));
                            }
                        }
                    }
                }
            }
            pairs
        }
    };

    for (i, j) in pairs {
        let left_row = &left_template.rows()[i];
        let right_row = &right_template.rows()[j];

        // Evaluate the join condition, composing components if it spans two
        // uncertain fields.
        let restriction: Option<(Cid, BTreeSet<Lwid>)> = match condition {
            None => None,
            Some((la, ra)) => {
                let lpos = left_template.schema().position_of(la)?;
                let rpos = right_template.schema().position_of(ra)?;
                let l_uncertain = left_row[lpos].is_unknown();
                let r_uncertain = right_row[rpos].is_unknown();
                if !l_uncertain && !r_uncertain {
                    if left_row[lpos] != right_row[rpos] {
                        continue;
                    }
                    None
                } else {
                    let mut cids = Vec::new();
                    if l_uncertain {
                        cids.push(
                            uwsdt
                                .component_of(&FieldId::new(left, i, la))
                                .expect("uncertain field has a component"),
                        );
                    }
                    if r_uncertain {
                        cids.push(
                            uwsdt
                                .component_of(&FieldId::new(right, j, ra))
                                .expect("uncertain field has a component"),
                        );
                    }
                    let cid = uwsdt.compose(&cids)?;
                    let mut satisfied = BTreeSet::new();
                    for w in uwsdt.component_worlds(cid)?.to_vec() {
                        let lv = if l_uncertain {
                            uwsdt
                                .placeholder_values(&FieldId::new(left, i, la))
                                .and_then(|vals| vals.get(&w.lwid).cloned())
                        } else {
                            Some(left_row[lpos].clone())
                        };
                        let rv = if r_uncertain {
                            uwsdt
                                .placeholder_values(&FieldId::new(right, j, ra))
                                .and_then(|vals| vals.get(&w.lwid).cloned())
                        } else {
                            Some(right_row[rpos].clone())
                        };
                        if let (Some(lv), Some(rv)) = (lv, rv) {
                            if lv == rv {
                                satisfied.insert(w.lwid);
                            }
                        }
                    }
                    if satisfied.is_empty() {
                        continue;
                    }
                    Some((cid, satisfied))
                }
            }
        };

        let dst_idx = uwsdt.template(dst)?.len();
        uwsdt.template_mut(dst)?.push(left_row.concat(right_row))?;
        for (pos, attr) in left_attrs.iter().enumerate() {
            if left_row[pos].is_unknown() {
                copy_placeholder(
                    uwsdt,
                    &FieldId::new(left, i, attr.as_str()),
                    FieldId::new(dst, dst_idx, attr.as_str()),
                    restriction.as_ref().map(|(c, s)| (c, s)),
                )?;
            }
        }
        for (pos, attr) in right_attrs.iter().enumerate() {
            if right_row[pos].is_unknown() {
                copy_placeholder(
                    uwsdt,
                    &FieldId::new(right, j, attr.as_str()),
                    FieldId::new(dst, dst_idx, attr.as_str()),
                    restriction.as_ref().map(|(c, s)| (c, s)),
                )?;
            }
        }
        copy_presence(uwsdt, left, i, dst, dst_idx)?;
        copy_presence(uwsdt, right, j, dst, dst_idx)?;
        if let Some((cid, satisfied)) = restriction {
            uwsdt.add_presence(dst, dst_idx, cid, satisfied)?;
        }
    }
    Ok(())
}

/// `P := R − S` — difference of two relations with identical attribute lists.
///
/// For every pair of tuples that could coincide, the components spanned by
/// the pair (join values, placeholders and the `S` tuple's presence
/// conditions) are composed and the result tuple is restricted to the local
/// worlds in which the `S` tuple is either absent or different.
pub fn difference(uwsdt: &mut Uwsdt, left: &str, right: &str, dst: &str) -> Result<()> {
    if uwsdt.contains_relation(dst) {
        return Err(UwsdtError::invalid(format!(
            "relation `{dst}` already exists"
        )));
    }
    let left_template = uwsdt.template(left)?.clone();
    let right_template = uwsdt.template(right)?.clone();
    if left_template.schema().attrs() != right_template.schema().attrs() {
        return Err(UwsdtError::invalid(format!(
            "difference operands `{left}` and `{right}` have different schemas"
        )));
    }
    let schema = left_template.schema().renamed_relation(dst);
    uwsdt.add_template(Relation::new(schema))?;
    let attrs: Vec<String> = left_template
        .schema()
        .attrs()
        .iter()
        .map(|a| a.to_string())
        .collect();

    for (i, left_row) in left_template.rows().iter().enumerate() {
        // Pass 1: find the right tuples that could coincide with this left
        // tuple and collect every component their equality and presence
        // depend on.  All of them are composed *once* before any exclusion
        // condition is recorded — composing pair-by-pair would invalidate
        // the component ids recorded for earlier pairs (`compose` retires
        // its source components).
        let mut matching: Vec<usize> = Vec::new();
        let mut all_cids: Vec<Cid> = Vec::new();
        let mut certainly_removed = false;
        let left_values: Vec<Vec<Value>> = attrs
            .iter()
            .map(|attr| uwsdt.possible_field_values(left, i, attr))
            .collect::<Result<_>>()?;
        for (j, right_row) in right_template.rows().iter().enumerate() {
            // Quick check: every attribute must share a possible value.
            let mut possible = true;
            for (lv, attr) in left_values.iter().zip(&attrs) {
                let rv = uwsdt.possible_field_values(right, j, attr)?;
                if !lv.iter().any(|v| rv.contains(v)) {
                    possible = false;
                    break;
                }
            }
            if !possible {
                continue;
            }
            // Collect every component the pair's equality and the right
            // tuple's presence depend on.
            let mut cids: Vec<Cid> = Vec::new();
            for attr in &attrs {
                for (rel, t, row) in [(left, i, left_row), (right, j, right_row)] {
                    let pos = left_template.schema().position_of(attr)?;
                    if row[pos].is_unknown() {
                        if let Some(cid) = uwsdt.component_of(&FieldId::new(rel, t, attr.as_str()))
                        {
                            cids.push(cid);
                        }
                    }
                }
            }
            for cond in uwsdt.presence_of(right, j).to_vec() {
                cids.push(cond.cid);
            }
            if cids.is_empty() {
                // Both tuples certain and equal on all attributes, and the
                // right tuple is unconditionally present.
                certainly_removed = true;
                break;
            }
            matching.push(j);
            all_cids.extend(cids);
        }
        if certainly_removed {
            continue;
        }

        // Pass 2: restrict the (single, composed) component to the local
        // worlds in which each matching right tuple is absent or different.
        let mut exclusions: Vec<(Cid, BTreeSet<Lwid>)> = Vec::new();
        all_cids.sort_unstable();
        all_cids.dedup();
        let composed = if matching.is_empty() {
            None
        } else {
            Some(uwsdt.compose(&all_cids)?)
        };
        for j in matching {
            let right_row = &right_template.rows()[j];
            let cid = composed.expect("composed component exists for matching pairs");
            let mut conflict = BTreeSet::new();
            for w in uwsdt.component_worlds(cid)?.to_vec() {
                // Is the right tuple present and equal to the left tuple?
                let mut present = uwsdt
                    .presence_of(right, j)
                    .iter()
                    .all(|c| c.cid != cid || c.lwids.contains(&w.lwid));
                let mut equal = true;
                for attr in &attrs {
                    let pos = left_template.schema().position_of(attr)?;
                    let lv = if left_row[pos].is_unknown() {
                        uwsdt
                            .placeholder_values(&FieldId::new(left, i, attr.as_str()))
                            .and_then(|vals| vals.get(&w.lwid).cloned())
                    } else {
                        Some(left_row[pos].clone())
                    };
                    let rv = if right_row[pos].is_unknown() {
                        uwsdt
                            .placeholder_values(&FieldId::new(right, j, attr.as_str()))
                            .and_then(|vals| vals.get(&w.lwid).cloned())
                    } else {
                        Some(right_row[pos].clone())
                    };
                    match (lv, rv) {
                        (Some(lv), Some(rv)) => {
                            if lv != rv {
                                equal = false;
                                break;
                            }
                        }
                        (_, None) => {
                            present = false;
                            break;
                        }
                        (None, _) => {
                            // The left tuple is absent in this local world; it
                            // cannot appear in the result there anyway.
                            equal = false;
                            break;
                        }
                    }
                }
                if present && equal {
                    conflict.insert(w.lwid);
                }
            }
            if !conflict.is_empty() {
                let all: BTreeSet<Lwid> = uwsdt
                    .component_worlds(cid)?
                    .iter()
                    .map(|w| w.lwid)
                    .collect();
                let keep: BTreeSet<Lwid> = all.difference(&conflict).copied().collect();
                exclusions.push((cid, keep));
            }
        }
        if exclusions.iter().any(|(_, keep)| keep.is_empty()) {
            continue;
        }
        let dst_idx = uwsdt.template(dst)?.len();
        uwsdt.template_mut(dst)?.push(left_row.clone())?;
        for (pos, attr) in attrs.iter().enumerate() {
            if left_row[pos].is_unknown() {
                copy_placeholder(
                    uwsdt,
                    &FieldId::new(left, i, attr.as_str()),
                    FieldId::new(dst, dst_idx, attr.as_str()),
                    None,
                )?;
            }
        }
        copy_presence(uwsdt, left, i, dst, dst_idx)?;
        for (cid, keep) in exclusions {
            uwsdt.add_presence(dst, dst_idx, cid, keep)?;
        }
    }
    Ok(())
}

/// Build the ordinary one-world relation obtained by keeping only the certain
/// information: placeholders and conditionally-present tuples are dropped.
/// Used by reporting code; not a query operator of the paper.
pub fn certain_core(uwsdt: &Uwsdt, relation: &str) -> Result<Relation> {
    let template = uwsdt.template(relation)?;
    let mut out = Relation::new(Schema::from_parts(
        template.schema().relation().clone(),
        template.schema().attrs().to_vec(),
    ));
    for (t, row) in template.rows().iter().enumerate() {
        if row.has_unknown() || !uwsdt.presence_of(relation, t).is_empty() {
            continue;
        }
        out.push(row.clone())?;
    }
    Ok(out)
}

/// Convenience used by tests and the possible-tuples reporting: all tuples of
/// a relation that appear in at least one world, by expanding placeholders of
/// each tuple (per tuple, independent of other tuples).
pub fn possible_tuples(uwsdt: &Uwsdt, relation: &str) -> Result<Vec<Tuple>> {
    let template = uwsdt.template(relation)?;
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    for (t, row) in template.rows().iter().enumerate() {
        // Group this tuple's placeholders by component so that correlated
        // placeholders expand jointly.
        let mut by_cid: BTreeMap<Cid, Vec<(usize, FieldId)>> = BTreeMap::new();
        for (i, attr) in template.schema().attrs().iter().enumerate() {
            if row[i].is_unknown() {
                let field = FieldId::new(relation, t, attr.as_ref());
                let cid = uwsdt
                    .component_of(&field)
                    .ok_or_else(|| UwsdtError::invalid(format!("{field} is not a placeholder")))?;
                by_cid.entry(cid).or_default().push((i, field));
            }
        }
        // Presence conditions restrict the usable local worlds per component.
        let mut allowed: BTreeMap<Cid, BTreeSet<Lwid>> = BTreeMap::new();
        for cond in uwsdt.presence_of(relation, t) {
            allowed.insert(cond.cid, cond.lwids.clone());
        }
        let mut partials: Vec<Tuple> = vec![row.clone()];
        for (cid, fields) in &by_cid {
            let mut next = Vec::new();
            for w in uwsdt.component_worlds(*cid)? {
                if let Some(allowed_lwids) = allowed.get(cid) {
                    if !allowed_lwids.contains(&w.lwid) {
                        continue;
                    }
                }
                let mut values = Vec::with_capacity(fields.len());
                let mut missing = false;
                for (_, field) in fields {
                    match uwsdt
                        .placeholder_values(field)
                        .and_then(|vals| vals.get(&w.lwid))
                    {
                        Some(v) => values.push(v.clone()),
                        None => {
                            missing = true;
                            break;
                        }
                    }
                }
                if missing {
                    continue;
                }
                for partial in &partials {
                    let mut tuple = partial.clone();
                    for ((pos, _), v) in fields.iter().zip(&values) {
                        tuple.set(*pos, v.clone());
                    }
                    next.push(tuple);
                }
            }
            partials = next;
        }
        // Presence conditions on components without placeholders of this
        // tuple: the tuple exists only if the condition is satisfiable.
        let satisfiable = allowed
            .iter()
            .all(|(cid, lwids)| by_cid.contains_key(cid) || !lwids.is_empty());
        if satisfiable {
            for tuple in partials {
                if !tuple.has_unknown() {
                    out.insert(tuple);
                }
            }
        }
    }
    Ok(out.into_iter().collect())
}

#[cfg(test)]
#[path = "ops_tests.rs"]
mod ops_tests;
