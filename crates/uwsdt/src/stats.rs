//! Representation statistics (the quantities reported in Figures 27 and 28).

use crate::error::Result;
use crate::model::{Cid, Uwsdt};
use std::collections::{BTreeMap, BTreeSet};

/// The UWSDT characteristics the paper reports per relation (Fig. 27):
/// number of components, number of components with more than one
/// placeholder, `|C|` (component-table entries) and `|R|` (template rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UwsdtStats {
    /// `#comp`: components referenced by the relation's placeholders.
    pub components: usize,
    /// `#comp>1`: components defining more than one placeholder.
    pub components_multi: usize,
    /// `|C|`: number of `(FID, LWID, VAL)` entries of the relation.
    pub c_size: usize,
    /// `|R|`: number of template rows.
    pub template_rows: usize,
    /// Number of placeholder fields (`?` entries) in the template.
    pub placeholders: usize,
}

/// Compute the Fig. 27-style statistics of one relation.
pub fn stats_for(uwsdt: &Uwsdt, relation: &str) -> Result<UwsdtStats> {
    let template = uwsdt.template(relation)?;
    let placeholders = uwsdt.placeholders_of(relation);
    let mut per_component: BTreeMap<Cid, usize> = BTreeMap::new();
    let mut c_size = 0;
    for field in &placeholders {
        if let Some(cid) = uwsdt.component_of(field) {
            *per_component.entry(cid).or_default() += 1;
        }
        c_size += uwsdt
            .placeholder_values(field)
            .map(|v| v.len())
            .unwrap_or(0);
    }
    Ok(UwsdtStats {
        components: per_component.len(),
        components_multi: per_component.values().filter(|&&n| n > 1).count(),
        c_size,
        template_rows: template.len(),
        placeholders: placeholders.len(),
    })
}

/// The component-size distribution of one relation (Fig. 28): how many
/// components define 1, 2, 3, … placeholders of that relation.
pub fn component_size_histogram(uwsdt: &Uwsdt, relation: &str) -> Result<BTreeMap<usize, usize>> {
    let placeholders = uwsdt.placeholders_of(relation);
    let mut per_component: BTreeMap<Cid, usize> = BTreeMap::new();
    for field in &placeholders {
        if let Some(cid) = uwsdt.component_of(field) {
            *per_component.entry(cid).or_default() += 1;
        }
    }
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for size in per_component.values() {
        *histogram.entry(*size).or_default() += 1;
    }
    Ok(histogram)
}

/// Bucket a component-size histogram the way Figure 28 presents it:
/// sizes 1, 2, 3, and "4 and more".
pub fn bucketed_histogram(histogram: &BTreeMap<usize, usize>) -> [usize; 4] {
    let mut buckets = [0usize; 4];
    for (&size, &count) in histogram {
        match size {
            0 => {}
            1 => buckets[0] += count,
            2 => buckets[1] += count,
            3 => buckets[2] += count,
            _ => buckets[3] += count,
        }
    }
    buckets
}

/// Statistics for every relation of the UWSDT, keyed by relation name.
pub fn stats_all(uwsdt: &Uwsdt) -> Result<BTreeMap<String, UwsdtStats>> {
    let mut out = BTreeMap::new();
    for name in uwsdt.relation_names() {
        let name = name.to_string();
        let stats = stats_for(uwsdt, &name)?;
        out.insert(name, stats);
    }
    Ok(out)
}

/// The set of distinct components referenced by any placeholder of any
/// relation (useful for whole-store reporting).
pub fn referenced_components(uwsdt: &Uwsdt) -> BTreeSet<Cid> {
    uwsdt
        .relation_names()
        .iter()
        .flat_map(|r| uwsdt.placeholders_of(r))
        .filter_map(|f| uwsdt.component_of(&f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{from_or_relation, OrField};
    use ws_relational::{Relation, Schema, Value};

    fn sample() -> Uwsdt {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for i in 0..5 {
            base.push_values([i as i64, 10 + i as i64]).unwrap();
        }
        from_or_relation(
            &base,
            &[
                OrField::uniform(0, "A", vec![Value::int(0), Value::int(100)]),
                OrField::uniform(2, "B", vec![Value::int(12), Value::int(13), Value::int(14)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn stats_count_components_and_c_entries() {
        let uwsdt = sample();
        let stats = stats_for(&uwsdt, "R").unwrap();
        assert_eq!(stats.components, 2);
        assert_eq!(stats.components_multi, 0);
        assert_eq!(stats.c_size, 5);
        assert_eq!(stats.template_rows, 5);
        assert_eq!(stats.placeholders, 2);
        assert!(stats_for(&uwsdt, "NOPE").is_err());
        assert_eq!(stats_all(&uwsdt).unwrap()["R"], stats);
        assert_eq!(referenced_components(&uwsdt).len(), 2);
    }

    #[test]
    fn multi_placeholder_components_are_counted_after_composition() {
        let mut uwsdt = sample();
        let c1 = uwsdt
            .component_of(&ws_core::FieldId::new("R", 0, "A"))
            .unwrap();
        let c2 = uwsdt
            .component_of(&ws_core::FieldId::new("R", 2, "B"))
            .unwrap();
        uwsdt.compose(&[c1, c2]).unwrap();
        let stats = stats_for(&uwsdt, "R").unwrap();
        assert_eq!(stats.components, 1);
        assert_eq!(stats.components_multi, 1);
        // The composed component has 6 local worlds; each placeholder now has
        // one value per local world.
        assert_eq!(stats.c_size, 12);
    }

    #[test]
    fn histogram_and_bucketing() {
        let uwsdt = sample();
        let histogram = component_size_histogram(&uwsdt, "R").unwrap();
        assert_eq!(histogram.get(&1), Some(&2));
        assert_eq!(bucketed_histogram(&histogram), [2, 0, 0, 0]);

        let mut composed = sample();
        let cids = composed.component_ids();
        composed.compose(&cids).unwrap();
        let histogram = component_size_histogram(&composed, "R").unwrap();
        assert_eq!(bucketed_histogram(&histogram), [0, 1, 0, 0]);
        let big: BTreeMap<usize, usize> = [(1, 3), (2, 2), (3, 1), (4, 5), (7, 1)].into();
        assert_eq!(bucketed_histogram(&big), [3, 2, 1, 6]);
    }
}
