//! Relational-algebra query evaluation on UWSDTs, as a backend of the
//! unified engine.
//!
//! Queries run through the shared `optimize → execute` pipeline of
//! [`ws_relational::engine`], mirroring the SQL-rewriting approach of §5:
//! the size of the rewriting is linear in the query, and every operator
//! touches the template relations with single-world cost plus component work
//! proportional to the number of placeholders involved.
//!
//! The θ-join optimization the paper describes for its experiments — a
//! selection with an attribute-equality condition directly on top of a
//! product becomes a hash [`crate::ops::join`], avoiding the materialization
//! of the full cross product — is recognised by the shared executor; this
//! backend only supplies the physical hash-join operator.

use crate::error::{Result, UwsdtError};
use crate::model::Uwsdt;
use crate::ops;
use ws_relational::engine::{self, ExecContext, QueryBackend, SchemaCatalog};
use ws_relational::{Predicate, RaExpr, RelationalError, Schema};

impl SchemaCatalog for Uwsdt {
    fn schema_of(&self, relation: &str) -> ws_relational::Result<Schema> {
        self.template(relation)
            .map(|t| t.schema().clone())
            .map_err(|_| RelationalError::UnknownRelation(relation.to_string()))
    }

    fn contains_relation(&self, relation: &str) -> bool {
        Uwsdt::contains_relation(self, relation)
    }
}

impl QueryBackend for Uwsdt {
    type Error = UwsdtError;

    fn materialize_base(&mut self, name: &str, out: &str) -> Result<()> {
        // A base relation at the root of a plan is materialized by the
        // identity projection, which copies the template and re-links its
        // placeholders.
        let attrs: Vec<String> = self
            .template(name)?
            .schema()
            .attrs()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        ops::project(self, name, out, &attr_refs)
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        ops::select(self, input, out, pred)
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        ops::project(self, input, out, &attr_refs)
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        ops::product(self, left, right, out)
    }

    fn apply_equi_join(
        &mut self,
        left: &str,
        right: &str,
        left_attr: &str,
        right_attr: &str,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        ops::join(self, left, right, out, left_attr, right_attr)
    }

    fn apply_union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        ops::union(self, left, right, out)
    }

    fn apply_difference(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        ops::difference(self, left, right, out)
    }

    fn apply_rename(&mut self, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
        ops::rename(self, input, out, from, to)
    }

    fn drop_scratch(&mut self, name: &str) {
        let _ = self.drop_relation(name);
    }
}

/// Evaluate a relational-algebra query through the unified
/// `optimize → execute` pipeline, materializing the result as relation
/// `out` inside the same UWSDT.  Returns the result relation's name.
#[deprecated(
    since = "0.1.0",
    note = "open a `maybms::Session` on the Uwsdt (prepare/execute/stream), or call \
            `ws_relational::engine::evaluate_query` directly"
)]
pub fn evaluate_query(uwsdt: &mut Uwsdt, query: &RaExpr, out: &str) -> Result<String> {
    engine::evaluate_query(uwsdt, query, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{from_or_relation, OrField};
    use ws_relational::{CmpOp, Relation, Schema, Value};

    fn small_uwsdt() -> Uwsdt {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 10]).unwrap();
        base.push_values([2i64, 20]).unwrap();
        base.push_values([3i64, 30]).unwrap();
        from_or_relation(
            &base,
            &[OrField::uniform(
                1,
                "B",
                vec![Value::int(20), Value::int(21)],
            )],
        )
        .unwrap()
    }

    #[test]
    fn base_relation_query_copies_the_relation() {
        let mut uwsdt = small_uwsdt();
        engine::evaluate_query(&mut uwsdt, &RaExpr::rel("R"), "OUT").unwrap();
        assert_eq!(uwsdt.template("OUT").unwrap().len(), 3);
        uwsdt.validate().unwrap();
        assert!(engine::evaluate_query(&mut uwsdt, &RaExpr::rel("NOPE"), "X").is_err());
    }

    #[test]
    fn join_pattern_is_detected_and_matches_product_select() {
        let mut base_s = Relation::new(Schema::new("S", &["C"]).unwrap());
        base_s.push_values([10i64]).unwrap();
        base_s.push_values([21i64]).unwrap();
        let mut uwsdt = small_uwsdt();
        let other = from_or_relation(&base_s, &[]).unwrap();
        // Move S's template into the same UWSDT store.
        uwsdt
            .add_template(other.template("S").unwrap().clone())
            .unwrap();

        let join_query = RaExpr::rel("R")
            .product(RaExpr::rel("S"))
            .select(Predicate::cmp_attr("B", CmpOp::Eq, "C"));
        engine::evaluate_query(&mut uwsdt, &join_query, "J").unwrap();
        let result = crate::ops::possible_tuples(&uwsdt, "J").unwrap();
        // (1,10,10) always; (2,21,21) only in the worlds where t2.B = 21.
        assert_eq!(result.len(), 2);
        uwsdt.validate().unwrap();
    }

    #[test]
    fn optimizer_and_naive_pipeline_agree_on_uwsdts() {
        let queries = [
            RaExpr::rel("R")
                .select(Predicate::cmp_const("A", CmpOp::Ge, 2i64))
                .project(vec!["B"]),
            RaExpr::rel("R")
                .product(RaExpr::rel("R").project(vec!["A"]).rename("A", "A2"))
                .select(Predicate::and(vec![
                    Predicate::cmp_attr("A", CmpOp::Eq, "A2"),
                    Predicate::cmp_const("B", CmpOp::Gt, 15i64),
                ])),
        ];
        for query in queries {
            let mut optimized = small_uwsdt();
            engine::evaluate_query_with(
                &mut optimized,
                &query,
                "OUT",
                engine::EngineConfig::default(),
            )
            .unwrap();
            let mut naive = small_uwsdt();
            engine::evaluate_query_with(&mut naive, &query, "OUT", engine::EngineConfig::naive())
                .unwrap();
            let a = crate::ops::possible_tuples(&optimized, "OUT").unwrap();
            let b = crate::ops::possible_tuples(&naive, "OUT").unwrap();
            let a: std::collections::BTreeSet<_> = a.into_iter().collect();
            let b: std::collections::BTreeSet<_> = b.into_iter().collect();
            assert_eq!(a, b, "pipelines disagree for {query}");
            optimized.validate().unwrap();
            naive.validate().unwrap();
        }
    }
}
