//! Relational-algebra query evaluation on UWSDTs.
//!
//! A query is translated into a sequence of the operators of [`crate::ops`],
//! mirroring the SQL-rewriting approach of §5: the size of the rewriting is
//! linear in the query, and every operator touches the template relations
//! with single-world cost plus component work proportional to the number of
//! placeholders involved.
//!
//! The translator applies the optimization the paper describes for its
//! experiments: a selection with an attribute-equality condition directly on
//! top of a product is merged into a hash [`crate::ops::join`], avoiding the
//! materialization of the full cross product.

use crate::error::{Result, UwsdtError};
use crate::model::Uwsdt;
use crate::ops;
use ws_relational::{CmpOp, Predicate, RaExpr};

/// Generate a fresh intermediate relation name.
fn fresh_name(uwsdt: &Uwsdt, counter: &mut usize) -> String {
    loop {
        let name = format!("__q{}", *counter);
        *counter += 1;
        if !uwsdt.contains_relation(&name) {
            return name;
        }
    }
}

/// Evaluate a relational-algebra query, materializing the result as relation
/// `out` inside the same UWSDT.  Returns the result relation's name.
pub fn evaluate_query(uwsdt: &mut Uwsdt, query: &RaExpr, out: &str) -> Result<String> {
    let mut counter = 0usize;
    eval_into(uwsdt, query, out, &mut counter)?;
    Ok(out.to_string())
}

fn eval_into(uwsdt: &mut Uwsdt, query: &RaExpr, out: &str, counter: &mut usize) -> Result<()> {
    match query {
        RaExpr::Rel(name) => {
            let attrs: Vec<String> = uwsdt
                .template(name)?
                .schema()
                .attrs()
                .iter()
                .map(|a| a.to_string())
                .collect();
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            ops::project(uwsdt, name, out, &attr_refs)
        }
        RaExpr::Select { pred, input } => {
            // Join pattern: σ_{…A=B…}(L × R) → hash join.
            if let RaExpr::Product { left, right } = input.as_ref() {
                if let Some((join_atom, rest)) = split_join_condition(pred) {
                    let l = eval_operand(uwsdt, left, counter)?;
                    let r = eval_operand(uwsdt, right, counter)?;
                    let (la, ra) = orient_join_attrs(uwsdt, &l, &r, &join_atom)?;
                    return match rest {
                        None => ops::join(uwsdt, &l, &r, out, &la, &ra),
                        Some(rest_pred) => {
                            let joined = fresh_name(uwsdt, counter);
                            ops::join(uwsdt, &l, &r, &joined, &la, &ra)?;
                            ops::select(uwsdt, &joined, out, &rest_pred)
                        }
                    };
                }
            }
            let input_name = eval_operand(uwsdt, input, counter)?;
            ops::select(uwsdt, &input_name, out, pred)
        }
        RaExpr::Project { attrs, input } => {
            let input_name = eval_operand(uwsdt, input, counter)?;
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            ops::project(uwsdt, &input_name, out, &attr_refs)
        }
        RaExpr::Product { left, right } => {
            let l = eval_operand(uwsdt, left, counter)?;
            let r = eval_operand(uwsdt, right, counter)?;
            ops::product(uwsdt, &l, &r, out)
        }
        RaExpr::Union { left, right } => {
            let l = eval_operand(uwsdt, left, counter)?;
            let r = eval_operand(uwsdt, right, counter)?;
            ops::union(uwsdt, &l, &r, out)
        }
        RaExpr::Difference { left, right } => {
            let l = eval_operand(uwsdt, left, counter)?;
            let r = eval_operand(uwsdt, right, counter)?;
            ops::difference(uwsdt, &l, &r, out)
        }
        RaExpr::Rename { from, to, input } => {
            let input_name = eval_operand(uwsdt, input, counter)?;
            ops::rename(uwsdt, &input_name, out, from, to)
        }
    }
}

/// Evaluate an operand expression; base relations are used in place (no
/// copy), composite expressions are materialized under a fresh name.
fn eval_operand(uwsdt: &mut Uwsdt, expr: &RaExpr, counter: &mut usize) -> Result<String> {
    if let RaExpr::Rel(name) = expr {
        if !uwsdt.contains_relation(name) {
            return Err(UwsdtError::UnknownRelation(name.clone()));
        }
        return Ok(name.clone());
    }
    let name = fresh_name(uwsdt, counter);
    eval_into(uwsdt, expr, &name, counter)?;
    Ok(name)
}

/// If the predicate contains a top-level conjunct of the form `A = B`, split
/// it off and return it together with the remaining predicate (if any).
fn split_join_condition(pred: &Predicate) -> Option<((String, String), Option<Predicate>)> {
    match pred {
        Predicate::AttrAttr {
            left,
            op: CmpOp::Eq,
            right,
        } => Some(((left.clone(), right.clone()), None)),
        Predicate::And(ps) => {
            let idx = ps.iter().position(|p| {
                matches!(
                    p,
                    Predicate::AttrAttr {
                        op: CmpOp::Eq,
                        ..
                    }
                )
            })?;
            let (l, r) = match &ps[idx] {
                Predicate::AttrAttr { left, right, .. } => (left.clone(), right.clone()),
                _ => unreachable!(),
            };
            let rest: Vec<Predicate> = ps
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, p)| p.clone())
                .collect();
            let rest = if rest.is_empty() {
                None
            } else {
                Some(Predicate::And(rest))
            };
            Some(((l, r), rest))
        }
        _ => None,
    }
}

/// Decide which side of the join each attribute of an `A = B` condition
/// belongs to.
fn orient_join_attrs(
    uwsdt: &Uwsdt,
    left_rel: &str,
    right_rel: &str,
    (a, b): &(String, String),
) -> Result<(String, String)> {
    let left_schema = uwsdt.template(left_rel)?.schema().clone();
    let right_schema = uwsdt.template(right_rel)?.schema().clone();
    if left_schema.contains(a) && right_schema.contains(b) {
        Ok((a.clone(), b.clone()))
    } else if left_schema.contains(b) && right_schema.contains(a) {
        Ok((b.clone(), a.clone()))
    } else {
        Err(UwsdtError::unsupported(format!(
            "join condition {a}={b} does not span both operands"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{from_or_relation, OrField};
    use ws_relational::{Relation, Schema, Value};

    fn small_uwsdt() -> Uwsdt {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 10]).unwrap();
        base.push_values([2i64, 20]).unwrap();
        base.push_values([3i64, 30]).unwrap();
        from_or_relation(
            &base,
            &[OrField::uniform(1, "B", vec![Value::int(20), Value::int(21)])],
        )
        .unwrap()
    }

    #[test]
    fn base_relation_query_copies_the_relation() {
        let mut uwsdt = small_uwsdt();
        evaluate_query(&mut uwsdt, &RaExpr::rel("R"), "OUT").unwrap();
        assert_eq!(uwsdt.template("OUT").unwrap().len(), 3);
        uwsdt.validate().unwrap();
        assert!(evaluate_query(&mut uwsdt, &RaExpr::rel("NOPE"), "X").is_err());
    }

    #[test]
    fn join_pattern_is_detected_and_matches_product_select() {
        let mut base_s = Relation::new(Schema::new("S", &["C"]).unwrap());
        base_s.push_values([10i64]).unwrap();
        base_s.push_values([21i64]).unwrap();
        let mut uwsdt = small_uwsdt();
        let other = from_or_relation(&base_s, &[]).unwrap();
        // Move S's template into the same UWSDT store.
        uwsdt
            .add_template(other.template("S").unwrap().clone())
            .unwrap();

        let join_query = RaExpr::rel("R")
            .product(RaExpr::rel("S"))
            .select(Predicate::cmp_attr("B", CmpOp::Eq, "C"));
        evaluate_query(&mut uwsdt, &join_query, "J").unwrap();
        let result = crate::ops::possible_tuples(&uwsdt, "J").unwrap();
        // (1,10,10) always; (2,21,21) only in the worlds where t2.B = 21.
        assert_eq!(result.len(), 2);
        uwsdt.validate().unwrap();
    }

    #[test]
    fn split_join_condition_handles_conjunctions() {
        let pred = Predicate::and(vec![
            Predicate::eq_const("A", 1i64),
            Predicate::cmp_attr("B", CmpOp::Eq, "C"),
        ]);
        let ((l, r), rest) = split_join_condition(&pred).unwrap();
        assert_eq!((l.as_str(), r.as_str()), ("B", "C"));
        assert!(rest.is_some());
        assert!(split_join_condition(&Predicate::eq_const("A", 1i64)).is_none());
    }
}
