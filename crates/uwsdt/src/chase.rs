//! Chasing dependencies on UWSDTs (§8 applied to the uniform representation;
//! used for the census data cleaning of §9).
//!
//! Chasing removes *worlds*, not tuples: for every tuple that could violate a
//! dependency, the components defining the involved uncertain fields are
//! composed and the violating local worlds are deleted from `W` (and their
//! values from `C`), renormalizing the surviving probabilities.  A violation
//! by a completely certain tuple makes every world inconsistent.

use crate::error::{Result, UwsdtError};
use crate::model::{Cid, Lwid, Uwsdt};
use std::collections::{BTreeSet, HashMap};
use ws_core::chase::{Dependency, EqualityGeneratingDependency, FunctionalDependency};
use ws_core::FieldId;
use ws_relational::Value;

/// Chase a set of dependencies on the UWSDT.
///
/// Returns the probability mass of the *original* world-set that satisfies
/// every dependency (`P(ψ)`), mirroring `ws_core::chase::chase`; the
/// surviving worlds are renormalized in place.
pub fn chase(uwsdt: &mut Uwsdt, dependencies: &[Dependency]) -> Result<f64> {
    let mut mass = 1.0;
    for dep in dependencies {
        mass *= match dep {
            Dependency::Egd(egd) => chase_egd(uwsdt, egd)?,
            Dependency::Fd(fd) => chase_fd(uwsdt, fd)?,
        };
    }
    Ok(mass)
}

/// The probability mass of a component's local worlds that is about to be
/// removed (the component is normalized, so the survival fraction is
/// `1 − removed`).
fn removed_mass(uwsdt: &Uwsdt, cid: Cid, removed: &BTreeSet<Lwid>) -> Result<f64> {
    Ok(uwsdt
        .component_worlds(cid)?
        .iter()
        .filter(|w| removed.contains(&w.lwid))
        .map(|w| w.prob)
        .sum())
}

/// The placeholders of a tuple that encode a possible *absence* of the tuple
/// (their `C` values do not cover every local world of their component).  An
/// absent tuple cannot violate a dependency, so these placeholders join every
/// violation check.
fn absence_placeholders(uwsdt: &Uwsdt, relation: &str, tuple: usize) -> Vec<ws_core::FieldId> {
    uwsdt
        .placeholders_of(relation)
        .into_iter()
        .filter(|f| f.tuple.0 == tuple)
        .filter(|f| {
            let cid = match uwsdt.component_of(f) {
                Some(cid) => cid,
                None => return false,
            };
            let covered = uwsdt.placeholder_values(f).map(|v| v.len()).unwrap_or(0);
            let total = uwsdt
                .component_worlds(cid)
                .map(|w| w.len())
                .unwrap_or(covered);
            covered < total
        })
        .collect()
}

/// Chase one single-tuple equality-generating dependency, returning the
/// fraction of the probability mass whose worlds satisfy it.
pub fn chase_egd(uwsdt: &mut Uwsdt, egd: &EqualityGeneratingDependency) -> Result<f64> {
    let template = uwsdt.template(&egd.relation)?.clone();
    let schema = template.schema().clone();
    for atom in egd.body.iter().chain(std::iter::once(&egd.head)) {
        schema.position_of(&atom.attr)?;
    }
    let tuple_count = template.len();
    let mut survival = 1.0;
    for t in 0..tuple_count {
        let row = &template.rows()[t];
        // Refinement (§8): skip when the body is certainly false or the head
        // certainly true.
        let mut body_possible = true;
        for atom in &egd.body {
            let values = uwsdt.possible_field_values(&egd.relation, t, &atom.attr)?;
            if !values.iter().any(|v| atom.eval(v)) {
                body_possible = false;
                break;
            }
        }
        if !body_possible {
            continue;
        }
        let head_values = uwsdt.possible_field_values(&egd.relation, t, &egd.head.attr)?;
        if head_values.iter().all(|v| egd.head.eval(v)) {
            continue;
        }

        // Which involved attributes are uncertain?
        let involved: Vec<&str> = {
            let mut v: Vec<&str> = egd.body.iter().map(|a| a.attr.as_str()).collect();
            v.push(egd.head.attr.as_str());
            v.sort_unstable();
            v.dedup();
            v
        };
        let uncertain: Vec<&str> = involved
            .iter()
            .copied()
            .filter(|a| row[schema.position_of(a).unwrap()].is_unknown())
            .collect();
        if uncertain.is_empty() {
            // Certain violation: no world satisfies the dependency.
            return Err(UwsdtError::Inconsistent);
        }
        // Compose the components spanned by the dependency (and any presence
        // conditions of the tuple, so that absent-in-some-worlds tuples are
        // not over-cleaned).
        let mut cids: Vec<Cid> = uncertain
            .iter()
            .filter_map(|a| uwsdt.component_of(&FieldId::new(&egd.relation, t, *a)))
            .collect();
        for cond in uwsdt.presence_of(&egd.relation, t).to_vec() {
            cids.push(cond.cid);
        }
        let absence = absence_placeholders(uwsdt, &egd.relation, t);
        for f in &absence {
            if let Some(cid) = uwsdt.component_of(f) {
                cids.push(cid);
            }
        }
        cids.sort_unstable();
        cids.dedup();
        let cid = uwsdt.compose(&cids)?;

        let mut violating: BTreeSet<Lwid> = BTreeSet::new();
        for w in uwsdt.component_worlds(cid)?.to_vec() {
            // Tuple absent (presence condition or missing placeholder value)
            // ⇒ no violation in this local world.
            if uwsdt
                .presence_of(&egd.relation, t)
                .iter()
                .any(|c| c.cid == cid && !c.lwids.contains(&w.lwid))
            {
                continue;
            }
            if absence.iter().any(|f| {
                uwsdt
                    .placeholder_values(f)
                    .map(|vals| !vals.contains_key(&w.lwid))
                    .unwrap_or(false)
            }) {
                continue;
            }
            let value_of = |attr: &str| -> Option<Value> {
                let pos = schema.position_of(attr).unwrap();
                if row[pos].is_unknown() {
                    uwsdt
                        .placeholder_values(&FieldId::new(&egd.relation, t, attr))
                        .and_then(|vals| vals.get(&w.lwid).cloned())
                } else {
                    Some(row[pos].clone())
                }
            };
            let mut all_present = true;
            let mut body_holds = true;
            for atom in &egd.body {
                match value_of(&atom.attr) {
                    Some(v) => {
                        if !atom.eval(&v) {
                            body_holds = false;
                            break;
                        }
                    }
                    None => {
                        all_present = false;
                        break;
                    }
                }
            }
            if !all_present || !body_holds {
                continue;
            }
            if let Some(v) = value_of(&egd.head.attr) {
                if !egd.head.eval(&v) {
                    violating.insert(w.lwid);
                }
            }
        }
        if !violating.is_empty() {
            survival *= 1.0 - removed_mass(uwsdt, cid, &violating)?;
            uwsdt.remove_local_worlds(cid, &violating)?;
        }
    }
    Ok(survival)
}

/// Chase one functional dependency `lhs → rhs`.
///
/// Candidate pairs are found through a hash index over the possible values of
/// the first determinant attribute, so that only tuples that could agree on
/// the determinant are compared.  Returns the fraction of the probability
/// mass whose worlds satisfy the dependency.
pub fn chase_fd(uwsdt: &mut Uwsdt, fd: &FunctionalDependency) -> Result<f64> {
    let template = uwsdt.template(&fd.relation)?.clone();
    let schema = template.schema().clone();
    for a in fd.lhs.iter().chain(&fd.rhs) {
        schema.position_of(a)?;
    }
    if fd.lhs.is_empty() || fd.rhs.is_empty() {
        return Err(UwsdtError::invalid(
            "functional dependency needs lhs and rhs",
        ));
    }
    // Index tuples by the possible values of the first determinant attribute.
    let first = &fd.lhs[0];
    let mut by_value: HashMap<Value, Vec<usize>> = HashMap::new();
    for t in 0..template.len() {
        for v in uwsdt.possible_field_values(&fd.relation, t, first)? {
            by_value.entry(v).or_default().push(t);
        }
    }
    let mut survival = 1.0;
    let mut candidate_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for tuples in by_value.values() {
        for (i, &s) in tuples.iter().enumerate() {
            for &t in &tuples[i + 1..] {
                candidate_pairs.insert((s.min(t), s.max(t)));
            }
        }
    }

    for (s, t) in candidate_pairs {
        // Refinement: every determinant attribute must share a possible
        // value, and the dependents must not be certainly equal.
        let mut overlap = true;
        for a in &fd.lhs {
            let vs = uwsdt.possible_field_values(&fd.relation, s, a)?;
            let vt = uwsdt.possible_field_values(&fd.relation, t, a)?;
            if !vs.iter().any(|v| vt.contains(v)) {
                overlap = false;
                break;
            }
        }
        if !overlap {
            continue;
        }
        let mut rhs_certainly_equal = true;
        for a in &fd.rhs {
            let vs = uwsdt.possible_field_values(&fd.relation, s, a)?;
            let vt = uwsdt.possible_field_values(&fd.relation, t, a)?;
            if !(vs.len() == 1 && vt.len() == 1 && vs[0] == vt[0]) {
                rhs_certainly_equal = false;
                break;
            }
        }
        if rhs_certainly_equal {
            continue;
        }

        // Collect the components of the uncertain involved fields of both
        // tuples (plus presence conditions).
        let involved: Vec<&String> = fd.lhs.iter().chain(&fd.rhs).collect();
        let mut cids: Vec<Cid> = Vec::new();
        let mut any_uncertain = false;
        for &tuple in &[s, t] {
            let row = &template.rows()[tuple];
            for a in &involved {
                let pos = schema.position_of(a)?;
                if row[pos].is_unknown() {
                    any_uncertain = true;
                    if let Some(cid) =
                        uwsdt.component_of(&FieldId::new(&fd.relation, tuple, a.as_str()))
                    {
                        cids.push(cid);
                    }
                }
            }
            for cond in uwsdt.presence_of(&fd.relation, tuple).to_vec() {
                cids.push(cond.cid);
            }
        }
        let absence: Vec<ws_core::FieldId> = [s, t]
            .iter()
            .flat_map(|&tuple| absence_placeholders(uwsdt, &fd.relation, tuple))
            .collect();
        for f in &absence {
            if let Some(cid) = uwsdt.component_of(f) {
                cids.push(cid);
            }
        }
        if !any_uncertain && absence.is_empty() {
            // Both tuples certain and always present: a violation means no
            // world is consistent.
            return Err(UwsdtError::Inconsistent);
        }
        cids.sort_unstable();
        cids.dedup();
        if cids.is_empty() {
            return Err(UwsdtError::Inconsistent);
        }
        let cid = uwsdt.compose(&cids)?;

        let mut violating: BTreeSet<Lwid> = BTreeSet::new();
        for w in uwsdt.component_worlds(cid)?.to_vec() {
            if absence.iter().any(|f| {
                uwsdt
                    .placeholder_values(f)
                    .map(|vals| !vals.contains_key(&w.lwid))
                    .unwrap_or(false)
            }) {
                continue;
            }
            let value_of = |tuple: usize, attr: &str| -> Option<Value> {
                let pos = schema.position_of(attr).unwrap();
                let row = &template.rows()[tuple];
                if row[pos].is_unknown() {
                    uwsdt
                        .placeholder_values(&FieldId::new(&fd.relation, tuple, attr))
                        .and_then(|vals| vals.get(&w.lwid).cloned())
                } else {
                    Some(row[pos].clone())
                }
            };
            // Presence conditions on the composed component.
            let present = |tuple: usize| {
                uwsdt
                    .presence_of(&fd.relation, tuple)
                    .iter()
                    .all(|c| c.cid != cid || c.lwids.contains(&w.lwid))
            };
            if !present(s) || !present(t) {
                continue;
            }
            let mut lhs_equal = true;
            for a in &fd.lhs {
                match (value_of(s, a), value_of(t, a)) {
                    (Some(x), Some(y)) if x == y => {}
                    _ => {
                        lhs_equal = false;
                        break;
                    }
                }
            }
            if !lhs_equal {
                continue;
            }
            let mut rhs_equal = true;
            for a in &fd.rhs {
                match (value_of(s, a), value_of(t, a)) {
                    (Some(x), Some(y)) if x == y => {}
                    (None, _) | (_, None) => {
                        // A missing dependent value means the tuple is absent.
                        rhs_equal = true;
                        lhs_equal = false;
                        break;
                    }
                    _ => {
                        rhs_equal = false;
                        break;
                    }
                }
            }
            if lhs_equal && !rhs_equal {
                violating.insert(w.lwid);
            }
        }
        if !violating.is_empty() {
            survival *= 1.0 - removed_mass(uwsdt, cid, &violating)?;
            uwsdt.remove_local_worlds(cid, &violating)?;
        }
    }
    Ok(survival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{from_or_relation, OrField};
    use ws_core::chase::AttrComparison;
    use ws_relational::{CmpOp, Relation, Schema};

    /// The introduction's uncleaned or-set relation (32 worlds).
    fn census_or_relation() -> Uwsdt {
        let mut base = Relation::new(Schema::new("R", &["S", "N", "M"]).unwrap());
        base.push_values([Value::int(0), Value::text("Smith"), Value::int(0)])
            .unwrap();
        base.push_values([Value::int(0), Value::text("Brown"), Value::int(0)])
            .unwrap();
        from_or_relation(
            &base,
            &[
                OrField::uniform(0, "S", vec![Value::int(185), Value::int(785)]),
                OrField::uniform(0, "M", vec![Value::int(1), Value::int(2)]),
                OrField::uniform(1, "S", vec![Value::int(185), Value::int(186)]),
                OrField::uniform(
                    1,
                    "M",
                    vec![Value::int(1), Value::int(2), Value::int(3), Value::int(4)],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fd_chase_keeps_24_of_32_worlds() {
        let mut uwsdt = census_or_relation();
        assert_eq!(uwsdt.world_count(), 32);
        let fd = FunctionalDependency::new("R", vec!["S"], vec!["N", "M"]);
        chase_fd(&mut uwsdt, &fd).unwrap();
        uwsdt.validate().unwrap();
        let worlds = uwsdt.enumerate_worlds(100_000).unwrap();
        assert_eq!(worlds.len(), 24);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (db, _) in &worlds {
            assert_eq!(
                db.relation("R")
                    .unwrap()
                    .distinct_column("S")
                    .unwrap()
                    .len(),
                2
            );
        }
    }

    #[test]
    fn egd_chase_restricts_values_and_renormalizes() {
        let mut uwsdt = census_or_relation();
        // S = 785 ⇒ M = 1 for tuple t1 (as in §8).
        let egd = EqualityGeneratingDependency::implies("R", "S", 785i64, "M", CmpOp::Eq, 1i64);
        chase_egd(&mut uwsdt, &egd).unwrap();
        uwsdt.validate().unwrap();
        for (db, _) in uwsdt.enumerate_worlds(100_000).unwrap() {
            for row in db.relation("R").unwrap().rows() {
                assert!(row[0] != Value::int(785) || row[2] == Value::int(1));
            }
        }
    }

    #[test]
    fn certain_violation_is_inconsistent() {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 2]).unwrap();
        let mut uwsdt = from_or_relation(&base, &[]).unwrap();
        let egd = EqualityGeneratingDependency::implies("R", "A", 1i64, "B", CmpOp::Eq, 3i64);
        assert_eq!(chase_egd(&mut uwsdt, &egd), Err(UwsdtError::Inconsistent));

        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 2]).unwrap();
        base.push_values([1i64, 3]).unwrap();
        let mut uwsdt = from_or_relation(&base, &[]).unwrap();
        let fd = FunctionalDependency::new("R", vec!["A"], vec!["B"]);
        assert_eq!(chase_fd(&mut uwsdt, &fd), Err(UwsdtError::Inconsistent));
    }

    #[test]
    fn chase_skips_tuples_that_cannot_violate() {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 1]).unwrap();
        base.push_values([2i64, 2]).unwrap();
        let mut uwsdt = from_or_relation(
            &base,
            &[OrField::uniform(0, "B", vec![Value::int(1), Value::int(9)])],
        )
        .unwrap();
        let components_before = uwsdt.component_ids().len();
        // Body never holds (A is never 5): nothing changes.
        let egd = EqualityGeneratingDependency::implies("R", "A", 5i64, "B", CmpOp::Eq, 0i64);
        chase_egd(&mut uwsdt, &egd).unwrap();
        assert_eq!(uwsdt.component_ids().len(), components_before);
        assert_eq!(uwsdt.world_count(), 2);
        // Head always holds for B of tuple 2; determinants never overlap.
        let fd = FunctionalDependency::new("R", vec!["A"], vec!["B"]);
        chase_fd(&mut uwsdt, &fd).unwrap();
        assert_eq!(uwsdt.world_count(), 2);
    }

    #[test]
    fn chase_matches_world_filtering_oracle() {
        let mut uwsdt = census_or_relation();
        let before = uwsdt.enumerate_worlds(100_000).unwrap();
        let deps = vec![
            Dependency::Fd(FunctionalDependency::new("R", vec!["S"], vec!["M"])),
            Dependency::Egd(EqualityGeneratingDependency::new(
                "R",
                vec![AttrComparison::new("S", CmpOp::Eq, 785i64)],
                AttrComparison::new("M", CmpOp::Ne, 4i64),
            )),
        ];
        let reported_mass = chase(&mut uwsdt, &deps).unwrap();
        let after = uwsdt.enumerate_worlds(100_000).unwrap();
        // Oracle: filter + renormalize the original worlds.
        let ok = |db: &ws_relational::Database| {
            let r = db.relation("R").unwrap();
            let fd_ok = r
                .rows()
                .iter()
                .all(|a| r.rows().iter().all(|b| a[0] != b[0] || a[2] == b[2]));
            let egd_ok = r
                .rows()
                .iter()
                .all(|a| a[0] != Value::int(785) || a[2] != Value::int(4));
            fd_ok && egd_ok
        };
        let surviving: Vec<(ws_relational::Database, f64)> =
            before.into_iter().filter(|(db, _)| ok(db)).collect();
        let mass: f64 = surviving.iter().map(|(_, p)| p).sum();
        assert!(
            (reported_mass - mass).abs() < 1e-9,
            "chase reported mass {reported_mass}, oracle says {mass}"
        );
        let expected = ws_core::WorldSet::from_weighted_worlds(
            surviving
                .into_iter()
                .map(|(db, p)| (db, p / mass))
                .collect(),
        );
        let actual = ws_core::WorldSet::from_weighted_worlds(after);
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
    }
}
