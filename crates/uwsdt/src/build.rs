//! Constructing UWSDTs.
//!
//! Two entry points matter in practice (Remark 1 of the paper): loading a
//! "dirty" relation whose fields carry or-sets of possible values
//! ([`from_or_relation`]), and converting a (small) WSD/WSDT produced by the
//! core layer ([`from_wsdt`], [`from_wsd`]).  The or-relation path is the
//! scalable one used by the census workload: the certain data goes straight
//! into the template and each noisy field becomes a single-placeholder
//! component.

use crate::error::{Result, UwsdtError};
use crate::model::Uwsdt;
use std::collections::BTreeMap;
use ws_core::{FieldId, Wsd, Wsdt};
use ws_relational::{Relation, Value};

/// One uncertain field of an or-relation: the alternatives (with weights) of
/// field `attr` of tuple `tuple`.
#[derive(Clone, Debug, PartialEq)]
pub struct OrField {
    /// The tuple index within the relation.
    pub tuple: usize,
    /// The attribute name.
    pub attr: String,
    /// The weighted alternatives; weights must sum to one.
    pub alternatives: Vec<(Value, f64)>,
}

impl OrField {
    /// An or-set field with equally likely alternatives.
    pub fn uniform(tuple: usize, attr: impl Into<String>, values: Vec<Value>) -> Self {
        let p = 1.0 / values.len().max(1) as f64;
        OrField {
            tuple,
            attr: attr.into(),
            alternatives: values.into_iter().map(|v| (v, p)).collect(),
        }
    }
}

/// Build a UWSDT from a fully certain relation plus a list of uncertain
/// fields (the "dirty relation" loading path).
///
/// The `base` relation provides the template values; each entry of
/// `uncertain` replaces one field by a `?` placeholder whose possible values
/// go into a fresh single-placeholder component.
pub fn from_or_relation(base: &Relation, uncertain: &[OrField]) -> Result<Uwsdt> {
    let mut template = base.clone();
    let name = base.schema().relation().to_string();
    for field in uncertain {
        let pos = template.schema().position_of(&field.attr)?;
        let row = template
            .rows_mut()
            .get_mut(field.tuple)
            .ok_or_else(|| UwsdtError::invalid(format!("tuple {} out of range", field.tuple)))?;
        row.set(pos, Value::Unknown);
    }
    let mut uwsdt = Uwsdt::new();
    uwsdt.add_template(template)?;
    for field in uncertain {
        if field.alternatives.is_empty() {
            return Err(UwsdtError::invalid("or-set fields need at least one value"));
        }
        uwsdt.add_placeholder(
            FieldId::new(&name, field.tuple, &field.attr),
            field.alternatives.clone(),
        )?;
    }
    Ok(uwsdt)
}

/// Convert a WSDT (produced by `ws-core`) into the uniform representation.
pub fn from_wsdt(wsdt: &Wsdt) -> Result<Uwsdt> {
    let mut uwsdt = Uwsdt::new();
    // Templates transfer directly; the UWSDT's tuple ids are the template row
    // positions, so remap the WSDT's tuple slots to consecutive positions.
    let mut slot_to_row: BTreeMap<(String, usize), usize> = BTreeMap::new();
    for (name, template) in &wsdt.templates {
        let renumbered = Relation::with_rows(template.schema().clone(), template.rows().to_vec())?;
        uwsdt.add_template(renumbered)?;
        for (row, slot) in wsdt.tuple_slots[name]
            .iter()
            .enumerate()
            .map(|(r, s)| (r, *s))
        {
            slot_to_row.insert((name.clone(), slot), row);
        }
    }
    for component in &wsdt.components {
        let worlds: Vec<crate::model::WorldEntry> = component
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| crate::model::WorldEntry {
                lwid: i,
                prob: r.prob,
            })
            .collect();
        let cid = uwsdt.create_component(worlds)?;
        for (pos, field) in component.fields.iter().enumerate() {
            let row = slot_to_row
                .get(&(field.relation.to_string(), field.tuple.0))
                .copied()
                .ok_or_else(|| {
                    UwsdtError::invalid(format!("field {field} refers to a removed tuple"))
                })?;
            let mut values = BTreeMap::new();
            for (lwid, local) in component.rows.iter().enumerate() {
                let v = &local.values[pos];
                if !v.is_bottom() {
                    values.insert(lwid, v.clone());
                }
            }
            uwsdt.add_placeholder_in_component(
                FieldId::new(field.relation.as_ref(), row, field.attr.as_ref()),
                cid,
                values,
            )?;
        }
    }
    Ok(uwsdt)
}

/// Convert a WSD into the uniform representation (via its WSDT).
pub fn from_wsd(wsd: &Wsd) -> Result<Uwsdt> {
    let wsdt = Wsdt::from_wsd(wsd)?;
    from_wsdt(&wsdt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_relational::{Schema, Tuple};

    /// The UWSDT of Figure 8: SSNs of t1/t2 correlated, t1.M uncertain,
    /// everything else certain.
    pub fn figure8_uwsdt() -> Uwsdt {
        let mut template = Relation::new(Schema::new("R", &["S", "N", "M"]).unwrap());
        template
            .push(Tuple::new(vec![
                Value::Unknown,
                Value::text("Smith"),
                Value::Unknown,
            ]))
            .unwrap();
        template
            .push(Tuple::new(vec![
                Value::Unknown,
                Value::text("Brown"),
                Value::int(3),
            ]))
            .unwrap();
        let mut uwsdt = Uwsdt::new();
        uwsdt.add_template(template).unwrap();
        let c1 = uwsdt
            .create_component(vec![
                crate::model::WorldEntry { lwid: 0, prob: 0.2 },
                crate::model::WorldEntry { lwid: 1, prob: 0.4 },
                crate::model::WorldEntry { lwid: 2, prob: 0.4 },
            ])
            .unwrap();
        uwsdt
            .add_placeholder_in_component(
                FieldId::new("R", 0, "S"),
                c1,
                [
                    (0, Value::int(185)),
                    (1, Value::int(785)),
                    (2, Value::int(785)),
                ]
                .into_iter()
                .collect(),
            )
            .unwrap();
        uwsdt
            .add_placeholder_in_component(
                FieldId::new("R", 1, "S"),
                c1,
                [
                    (0, Value::int(186)),
                    (1, Value::int(185)),
                    (2, Value::int(186)),
                ]
                .into_iter()
                .collect(),
            )
            .unwrap();
        uwsdt
            .add_placeholder(
                FieldId::new("R", 0, "M"),
                vec![(Value::int(1), 0.7), (Value::int(2), 0.3)],
            )
            .unwrap();
        uwsdt.validate().unwrap();
        uwsdt
    }

    #[test]
    fn figure8_world_semantics() {
        let uwsdt = figure8_uwsdt();
        assert_eq!(uwsdt.world_count(), 6);
        let worlds = uwsdt.enumerate_worlds(100).unwrap();
        assert_eq!(worlds.len(), 6);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Every world has both tuples, t2.M is always 3, SSNs always differ.
        for (db, _) in &worlds {
            let r = db.relation("R").unwrap();
            assert_eq!(r.len(), 2);
            assert!(r.rows().iter().any(|t| t[2] == Value::int(3)));
            let ssns = r.distinct_column("S").unwrap();
            assert_eq!(ssns.len(), 2);
        }
        assert_eq!(uwsdt.c_size(), 8);
        assert_eq!(uwsdt.c_size_of("R"), 8);
        assert_eq!(uwsdt.component_ids().len(), 2);
        assert_eq!(uwsdt.placeholders_of("R").len(), 3);
    }

    #[test]
    fn or_relation_loading_matches_manual_construction() {
        let mut base = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        base.push_values([1i64, 10]).unwrap();
        base.push_values([2i64, 20]).unwrap();
        let uncertain = vec![
            OrField::uniform(0, "A", vec![Value::int(1), Value::int(9)]),
            OrField::uniform(1, "B", vec![Value::int(20), Value::int(21), Value::int(22)]),
        ];
        let uwsdt = from_or_relation(&base, &uncertain).unwrap();
        uwsdt.validate().unwrap();
        assert_eq!(uwsdt.world_count(), 6);
        assert_eq!(uwsdt.c_size(), 5);
        // Template keeps certain values and gets ? for noisy ones.
        let template = uwsdt.template("R").unwrap();
        assert!(template.rows()[0][0].is_unknown());
        assert_eq!(template.rows()[0][1], Value::int(10));
        assert!(template.rows()[1][1].is_unknown());
        // Possible values reflect the or-sets.
        assert_eq!(uwsdt.possible_field_values("R", 1, "B").unwrap().len(), 3);
        assert_eq!(
            uwsdt.possible_field_values("R", 0, "B").unwrap(),
            vec![Value::int(10)]
        );
    }

    #[test]
    fn or_relation_rejects_bad_input() {
        let mut base = Relation::new(Schema::new("R", &["A"]).unwrap());
        base.push_values([1i64]).unwrap();
        assert!(from_or_relation(&base, &[OrField::uniform(5, "A", vec![Value::int(1)])]).is_err());
        assert!(from_or_relation(
            &base,
            &[OrField {
                tuple: 0,
                attr: "A".into(),
                alternatives: vec![]
            }]
        )
        .is_err());
        assert!(from_or_relation(&base, &[OrField::uniform(0, "Z", vec![Value::int(1)])]).is_err());
    }

    #[test]
    fn conversion_from_wsd_preserves_the_world_set() {
        let wsd = ws_core::wsd::example_census_wsd();
        let expected = wsd.rep().unwrap();
        let uwsdt = from_wsd(&wsd).unwrap();
        uwsdt.validate().unwrap();
        let worlds = uwsdt.enumerate_worlds(10_000).unwrap();
        let actual = ws_core::WorldSet::from_weighted_worlds(worlds);
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
        // Figure 5 shape: 3 components, 4 placeholders.
        assert_eq!(uwsdt.component_ids().len(), 3);
        assert_eq!(uwsdt.placeholders_of("R").len(), 4);
    }

    #[test]
    fn conversion_handles_worlds_of_different_sizes() {
        // A WSD where tuple t2 exists only in half of the worlds.
        let mut wsd = Wsd::new();
        wsd.register_relation("R", &["A"], 2).unwrap();
        wsd.set_certain(FieldId::new("R", 0, "A"), Value::int(1))
            .unwrap();
        wsd.set_alternatives(
            FieldId::new("R", 1, "A"),
            vec![(Value::int(2), 0.5), (Value::Bottom, 0.5)],
        )
        .unwrap();
        let expected = wsd.rep().unwrap();
        let uwsdt = from_wsd(&wsd).unwrap();
        let actual = ws_core::WorldSet::from_weighted_worlds(uwsdt.enumerate_worlds(100).unwrap());
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
    }
}
