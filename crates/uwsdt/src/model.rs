//! The uniform WSDT representation (§3 "Uniform World-Set Decompositions",
//! §5).
//!
//! Database systems do not support relations of data-dependent arity, so the
//! variable-arity components of a WSD are stored in three fixed-schema
//! relations plus one template relation per represented relation:
//!
//! * `C[FID, LWID, VAL]` — the possible values of each placeholder field,
//! * `F[FID, CID]`       — which component each placeholder belongs to,
//! * `W[CID, LWID, PR]`  — the local worlds of each component and their
//!   probabilities,
//! * `R⁰`                — the template: one row per tuple, holding the
//!   values that are the same in all worlds and `?` for placeholders.
//!
//! A possible world is obtained by choosing one `LWID` per component
//! (according to `W`); a placeholder then takes the value recorded in `C` for
//! that `LWID`.  A tuple is *absent* from a world if one of its placeholders
//! has no `C` entry for the chosen local world, or if one of its *presence
//! conditions* excludes that local world.  Presence conditions are this
//! implementation's version of the "exists column" the paper suggests to
//! avoid composing components during projection: they record, per result
//! tuple, the set of local worlds of a component in which the tuple exists.

use crate::error::{Result, UwsdtError};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use ws_core::FieldId;
use ws_relational::{Database, Relation, Tuple, Value};

/// A component identifier.
pub type Cid = usize;

/// A local-world identifier, scoped to one component.
pub type Lwid = usize;

/// A key addressing one tuple of one represented relation.
pub type TupleKey = (String, usize);

/// One entry of the `W` relation: a local world of a component.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldEntry {
    /// The local-world identifier.
    pub lwid: Lwid,
    /// Its probability within the component.
    pub prob: f64,
}

/// A presence condition: the tuple exists only in the listed local worlds of
/// the given component.
#[derive(Clone, Debug, PartialEq)]
pub struct PresenceCondition {
    /// The component the condition ranges over.
    pub cid: Cid,
    /// The local worlds in which the tuple is present.
    pub lwids: BTreeSet<Lwid>,
}

/// The flattened, deterministically ordered raw state of a [`Uwsdt`] — the
/// boundary the persistence codec works against, so that the hash-map-backed
/// internals never leak their (instance-dependent) iteration order into
/// snapshot bytes.
///
/// Produced by [`Uwsdt::to_snapshot`]; consumed (and re-validated) by
/// [`Uwsdt::from_snapshot`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UwsdtSnapshot {
    /// The template relations, sorted by relation name.
    pub templates: Vec<Relation>,
    /// Per component (sorted by id): its local worlds and the placeholder
    /// fields it defines, in their original registration order.
    pub components: Vec<(Cid, Vec<WorldEntry>, Vec<FieldId>)>,
    /// The `C` entries per placeholder field, sorted by field.
    pub values: Vec<(FieldId, Vec<(Lwid, Value)>)>,
    /// The presence conditions per tuple, sorted by `(relation, tuple)`;
    /// each tuple's condition list keeps its original (conjunctive) order.
    pub presence: Vec<(String, usize, Vec<PresenceCondition>)>,
    /// The next fresh component identifier.
    pub next_cid: Cid,
}

/// A uniform world-set decomposition with template relations.
#[derive(Clone, Debug, Default)]
pub struct Uwsdt {
    /// Template relations, keyed by relation name.  Row `i` of the template
    /// of `R` is tuple `i` of `R`.
    templates: BTreeMap<String, Relation>,
    /// `F`: placeholder field → component.
    f: HashMap<FieldId, Cid>,
    /// `C`: placeholder field → its possible values per local world.
    c: HashMap<FieldId, BTreeMap<Lwid, Value>>,
    /// `W`: component → local worlds with probabilities.
    w: HashMap<Cid, Vec<WorldEntry>>,
    /// Reverse index: component → the placeholder fields it defines.
    comp_fields: HashMap<Cid, Vec<FieldId>>,
    /// Presence conditions per tuple (conjunctive).
    presence: HashMap<TupleKey, Vec<PresenceCondition>>,
    /// Next fresh component identifier.
    next_cid: Cid,
}

impl Uwsdt {
    /// Create an empty UWSDT.
    pub fn new() -> Self {
        Uwsdt::default()
    }

    // ------------------------------------------------------------------
    // Template relations
    // ------------------------------------------------------------------

    /// Add a template relation.  Placeholder fields must be registered
    /// afterwards with [`Uwsdt::add_placeholder`] or
    /// [`Uwsdt::add_placeholder_in_component`].
    pub fn add_template(&mut self, template: Relation) -> Result<()> {
        let name = template.schema().relation().to_string();
        if self.templates.contains_key(&name) {
            return Err(UwsdtError::invalid(format!(
                "relation `{name}` already present"
            )));
        }
        self.templates.insert(name, template);
        Ok(())
    }

    /// The template relation of `name`.
    pub fn template(&self, name: &str) -> Result<&Relation> {
        self.templates
            .get(name)
            .ok_or_else(|| UwsdtError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to a template relation (used by the operators).
    pub(crate) fn template_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.templates
            .get_mut(name)
            .ok_or_else(|| UwsdtError::UnknownRelation(name.to_string()))
    }

    /// Names of the represented relations.
    pub fn relation_names(&self) -> Vec<&str> {
        self.templates.keys().map(String::as_str).collect()
    }

    /// Whether a relation is represented.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.templates.contains_key(name)
    }

    /// Remove a relation (template, placeholders, presence conditions).
    /// Components that no longer define any placeholder are dropped.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        let template = self
            .templates
            .remove(name)
            .ok_or_else(|| UwsdtError::UnknownRelation(name.to_string()))?;
        let fields: Vec<FieldId> = self
            .f
            .keys()
            .filter(|fid| fid.in_relation(name))
            .cloned()
            .collect();
        for fid in fields {
            self.remove_placeholder(&fid);
        }
        self.presence.retain(|(rel, _), _| rel != name);
        drop(template);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Components and placeholders
    // ------------------------------------------------------------------

    /// Create a fresh component with the given local worlds.
    pub fn create_component(&mut self, worlds: Vec<WorldEntry>) -> Result<Cid> {
        if worlds.is_empty() {
            return Err(UwsdtError::invalid("a component needs local worlds"));
        }
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(UwsdtError::invalid(format!(
                "component probabilities sum to {total}, expected 1"
            )));
        }
        let cid = self.next_cid;
        self.next_cid += 1;
        self.w.insert(cid, worlds);
        self.comp_fields.insert(cid, Vec::new());
        Ok(cid)
    }

    /// Register a placeholder field with its own fresh component, one local
    /// world per alternative.  This is the standard way of loading an or-set
    /// field.  Returns the new component's id.
    pub fn add_placeholder(
        &mut self,
        field: FieldId,
        alternatives: Vec<(Value, f64)>,
    ) -> Result<Cid> {
        let worlds: Vec<WorldEntry> = alternatives
            .iter()
            .enumerate()
            .map(|(i, (_, p))| WorldEntry { lwid: i, prob: *p })
            .collect();
        let cid = self.create_component(worlds)?;
        let values: BTreeMap<Lwid, Value> = alternatives
            .into_iter()
            .enumerate()
            .map(|(i, (v, _))| (i, v))
            .collect();
        self.attach_placeholder(field, cid, values)?;
        Ok(cid)
    }

    /// Register a placeholder inside an existing component, giving its value
    /// for (a subset of) the component's local worlds.  Local worlds without
    /// a value encode the absence of the placeholder's tuple in those worlds.
    pub fn add_placeholder_in_component(
        &mut self,
        field: FieldId,
        cid: Cid,
        values: BTreeMap<Lwid, Value>,
    ) -> Result<()> {
        if !self.w.contains_key(&cid) {
            return Err(UwsdtError::UnknownComponent(cid));
        }
        self.attach_placeholder(field, cid, values)
    }

    fn attach_placeholder(
        &mut self,
        field: FieldId,
        cid: Cid,
        values: BTreeMap<Lwid, Value>,
    ) -> Result<()> {
        let relation = field.relation.to_string();
        let template = self.template(&relation)?;
        let row = template
            .rows()
            .get(field.tuple.0)
            .ok_or_else(|| UwsdtError::invalid(format!("tuple {} out of range", field.tuple)))?;
        let pos = template.schema().position_of(field.attr.as_ref())?;
        if !row[pos].is_unknown() {
            return Err(UwsdtError::invalid(format!(
                "template field {field} is not a `?` placeholder"
            )));
        }
        if self.f.contains_key(&field) {
            return Err(UwsdtError::invalid(format!(
                "placeholder {field} already registered"
            )));
        }
        let lwids: BTreeSet<Lwid> = self.w[&cid].iter().map(|w| w.lwid).collect();
        if values.keys().any(|l| !lwids.contains(l)) {
            return Err(UwsdtError::invalid(format!(
                "placeholder {field} refers to a local world not in W"
            )));
        }
        self.f.insert(field.clone(), cid);
        self.c.insert(field.clone(), values);
        self.comp_fields.entry(cid).or_default().push(field);
        Ok(())
    }

    /// Drop a placeholder field entirely (used by projections).
    pub(crate) fn remove_placeholder(&mut self, field: &FieldId) {
        if let Some(cid) = self.f.remove(field) {
            self.c.remove(field);
            if let Some(fields) = self.comp_fields.get_mut(&cid) {
                fields.retain(|f| f != field);
                if fields.is_empty() {
                    self.comp_fields.remove(&cid);
                    self.w.remove(&cid);
                }
            }
        }
    }

    /// The component of a placeholder field, if it is one.
    pub fn component_of(&self, field: &FieldId) -> Option<Cid> {
        self.f.get(field).copied()
    }

    /// The possible values of a placeholder field (per local world).
    pub fn placeholder_values(&self, field: &FieldId) -> Option<&BTreeMap<Lwid, Value>> {
        self.c.get(field)
    }

    /// The local worlds of a component.
    pub fn component_worlds(&self, cid: Cid) -> Result<&[WorldEntry]> {
        self.w
            .get(&cid)
            .map(Vec::as_slice)
            .ok_or(UwsdtError::UnknownComponent(cid))
    }

    /// The placeholder fields defined by a component.
    pub fn component_fields(&self, cid: Cid) -> &[FieldId] {
        self.comp_fields.get(&cid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All component identifiers currently in use.
    pub fn component_ids(&self) -> Vec<Cid> {
        let mut ids: Vec<Cid> = self.w.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Whether the field is a placeholder (uncertain) field.
    pub fn is_placeholder(&self, field: &FieldId) -> bool {
        self.f.contains_key(field)
    }

    /// Iterate over all placeholder fields of one relation.
    pub fn placeholders_of(&self, relation: &str) -> Vec<FieldId> {
        let mut out: Vec<FieldId> = self
            .f
            .keys()
            .filter(|fid| fid.in_relation(relation))
            .cloned()
            .collect();
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Presence conditions
    // ------------------------------------------------------------------

    /// Add a presence condition to a tuple (conjunctive with existing ones).
    pub fn add_presence(
        &mut self,
        relation: &str,
        tuple: usize,
        cid: Cid,
        lwids: BTreeSet<Lwid>,
    ) -> Result<()> {
        if !self.w.contains_key(&cid) {
            return Err(UwsdtError::UnknownComponent(cid));
        }
        let key = (relation.to_string(), tuple);
        let conditions = self.presence.entry(key).or_default();
        match conditions.iter_mut().find(|p| p.cid == cid) {
            Some(p) => p.lwids = p.lwids.intersection(&lwids).copied().collect(),
            None => conditions.push(PresenceCondition { cid, lwids }),
        }
        Ok(())
    }

    /// The presence conditions of a tuple.
    pub fn presence_of(&self, relation: &str, tuple: usize) -> &[PresenceCondition] {
        self.presence
            .get(&(relation.to_string(), tuple))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Overwrite (or clear) the presence conditions of a tuple.
    pub fn set_presence(
        &mut self,
        relation: &str,
        tuple: usize,
        conditions: Vec<PresenceCondition>,
    ) {
        if conditions.is_empty() {
            self.presence.remove(&(relation.to_string(), tuple));
        } else {
            self.presence
                .insert((relation.to_string(), tuple), conditions);
        }
    }

    // ------------------------------------------------------------------
    // Component composition
    // ------------------------------------------------------------------

    /// Compose two or more components into one (product of their local
    /// worlds, probabilities multiplied).  Placeholders and presence
    /// conditions referring to the old components are rewritten to the new
    /// one.  Returns the new component id (composing a single component is a
    /// no-op returning it unchanged).
    pub fn compose(&mut self, cids: &[Cid]) -> Result<Cid> {
        let mut distinct: Vec<Cid> = cids.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        match distinct.len() {
            0 => {
                return Err(UwsdtError::invalid(
                    "compose requires at least one component",
                ))
            }
            1 => return Ok(distinct[0]),
            _ => {}
        }
        for &cid in &distinct {
            if !self.w.contains_key(&cid) {
                return Err(UwsdtError::UnknownComponent(cid));
            }
        }
        // Build the product of the local-world lists.  A combined local world
        // remembers which original lwid it came from for each source cid.
        let mut combos: Vec<(Vec<(Cid, Lwid)>, f64)> = vec![(Vec::new(), 1.0)];
        for &cid in &distinct {
            let mut next = Vec::with_capacity(combos.len() * self.w[&cid].len());
            for (combo, p) in &combos {
                for entry in &self.w[&cid] {
                    let mut combo = combo.clone();
                    combo.push((cid, entry.lwid));
                    next.push((combo, p * entry.prob));
                }
            }
            combos = next;
        }
        let new_worlds: Vec<WorldEntry> = combos
            .iter()
            .enumerate()
            .map(|(i, (_, p))| WorldEntry { lwid: i, prob: *p })
            .collect();
        let new_cid = self.create_component(new_worlds)?;
        // Map (source cid, source lwid) → the new lwids containing it.
        let mut expansion: HashMap<(Cid, Lwid), BTreeSet<Lwid>> = HashMap::new();
        for (new_lwid, (combo, _)) in combos.iter().enumerate() {
            for &(cid, lwid) in combo {
                expansion.entry((cid, lwid)).or_default().insert(new_lwid);
            }
        }
        // Move placeholders.
        for &cid in &distinct {
            let fields = self.comp_fields.remove(&cid).unwrap_or_default();
            for field in fields {
                let old_values = self.c.remove(&field).unwrap_or_default();
                let mut new_values: BTreeMap<Lwid, Value> = BTreeMap::new();
                for (old_lwid, value) in old_values {
                    if let Some(new_lwids) = expansion.get(&(cid, old_lwid)) {
                        for &nl in new_lwids {
                            new_values.insert(nl, value.clone());
                        }
                    }
                }
                self.f.insert(field.clone(), new_cid);
                self.c.insert(field.clone(), new_values);
                self.comp_fields.entry(new_cid).or_default().push(field);
            }
            self.w.remove(&cid);
        }
        // Rewrite presence conditions.
        for conditions in self.presence.values_mut() {
            let mut rewritten: Vec<PresenceCondition> = Vec::new();
            for cond in conditions.drain(..) {
                if distinct.contains(&cond.cid) {
                    let mut lwids = BTreeSet::new();
                    for lwid in &cond.lwids {
                        if let Some(new_lwids) = expansion.get(&(cond.cid, *lwid)) {
                            lwids.extend(new_lwids.iter().copied());
                        }
                    }
                    match rewritten.iter_mut().find(|p| p.cid == new_cid) {
                        Some(p) => p.lwids = p.lwids.intersection(&lwids).copied().collect(),
                        None => rewritten.push(PresenceCondition {
                            cid: new_cid,
                            lwids,
                        }),
                    }
                } else {
                    rewritten.push(cond);
                }
            }
            *conditions = rewritten;
        }
        Ok(new_cid)
    }

    /// Remove local worlds from a component (used by the chase), dropping the
    /// corresponding `C` entries and renormalizing the remaining
    /// probabilities.  Fails with [`UwsdtError::Inconsistent`] if all local
    /// worlds would be removed.
    pub fn remove_local_worlds(&mut self, cid: Cid, remove: &BTreeSet<Lwid>) -> Result<()> {
        let worlds = self
            .w
            .get_mut(&cid)
            .ok_or(UwsdtError::UnknownComponent(cid))?;
        worlds.retain(|w| !remove.contains(&w.lwid));
        if worlds.is_empty() {
            return Err(UwsdtError::Inconsistent);
        }
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        if total <= 0.0 {
            return Err(UwsdtError::Inconsistent);
        }
        for w in worlds.iter_mut() {
            w.prob /= total;
        }
        for field in self.comp_fields.get(&cid).cloned().unwrap_or_default() {
            if let Some(values) = self.c.get_mut(&field) {
                values.retain(|lwid, _| !remove.contains(lwid));
            }
        }
        for conditions in self.presence.values_mut() {
            for cond in conditions.iter_mut() {
                if cond.cid == cid {
                    cond.lwids.retain(|l| !remove.contains(l));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Normalization support (see the `normalize` module)
    // ------------------------------------------------------------------

    /// Iterate over every presence condition together with the tuple it
    /// constrains.
    pub fn all_presence(&self) -> impl Iterator<Item = (&str, usize, &PresenceCondition)> {
        self.presence.iter().flat_map(|((rel, tuple), conditions)| {
            conditions.iter().map(move |c| (rel.as_str(), *tuple, c))
        })
    }

    /// Mutable access to the local worlds of a component (normalization
    /// rewrites probabilities in place without renormalizing).
    pub(crate) fn worlds_mut(&mut self, cid: Cid) -> Result<&mut Vec<WorldEntry>> {
        self.w
            .get_mut(&cid)
            .ok_or(UwsdtError::UnknownComponent(cid))
    }

    /// Mutable access to the per-local-world values of a placeholder.
    pub(crate) fn values_map_mut(&mut self, field: &FieldId) -> Option<&mut BTreeMap<Lwid, Value>> {
        self.c.get_mut(field)
    }

    /// Mutable access to every presence condition.
    pub(crate) fn presence_conditions_mut(
        &mut self,
    ) -> impl Iterator<Item = &mut PresenceCondition> {
        self.presence.values_mut().flatten()
    }

    /// Overwrite a template field with a concrete value (used when a
    /// placeholder turns out to be certain and is folded back into the
    /// template).
    pub(crate) fn set_template_value(&mut self, field: &FieldId, value: Value) -> Result<()> {
        let relation = field.relation.to_string();
        let tuple = field.tuple.0;
        let attr = field.attr.to_string();
        let template = self.template_mut(&relation)?;
        let pos = template.schema().position_of(&attr)?;
        let row = template
            .rows_mut()
            .get_mut(tuple)
            .ok_or_else(|| UwsdtError::invalid(format!("tuple {tuple} out of range")))?;
        row.set(pos, value);
        Ok(())
    }

    /// Drop a component that neither defines a placeholder nor appears in any
    /// presence condition; fails otherwise (removing it would change the
    /// represented world-set).
    pub(crate) fn drop_component(&mut self, cid: Cid) -> Result<()> {
        if self
            .comp_fields
            .get(&cid)
            .map(|f| !f.is_empty())
            .unwrap_or(false)
        {
            return Err(UwsdtError::invalid(format!(
                "component {cid} still defines placeholders"
            )));
        }
        if self.presence.values().flatten().any(|c| c.cid == cid) {
            return Err(UwsdtError::invalid(format!(
                "component {cid} is still referenced by a presence condition"
            )));
        }
        self.comp_fields.remove(&cid);
        self.w.remove(&cid);
        Ok(())
    }

    // ------------------------------------------------------------------
    // World semantics
    // ------------------------------------------------------------------

    /// The number of local-world combinations (saturating).
    pub fn world_count(&self) -> u128 {
        self.w
            .values()
            .fold(1u128, |acc, w| acc.saturating_mul(w.len() as u128))
    }

    /// Enumerate the possible worlds with probabilities (for tests, oracles
    /// and small examples).
    pub fn enumerate_worlds(&self, limit: u128) -> Result<Vec<(Database, f64)>> {
        let count = self.world_count();
        if count > limit {
            return Err(UwsdtError::TooManyWorlds {
                worlds: count,
                limit,
            });
        }
        let cids = self.component_ids();
        let mut choice: Vec<usize> = vec![0; cids.len()];
        let mut out = Vec::new();
        loop {
            let mut prob = 1.0;
            let mut chosen: HashMap<Cid, Lwid> = HashMap::with_capacity(cids.len());
            for (k, &cid) in cids.iter().enumerate() {
                let entry = &self.w[&cid][choice[k]];
                prob *= entry.prob;
                chosen.insert(cid, entry.lwid);
            }
            out.push((self.world_for(&chosen)?, prob));
            let mut k = 0;
            loop {
                if k == cids.len() {
                    return Ok(out);
                }
                choice[k] += 1;
                if choice[k] < self.w[&cids[k]].len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
            if cids.is_empty() {
                return Ok(out);
            }
        }
    }

    /// Build the world selected by the given per-component local worlds.
    pub fn world_for(&self, chosen: &HashMap<Cid, Lwid>) -> Result<Database> {
        let mut db = Database::new();
        for (name, template) in &self.templates {
            let mut rel = Relation::new(template.schema().clone());
            'tuples: for (t, row) in template.rows().iter().enumerate() {
                // Presence conditions.
                for cond in self.presence_of(name, t) {
                    let lwid = chosen
                        .get(&cond.cid)
                        .ok_or_else(|| UwsdtError::invalid("world misses a component choice"))?;
                    if !cond.lwids.contains(lwid) {
                        continue 'tuples;
                    }
                }
                let mut values = Vec::with_capacity(row.arity());
                for (i, attr) in template.schema().attrs().iter().enumerate() {
                    if row[i].is_unknown() {
                        let field = FieldId::from_parts(
                            Arc::from(name.as_str()),
                            ws_core::TupleId(t),
                            attr.clone(),
                        );
                        let cid = self.f.get(&field).ok_or_else(|| {
                            UwsdtError::invalid(format!("placeholder {field} has no component"))
                        })?;
                        let lwid = chosen.get(cid).ok_or_else(|| {
                            UwsdtError::invalid("world misses a component choice")
                        })?;
                        match self.c.get(&field).and_then(|vals| vals.get(lwid)) {
                            Some(v) => values.push(v.clone()),
                            // No value for this local world: the tuple is
                            // absent from this world.
                            None => continue 'tuples,
                        }
                    } else {
                        values.push(row[i].clone());
                    }
                }
                let tuple = Tuple::new(values);
                if !rel.contains(&tuple) {
                    rel.push(tuple)?;
                }
            }
            db.insert_relation(rel);
        }
        Ok(db)
    }

    /// The possible values of one field of one tuple: the template value if
    /// certain, otherwise the distinct values recorded in `C`.
    pub fn possible_field_values(
        &self,
        relation: &str,
        tuple: usize,
        attr: &str,
    ) -> Result<Vec<Value>> {
        let template = self.template(relation)?;
        let pos = template.schema().position_of(attr)?;
        let row = template
            .rows()
            .get(tuple)
            .ok_or_else(|| UwsdtError::invalid(format!("tuple {tuple} out of range")))?;
        if !row[pos].is_unknown() {
            return Ok(vec![row[pos].clone()]);
        }
        let field = FieldId::new(relation, tuple, attr);
        let values = self
            .c
            .get(&field)
            .ok_or_else(|| UwsdtError::invalid(format!("placeholder {field} has no values")))?;
        let mut distinct: Vec<Value> = values.values().cloned().collect();
        distinct.sort();
        distinct.dedup();
        Ok(distinct)
    }

    /// Validate structural invariants: placeholders agree with templates,
    /// `C` entries refer to existing local worlds, probabilities sum to one.
    pub fn validate(&self) -> Result<()> {
        for (name, template) in &self.templates {
            for (t, row) in template.rows().iter().enumerate() {
                for (i, attr) in template.schema().attrs().iter().enumerate() {
                    let field = FieldId::new(name, t, attr.as_ref());
                    if row[i].is_unknown() {
                        if !self.f.contains_key(&field) {
                            return Err(UwsdtError::invalid(format!(
                                "placeholder {field} has no F entry"
                            )));
                        }
                    } else if self.f.contains_key(&field) {
                        return Err(UwsdtError::invalid(format!(
                            "certain field {field} has an F entry"
                        )));
                    }
                }
            }
        }
        for (field, cid) in &self.f {
            let worlds = self.w.get(cid).ok_or(UwsdtError::UnknownComponent(*cid))?;
            let lwids: BTreeSet<Lwid> = worlds.iter().map(|w| w.lwid).collect();
            let total: f64 = worlds.iter().map(|w| w.prob).sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(UwsdtError::invalid(format!(
                    "component {cid} probabilities sum to {total}"
                )));
            }
            let values = self.c.get(field).ok_or_else(|| {
                UwsdtError::invalid(format!("placeholder {field} has no C entries"))
            })?;
            if values.keys().any(|l| !lwids.contains(l)) {
                return Err(UwsdtError::invalid(format!(
                    "placeholder {field} refers to unknown local worlds"
                )));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshot surface (the persistence layer's codec boundary)
    // ------------------------------------------------------------------

    /// Flatten the whole UWSDT into a [`UwsdtSnapshot`]: every hash-map is
    /// rendered in a canonical sorted order so that encoding the same state
    /// twice produces identical bytes, while order-significant vectors
    /// (per-component field registration order, per-tuple presence-condition
    /// order) are preserved verbatim.
    pub fn to_snapshot(&self) -> UwsdtSnapshot {
        let templates: Vec<Relation> = self.templates.values().cloned().collect();
        let components: Vec<(Cid, Vec<WorldEntry>, Vec<FieldId>)> = self
            .component_ids()
            .into_iter()
            .map(|cid| {
                (
                    cid,
                    self.w[&cid].clone(),
                    self.component_fields(cid).to_vec(),
                )
            })
            .collect();
        let mut values: Vec<(FieldId, Vec<(Lwid, Value)>)> = self
            .c
            .iter()
            .map(|(f, vals)| {
                (
                    f.clone(),
                    vals.iter().map(|(l, v)| (*l, v.clone())).collect(),
                )
            })
            .collect();
        values.sort_by(|a, b| a.0.cmp(&b.0));
        let mut presence: Vec<(String, usize, Vec<PresenceCondition>)> = self
            .presence
            .iter()
            .map(|((rel, tuple), conds)| (rel.clone(), *tuple, conds.clone()))
            .collect();
        presence.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        UwsdtSnapshot {
            templates,
            components,
            values,
            presence,
            next_cid: self.next_cid,
        }
    }

    /// Rebuild a UWSDT from a snapshot, re-deriving the `F` index from the
    /// per-component field lists and validating the result, so a corrupted
    /// snapshot is rejected instead of silently accepted.
    pub fn from_snapshot(snapshot: UwsdtSnapshot) -> Result<Uwsdt> {
        let mut u = Uwsdt::new();
        for template in snapshot.templates {
            u.add_template(template)?;
        }
        let mut max_cid = 0;
        for (cid, worlds, fields) in snapshot.components {
            if u.w.insert(cid, worlds).is_some() {
                return Err(UwsdtError::invalid(format!(
                    "component {cid} appears twice in the snapshot"
                )));
            }
            for field in &fields {
                if u.f.insert(field.clone(), cid).is_some() {
                    return Err(UwsdtError::invalid(format!(
                        "placeholder {field} belongs to two components in the snapshot"
                    )));
                }
            }
            u.comp_fields.insert(cid, fields);
            max_cid = max_cid.max(cid + 1);
        }
        for (field, values) in snapshot.values {
            if !u.f.contains_key(&field) {
                return Err(UwsdtError::invalid(format!(
                    "snapshot carries C entries for unregistered placeholder {field}"
                )));
            }
            let count = values.len();
            let values: BTreeMap<Lwid, Value> = values.into_iter().collect();
            if values.len() != count {
                return Err(UwsdtError::invalid(format!(
                    "snapshot lists a local world twice among the C entries of {field}"
                )));
            }
            if u.c.insert(field.clone(), values).is_some() {
                return Err(UwsdtError::invalid(format!(
                    "placeholder {field} has two C-entry lists in the snapshot"
                )));
            }
        }
        for (relation, tuple, conditions) in snapshot.presence {
            for cond in &conditions {
                if !u.w.contains_key(&cond.cid) {
                    return Err(UwsdtError::UnknownComponent(cond.cid));
                }
            }
            if u.presence
                .insert((relation.clone(), tuple), conditions)
                .is_some()
            {
                return Err(UwsdtError::invalid(format!(
                    "tuple {relation}.{tuple} has two presence-condition lists in the snapshot"
                )));
            }
        }
        u.next_cid = snapshot.next_cid.max(max_cid);
        u.validate()?;
        Ok(u)
    }

    /// Total number of `C` entries (the `|C|` column of Figure 27).
    pub fn c_size(&self) -> usize {
        self.c.values().map(BTreeMap::len).sum()
    }

    /// Total number of `C` entries belonging to one relation.
    pub fn c_size_of(&self, relation: &str) -> usize {
        self.c
            .iter()
            .filter(|(fid, _)| fid.in_relation(relation))
            .map(|(_, v)| v.len())
            .sum()
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    fn sample() -> Uwsdt {
        crate::build::from_wsd(&ws_core::wsd::example_census_wsd()).unwrap()
    }

    #[test]
    fn snapshot_roundtrips_and_validates() {
        let uwsdt = sample();
        let snapshot = uwsdt.to_snapshot();
        let rebuilt = Uwsdt::from_snapshot(snapshot.clone()).unwrap();
        assert_eq!(rebuilt.to_snapshot(), snapshot);
        rebuilt.validate().unwrap();
        assert_eq!(rebuilt.world_count(), uwsdt.world_count());
    }

    #[test]
    fn duplicate_snapshot_entries_are_rejected() {
        let uwsdt = sample();
        let base = uwsdt.to_snapshot();

        // A component listed twice.
        let mut s = base.clone();
        let dup = s.components[0].clone();
        s.components.push(dup);
        assert!(Uwsdt::from_snapshot(s).is_err());

        // A C-entry list listed twice for the same placeholder.
        let mut s = base.clone();
        let dup = s.values[0].clone();
        s.values.push(dup);
        assert!(Uwsdt::from_snapshot(s).is_err());

        // The same local world listed twice inside one C-entry list.
        let mut s = base.clone();
        let dup_entry = s.values[0].1[0].clone();
        s.values[0].1.push(dup_entry);
        assert!(Uwsdt::from_snapshot(s).is_err());

        // A presence-condition list listed twice for the same tuple.
        let mut s = base.clone();
        s.presence.push(("R".to_string(), 0, Vec::new()));
        s.presence.push(("R".to_string(), 0, Vec::new()));
        assert!(Uwsdt::from_snapshot(s).is_err());

        // The untouched snapshot still reconstructs.
        assert!(Uwsdt::from_snapshot(base).is_ok());
    }
}
