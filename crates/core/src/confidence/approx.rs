//! (ε, δ)-approximate confidence on WSDs: Monte-Carlo over component local
//! worlds.
//!
//! The exact §6 algorithm ([`super::TupleLevelView`]) must first *compose*
//! every component that touches a tuple, which is exponential in the worst
//! case — unavoidable for exact answers, since tuple certainty on WSDs is
//! NP-hard.  This module trades exactness for a Karp–Luby-style Monte-Carlo
//! estimator that never composes anything: each trial samples one local
//! world per relevant component (components are independent, local worlds
//! within a component are mutually exclusive — sampling a world is therefore
//! a single independent draw per component) and checks tuple membership
//! directly.  Per trial that is linear in the number of relevant fields.
//!
//! **Guarantee.**  For confidence `p` and estimate `p̂` over `n` i.i.d.
//! trials, Hoeffding's inequality gives `Pr[|p̂ − p| > ε] ≤ 2·exp(−2nε²)`,
//! so running the [`hoeffding_samples`] `n = ⌈ln(2/δ) / (2ε²)⌉` trials makes
//! `p̂` an (ε, δ)-approximation: `|p̂ − p| ≤ ε` with probability at least
//! `1 − δ`.  The guarantee is *additive* and *per estimated tuple*; clients
//! that need it simultaneously for `m` tuples should pass `δ/m`.
//!
//! **Determinism.**  Trials are drawn in fixed-size blocks
//! ([`SAMPLE_BLOCK`]), each block seeded from `(seed, block index)` alone,
//! and per-block counts are summed in block order — the estimate is
//! bit-identical for every [`WorkerPool`] thread count, including serial.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use ws_relational::{Tuple, Value, WorkerPool};

// The Hoeffding sample planner and the block-seeded trial driver are shared
// with the U-relational estimator; they live in `ws_relational::approx` and
// are re-exported here so existing WSD call sites keep compiling unchanged.
pub use ws_relational::approx::{
    block_seed, hoeffding_samples, run_trial_blocks, ApproxConfig, MAX_SAMPLES, SAMPLE_BLOCK,
};

/// A prepared sampler for one relation of a WSD: for every relevant
/// component slot, the cumulative local-world distribution; for every live
/// tuple slot, where each of its fields lives.
struct RelationSampler<'a> {
    wsd: &'a Wsd,
    attrs: Vec<std::sync::Arc<str>>,
    /// The component slots any field of this relation lives in (sorted).
    slots: Vec<usize>,
    /// Per slot (aligned with `slots`): cumulative probabilities of the
    /// component's local worlds, for inverse-CDF sampling.
    cumulative: Vec<Vec<f64>>,
    /// Per live tuple: for every attribute, `(slot position in `slots`,
    /// column position inside that component)`.
    tuples: Vec<Vec<(usize, usize)>>,
}

impl<'a> RelationSampler<'a> {
    fn new(wsd: &'a Wsd, relation: &str) -> Result<Self> {
        let meta = wsd.meta(relation)?.clone();
        let mut slot_set: BTreeSet<usize> = BTreeSet::new();
        let mut tuples = Vec::new();
        for t in meta.live_tuples() {
            let mut fields = Vec::with_capacity(meta.attrs.len());
            for a in &meta.attrs {
                let field = FieldId::new(relation, t, a.as_ref());
                let slot = wsd.slot_of(&field)?;
                slot_set.insert(slot);
                let pos = wsd
                    .component(slot)?
                    .position(&field)
                    .ok_or_else(|| WsError::unknown_field(&field))?;
                fields.push((slot, pos));
            }
            tuples.push(fields);
        }
        let slots: Vec<usize> = slot_set.into_iter().collect();
        let slot_index: BTreeMap<usize, usize> =
            slots.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let tuples = tuples
            .into_iter()
            .map(|fields| {
                fields
                    .into_iter()
                    .map(|(slot, pos)| (slot_index[&slot], pos))
                    .collect()
            })
            .collect();
        let cumulative = slots
            .iter()
            .map(|&slot| {
                let mut acc = 0.0;
                wsd.component(slot)
                    .expect("slot exists")
                    .rows
                    .iter()
                    .map(|row| {
                        acc += row.prob;
                        acc
                    })
                    .collect()
            })
            .collect();
        Ok(RelationSampler {
            wsd,
            attrs: meta.attrs.clone(),
            slots,
            cumulative,
            tuples,
        })
    }

    /// Sample one local world per relevant component (one trial's world),
    /// writing the chosen row index of each slot into `choice`.
    fn sample_world(&self, rng: &mut StdRng, choice: &mut [usize]) {
        for (i, cumulative) in self.cumulative.iter().enumerate() {
            let draw: f64 = rng.gen();
            choice[i] = cumulative
                .partition_point(|&acc| acc <= draw)
                .min(cumulative.len() - 1);
        }
    }

    /// Whether the sampled world contains `target` in this relation.
    fn defines(&self, choice: &[usize], target: &Tuple) -> bool {
        self.tuples.iter().any(|fields| {
            fields.iter().enumerate().all(|(i, &(slot_idx, pos))| {
                let comp = self
                    .wsd
                    .component(self.slots[slot_idx])
                    .expect("slot exists");
                comp.rows[choice[slot_idx]].values[pos] == target[i]
            })
        })
    }

    /// The distinct (non-`⊥`) tuples the sampled world contains.
    fn realized(&self, choice: &[usize]) -> BTreeSet<Tuple> {
        let mut out = BTreeSet::new();
        'tuples: for fields in &self.tuples {
            let mut values = Vec::with_capacity(self.attrs.len());
            for &(slot_idx, pos) in fields {
                let comp = self
                    .wsd
                    .component(self.slots[slot_idx])
                    .expect("slot exists");
                let v = comp.rows[choice[slot_idx]].values[pos].clone();
                if matches!(v, Value::Bottom) {
                    continue 'tuples;
                }
                values.push(v);
            }
            out.insert(Tuple::new(values));
        }
        out
    }
}

/// (ε, δ)-approximate confidence of `tuple` in `relation`, serial.
pub fn conf(wsd: &Wsd, relation: &str, tuple: &Tuple, config: &ApproxConfig) -> Result<f64> {
    conf_with(wsd, relation, tuple, config, &WorkerPool::serial())
}

/// (ε, δ)-approximate confidence of `tuple` in `relation`, with Monte-Carlo
/// blocks fanned out on `pool`.  The estimate is identical for every thread
/// count.
pub fn conf_with(
    wsd: &Wsd,
    relation: &str,
    tuple: &Tuple,
    config: &ApproxConfig,
    pool: &WorkerPool,
) -> Result<f64> {
    let sampler = RelationSampler::new(wsd, relation)?;
    if tuple.arity() != sampler.attrs.len() {
        return Err(WsError::invalid(format!(
            "tuple arity {} does not match relation `{relation}` arity {}",
            tuple.arity(),
            sampler.attrs.len()
        )));
    }
    let samples = config.samples()?;
    let hits: usize = run_trial_blocks(pool, samples, config.seed, |rng, block_len| {
        let mut choice = vec![0usize; sampler.slots.len()];
        let mut hits = 0usize;
        for _ in 0..block_len {
            sampler.sample_world(rng, &mut choice);
            if sampler.defines(&choice, tuple) {
                hits += 1;
            }
        }
        hits
    })
    .into_iter()
    .sum();
    Ok(hits as f64 / samples as f64)
}

/// Sampling-based `possibleᵖ` (Fig. 19 without composition): every tuple
/// realized in at least one trial, with its estimated confidence.  Tuples of
/// confidence `≪ 1/n` may be missed entirely; each reported estimate carries
/// the per-tuple (ε, δ) guarantee.
pub fn possible_with_confidence(
    wsd: &Wsd,
    relation: &str,
    config: &ApproxConfig,
) -> Result<Vec<(Tuple, f64)>> {
    possible_with_confidence_with(wsd, relation, config, &WorkerPool::serial())
}

/// [`possible_with_confidence`] with Monte-Carlo blocks fanned out on
/// `pool`; per-block tuple counters are merged in block order, so the result
/// is identical for every thread count.
pub fn possible_with_confidence_with(
    wsd: &Wsd,
    relation: &str,
    config: &ApproxConfig,
    pool: &WorkerPool,
) -> Result<Vec<(Tuple, f64)>> {
    let sampler = RelationSampler::new(wsd, relation)?;
    let samples = config.samples()?;
    let counters = run_trial_blocks(pool, samples, config.seed, |rng, block_len| {
        let mut choice = vec![0usize; sampler.slots.len()];
        let mut counts: BTreeMap<Tuple, usize> = BTreeMap::new();
        for _ in 0..block_len {
            sampler.sample_world(rng, &mut choice);
            for tuple in sampler.realized(&choice) {
                *counts.entry(tuple).or_default() += 1;
            }
        }
        counts
    });
    let mut totals: BTreeMap<Tuple, usize> = BTreeMap::new();
    for counts in counters {
        for (tuple, n) in counts {
            *totals.entry(tuple).or_default() += n;
        }
    }
    Ok(totals
        .into_iter()
        .map(|(tuple, hits)| (tuple, hits as f64 / samples as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::{self, TupleLevelView};
    use crate::ops;
    use crate::wsd::example_census_wsd;
    use ws_relational::Value;

    #[test]
    fn hoeffding_bound_shapes() {
        // ε = 0.05, δ = 0.01 → ln(200)/0.005 ≈ 1060 trials.
        let n = hoeffding_samples(0.05, 0.01).unwrap();
        assert!((1000..1100).contains(&n), "n = {n}");
        // Tighter ε needs quadratically more trials.
        assert!(hoeffding_samples(0.025, 0.01).unwrap() > 4 * n - 8);
        // Out-of-range or absurd parameters are rejected.
        assert!(hoeffding_samples(0.0, 0.5).is_err());
        assert!(hoeffding_samples(0.5, 1.0).is_err());
        assert!(hoeffding_samples(1e-6, 0.01).is_err());
        assert!(ApproxConfig::new(2.0, 0.5).samples().is_err());
    }

    #[test]
    fn approximate_confidence_is_within_epsilon_of_exact() {
        let mut wsd = example_census_wsd();
        ops::project(&mut wsd, "R", "Q", &["S"]).unwrap();
        let view = TupleLevelView::new(&wsd, "Q").unwrap();
        let config = ApproxConfig::new(0.02, 0.01);
        for (tuple, exact) in view.possible_with_confidence().unwrap() {
            let estimate = conf(&wsd, "Q", &tuple, &config).unwrap();
            assert!(
                (estimate - exact).abs() <= config.epsilon,
                "conf({tuple}) ≈ {estimate}, exact {exact}"
            );
        }
    }

    #[test]
    fn estimates_are_identical_for_every_thread_count() {
        let wsd = example_census_wsd();
        let config = ApproxConfig::default();
        let tuple = confidence::possible(&wsd, "R").unwrap().rows()[0].clone();
        let serial = conf(&wsd, "R", &tuple, &config).unwrap();
        let serial_possible = possible_with_confidence(&wsd, "R", &config).unwrap();
        for threads in [2usize, 4, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(
                conf_with(&wsd, "R", &tuple, &config, &pool).unwrap(),
                serial,
                "thread count changed the estimate"
            );
            assert_eq!(
                possible_with_confidence_with(&wsd, "R", &config, &pool).unwrap(),
                serial_possible
            );
        }
    }

    #[test]
    fn sampled_possible_matches_exact_possible_on_the_running_example() {
        let mut wsd = example_census_wsd();
        ops::project(&mut wsd, "R", "Q", &["S"]).unwrap();
        let exact: BTreeMap<Tuple, f64> = confidence::possible_with_confidence(&wsd, "Q")
            .unwrap()
            .into_iter()
            .collect();
        let config = ApproxConfig::new(0.02, 0.01);
        let sampled = possible_with_confidence(&wsd, "Q", &config).unwrap();
        // All three answer tuples have confidence ≥ 0.6, so sampling finds
        // every one of them.
        assert_eq!(sampled.len(), exact.len());
        for (tuple, estimate) in &sampled {
            let exact = exact[tuple];
            assert!((estimate - exact).abs() <= config.epsilon);
        }
    }

    #[test]
    fn impossible_and_mismatched_tuples() {
        let wsd = example_census_wsd();
        let config = ApproxConfig::default();
        let absent = Tuple::from_iter([Value::int(999), Value::text("Nobody"), Value::int(1)]);
        assert_eq!(conf(&wsd, "R", &absent, &config).unwrap(), 0.0);
        assert!(conf(&wsd, "R", &Tuple::from_iter([1i64]), &config).is_err());
        assert!(conf(&wsd, "NOPE", &absent, &config).is_err());
    }
}
