//! # ws-core — world-set decompositions
//!
//! This crate implements the primary contribution of *"10^(10^6) Worlds and
//! Beyond: Efficient Representation and Processing of Incomplete
//! Information"* (Antova, Koch, Olteanu): **world-set decompositions**
//! (WSDs), a space-efficient and complete representation system for finite
//! sets of possible worlds, together with
//!
//! * the explicit [`worldset`] semantics (world-set relations, `inline` /
//!   `inline⁻¹`),
//! * relational algebra evaluated directly on WSDs ([`ops`], §4) — the
//!   physical operators of Figure 9, driven by the unified
//!   `optimize → execute` pipeline of `ws_relational::engine`; use
//!   [`ops::evaluate_query`] as the query entry point,
//! * confidence computation and the `possible` operator ([`confidence`], §6),
//! * normalization: invalid-tuple removal, compression and relational
//!   factorization ([`normalize`], §7),
//! * the chase for functional and equality-generating dependencies
//!   ([`chase`], §8), and
//! * template relations ([`wsdt`]), the stepping stone to the uniform
//!   UWSDT representation implemented in the companion crate `ws-uwsdt`.
//!
//! ## Quick example
//!
//! ```
//! use ws_relational::{Predicate, RaExpr, Tuple, Value};
//!
//! // The running census example of the paper (Figure 4).
//! let mut wsd = ws_core::wsd::example_census_wsd();
//! assert_eq!(wsd.world_count(), 24);
//!
//! // Evaluate π_S(σ_{M=1}(R)) on all worlds at once.
//! let query = RaExpr::rel("R")
//!     .select(Predicate::eq_const("M", 1i64))
//!     .project(vec!["S"]);
//! ws_core::ops::evaluate_query(&mut wsd, &query, "Q").unwrap();
//!
//! // Confidence of the answer tuple (185).
//! let c = ws_core::confidence::conf(&wsd, "Q", &Tuple::from_iter([Value::int(185)])).unwrap();
//! assert!(c > 0.0 && c < 1.0);
//! ```

pub mod chase;
pub mod component;
pub mod conditional;
pub mod confidence;
pub mod error;
pub mod field;
pub mod interval;
pub mod normalize;
pub mod ops;
pub mod worldset;
pub mod wsd;
pub mod wsdt;

pub use chase::{AttrComparison, Dependency, EqualityGeneratingDependency, FunctionalDependency};
pub use component::{Component, LocalWorld};
#[allow(deprecated)] // the deprecated shim stays importable during migration
pub use conditional::condition;
pub use conditional::{
    conditional_conf, conditional_query_conf, joint_probability, satisfaction_probability,
};
pub use confidence::TupleLevelView;
pub use error::{Result, WsError};
pub use field::{FieldId, TupleId};
pub use interval::{IntervalView, ProbInterval};
pub use ops::update::{apply_update, UpdateExpr};
pub use worldset::{WorldSet, WorldSetRelation};
pub use wsd::{RelationMeta, Wsd};
pub use wsdt::Wsdt;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::chase::{
        chase, AttrComparison, Dependency, EqualityGeneratingDependency, FunctionalDependency,
    };
    pub use crate::component::{Component, LocalWorld};
    #[allow(deprecated)] // the deprecated shim stays importable during migration
    pub use crate::conditional::condition;
    pub use crate::conditional::{
        conditional_conf, conditional_query_conf, joint_probability, satisfaction_probability,
    };
    pub use crate::confidence::{conf, possible, possible_with_confidence, TupleLevelView};
    pub use crate::error::{Result, WsError};
    pub use crate::field::{FieldId, TupleId};
    pub use crate::interval::{conf_bounds, IntervalView, ProbInterval};
    pub use crate::normalize::normalize;
    pub use crate::ops;
    pub use crate::ops::update::{apply_update, UpdateExpr};
    pub use crate::worldset::{WorldSet, WorldSetRelation};
    pub use crate::wsd::Wsd;
    pub use crate::wsdt::Wsdt;
}
