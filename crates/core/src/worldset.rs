//! Explicit world-sets and world-set relations.
//!
//! A *world-set* is a finite set of databases over a common schema (§2).  A
//! *world-set relation* stores each world as one wide tuple obtained by the
//! `inline` encoding (§3): the concatenation of all tuples of all relations,
//! padded with the `t⊥` tuple up to `|R|max` per relation.  These explicit
//! representations are exponential in general; they exist here as the
//! semantic ground truth against which WSDs are defined and tested, and as
//! the naive baseline of the benchmarks.

use crate::component::Component;
use crate::error::{Result, WsError};
use crate::field::{FieldId, TupleId};
use crate::wsd::Wsd;
use std::collections::BTreeMap;
use std::sync::Arc;
use ws_relational::{Database, Relation, Schema, Tuple, Value};

/// A finite set of possible worlds, each carrying a probability.
///
/// Non-probabilistic world-sets are modeled with uniform probabilities.
#[derive(Clone, Debug, Default)]
pub struct WorldSet {
    worlds: Vec<(Database, f64)>,
}

impl WorldSet {
    /// Create an empty world-set.
    pub fn new() -> Self {
        WorldSet::default()
    }

    /// Build a world-set from equally likely worlds.
    pub fn from_worlds(worlds: Vec<Database>) -> Self {
        let n = worlds.len().max(1) as f64;
        WorldSet::from_weighted_worlds(worlds.into_iter().map(|w| (w, 1.0 / n)).collect())
    }

    /// Build a world-set from weighted worlds, merging duplicate worlds and
    /// summing their probabilities.
    pub fn from_weighted_worlds(worlds: Vec<(Database, f64)>) -> Self {
        let mut merged: Vec<(Database, f64)> = Vec::new();
        for (db, p) in worlds {
            match merged.iter_mut().find(|(w, _)| w.world_eq(&db)) {
                Some((_, q)) => *q += p,
                None => merged.push((db, p)),
            }
        }
        WorldSet { worlds: merged }
    }

    /// Rebuild a world-set from an already-merged world list *without* the
    /// quadratic duplicate merge of [`WorldSet::from_weighted_worlds`].
    ///
    /// Used by the persistence codec, whose input is the verbatim
    /// [`WorldSet::worlds`] slice of a live world-set: re-merging would be
    /// wasted work and could reorder worlds, and the decoded state must be
    /// structurally identical to the encoded one.
    pub fn from_raw_worlds(worlds: Vec<(Database, f64)>) -> Self {
        WorldSet { worlds }
    }

    /// The worlds with their probabilities.
    pub fn worlds(&self) -> &[(Database, f64)] {
        &self.worlds
    }

    /// Number of distinct worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether the world-set is empty (inconsistent).
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Total probability mass (≈ 1 for a well-formed probabilistic world-set).
    pub fn total_probability(&self) -> f64 {
        self.worlds.iter().map(|(_, p)| p).sum()
    }

    /// Add one world with a probability.
    pub fn push(&mut self, world: Database, prob: f64) {
        match self.worlds.iter_mut().find(|(w, _)| w.world_eq(&world)) {
            Some((_, q)) => *q += prob,
            None => self.worlds.push((world, prob)),
        }
    }

    /// The probability of a world equal (as a set of relations of sets of
    /// tuples) to the given database.
    pub fn probability_of(&self, world: &Database) -> f64 {
        self.worlds
            .iter()
            .filter(|(w, _)| w.world_eq(world))
            .map(|(_, p)| p)
            .sum()
    }

    /// Whether the world-set contains a world equal to the given database.
    pub fn contains(&self, world: &Database) -> bool {
        self.worlds.iter().any(|(w, _)| w.world_eq(world))
    }

    /// Set-of-worlds equality, ignoring probabilities.
    pub fn same_worlds(&self, other: &WorldSet) -> bool {
        self.len() == other.len() && self.worlds.iter().all(|(w, _)| other.contains(w))
    }

    /// Distribution equality: same worlds with (approximately) the same
    /// probabilities.
    pub fn same_distribution(&self, other: &WorldSet, epsilon: f64) -> bool {
        self.len() == other.len()
            && self
                .worlds
                .iter()
                .all(|(w, p)| (other.probability_of(w) - p).abs() <= epsilon)
    }

    /// Apply a per-world transformation, keeping probabilities.
    pub fn map_worlds<F>(&self, mut f: F) -> Result<WorldSet>
    where
        F: FnMut(&Database) -> Result<Database>,
    {
        let mut out = Vec::with_capacity(self.worlds.len());
        for (w, p) in &self.worlds {
            out.push((f(w)?, *p));
        }
        Ok(WorldSet::from_weighted_worlds(out))
    }

    /// Keep only the worlds satisfying a predicate, renormalizing the
    /// probabilities of the survivors (conditioning).  Errors with
    /// [`WsError::Inconsistent`] if no world survives.
    pub fn filter_worlds<F>(&self, mut keep: F) -> Result<WorldSet>
    where
        F: FnMut(&Database) -> bool,
    {
        let surviving: Vec<(Database, f64)> = self
            .worlds
            .iter()
            .filter(|(w, _)| keep(w))
            .cloned()
            .collect();
        let mass: f64 = surviving.iter().map(|(_, p)| p).sum();
        if surviving.is_empty() || mass <= 0.0 {
            return Err(WsError::Inconsistent);
        }
        Ok(WorldSet::from_weighted_worlds(
            surviving.into_iter().map(|(w, p)| (w, p / mass)).collect(),
        ))
    }

    /// `|R|max` for every relation name appearing in any world.
    pub fn max_cardinalities(&self) -> BTreeMap<String, usize> {
        let mut out: BTreeMap<String, usize> = BTreeMap::new();
        for (db, _) in &self.worlds {
            for (name, rel) in db.iter() {
                let e = out.entry(name.to_string()).or_default();
                *e = (*e).max(rel.len());
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The explicit world-enumeration backend of the unified query engine: every
// physical operator is applied to each world separately — infeasible at
// scale (which is the paper's point) but the semantic ground truth the
// decomposed representations are validated against.
// ---------------------------------------------------------------------------

impl ws_relational::SchemaCatalog for WorldSet {
    fn schema_of(&self, relation: &str) -> ws_relational::Result<Schema> {
        let Some((db, _)) = self.worlds().first() else {
            return Err(ws_relational::RelationalError::UnknownRelation(
                relation.to_string(),
            ));
        };
        db.relation(relation)
            .map(|r| r.schema().clone())
            .map_err(|_| ws_relational::RelationalError::UnknownRelation(relation.to_string()))
    }

    fn contains_relation(&self, relation: &str) -> bool {
        self.worlds()
            .first()
            .map(|(db, _)| db.contains_relation(relation))
            .unwrap_or(false)
    }
}

/// Apply one already-planned operator expression to every world in place,
/// storing the (set-semantics) result as `out` in each.  Worlds are mutated
/// rather than rebuilt — a query plan applies many operators, and one
/// world-set copy per operator (let alone per scratch drop) would dominate
/// the oracle's cost.
fn apply_per_world(worlds: &mut WorldSet, expr: &ws_relational::RaExpr, out: &str) -> Result<()> {
    for (db, _) in &mut worlds.worlds {
        let mut result = ws_relational::evaluate_set(db, expr)?;
        let renamed = result.schema().renamed_relation(out);
        *result.schema_mut() = renamed;
        db.insert_relation(result);
    }
    Ok(())
}

impl ws_relational::QueryBackend for WorldSet {
    type Error = WsError;

    fn materialize_base(&mut self, name: &str, out: &str) -> Result<()> {
        apply_per_world(self, &ws_relational::RaExpr::rel(name), out)
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &ws_relational::Predicate,
        out: &str,
        _ctx: &mut ws_relational::ExecContext,
    ) -> Result<()> {
        apply_per_world(
            self,
            &ws_relational::RaExpr::rel(input).select(pred.clone()),
            out,
        )
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        _ctx: &mut ws_relational::ExecContext,
    ) -> Result<()> {
        apply_per_world(
            self,
            &ws_relational::RaExpr::rel(input).project(attrs.to_vec()),
            out,
        )
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        _ctx: &mut ws_relational::ExecContext,
    ) -> Result<()> {
        apply_per_world(
            self,
            &ws_relational::RaExpr::rel(left).product(ws_relational::RaExpr::rel(right)),
            out,
        )
    }

    fn apply_union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        apply_per_world(
            self,
            &ws_relational::RaExpr::rel(left).union(ws_relational::RaExpr::rel(right)),
            out,
        )
    }

    fn apply_difference(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        apply_per_world(
            self,
            &ws_relational::RaExpr::rel(left).difference(ws_relational::RaExpr::rel(right)),
            out,
        )
    }

    fn apply_rename(&mut self, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
        apply_per_world(
            self,
            &ws_relational::RaExpr::rel(input).rename(from, to),
            out,
        )
    }

    fn drop_scratch(&mut self, name: &str) {
        for (db, _) in &mut self.worlds {
            db.remove_relation(name);
        }
    }
}

// ---------------------------------------------------------------------------
// The explicit world-enumeration backend of the update language: every verb
// is applied to each world separately — the literal reading of the "apply
// the update in every possible world" contract, and therefore the semantic
// ground truth the decomposed WriteBackend implementations are tested
// against.
// ---------------------------------------------------------------------------

impl ws_relational::WriteBackend for WorldSet {
    fn insert_certain(&mut self, relation: &str, tuple: &Tuple) -> Result<()> {
        let updated = self.map_worlds(|db| {
            let mut db = db.clone();
            db.insert_certain(relation, tuple)?;
            Ok(db)
        })?;
        *self = updated;
        Ok(())
    }

    fn insert_possible(&mut self, relation: &str, tuple: &Tuple, prob: f64) -> Result<()> {
        ws_relational::engine::check_probability(prob).map_err(WsError::from)?;
        let mut split: Vec<(Database, f64)> = Vec::with_capacity(self.worlds.len() * 2);
        for (db, p) in &self.worlds {
            ws_relational::engine::check_insertable(db.relation(relation)?.schema(), tuple)
                .map_err(WsError::from)?;
            if prob < 1.0 {
                split.push((db.clone(), p * (1.0 - prob)));
            }
            if prob > 0.0 {
                let mut with = db.clone();
                with.relation_mut(relation)?.insert(tuple.clone())?;
                split.push((with, p * prob));
            }
        }
        *self = WorldSet::from_weighted_worlds(split);
        Ok(())
    }

    fn delete_where(&mut self, relation: &str, pred: &ws_relational::Predicate) -> Result<()> {
        let updated = self.map_worlds(|db| {
            let mut db = db.clone();
            db.delete_where(relation, pred)?;
            Ok(db)
        })?;
        *self = updated;
        Ok(())
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &ws_relational::Predicate,
        assignments: &[(String, Value)],
    ) -> Result<()> {
        let updated = self.map_worlds(|db| {
            let mut db = db.clone();
            db.modify_where(relation, pred, assignments)?;
            Ok(db)
        })?;
        *self = updated;
        Ok(())
    }

    fn apply_condition(&mut self, constraints: &[ws_relational::Dependency]) -> Result<f64> {
        // One pass: decide each world's fate and accumulate the surviving
        // mass together (FD satisfaction is quadratic in a world's rows, so
        // re-checking inside a second filtering pass would double the
        // dominant cost of conditioning the explicit representation).
        let total = self.total_probability();
        let mut surviving: Vec<(Database, f64)> = Vec::with_capacity(self.worlds.len());
        let mut mass = 0.0;
        for (db, p) in &self.worlds {
            let mut satisfied = true;
            for dep in constraints {
                match ws_relational::world_satisfies(db, dep) {
                    Ok(true) => {}
                    Ok(false) => {
                        satisfied = false;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if satisfied {
                surviving.push((db.clone(), *p));
                mass += p;
            }
        }
        if surviving.is_empty() || mass <= 0.0 {
            return Err(WsError::Inconsistent);
        }
        for (_, p) in surviving.iter_mut() {
            *p /= mass;
        }
        *self = WorldSet::from_weighted_worlds(surviving);
        Ok(if total > 0.0 { mass / total } else { 0.0 })
    }
}

/// A world-set relation: the explicit inlined encoding of a world-set.
#[derive(Clone, Debug)]
pub struct WorldSetRelation {
    /// Column identities `R.t.A` (the schema of the world-set relation).
    pub columns: Vec<FieldId>,
    /// One row per world, with the world's probability.
    pub rows: Vec<(Tuple, f64)>,
    /// The attribute lists of the encoded relations, by name.
    pub relation_attrs: BTreeMap<String, Vec<Arc<str>>>,
}

impl WorldSetRelation {
    /// The `inline` encoding of a world-set (§3).
    ///
    /// Tuples of a relation are concatenated in their stored order and padded
    /// with `t⊥` tuples up to `|R|max`.  All worlds must share the same
    /// relation names and schemas.
    pub fn from_world_set(ws: &WorldSet) -> Result<Self> {
        if ws.is_empty() {
            return Err(WsError::invalid(
                "cannot inline an empty world-set (no schema to derive)",
            ));
        }
        let max_cards = ws.max_cardinalities();
        // Derive the per-relation attribute lists from the first world.
        let first = &ws.worlds()[0].0;
        let mut relation_attrs: BTreeMap<String, Vec<Arc<str>>> = BTreeMap::new();
        for (name, rel) in first.iter() {
            relation_attrs.insert(name.to_string(), rel.schema().attrs().to_vec());
        }
        let mut columns = Vec::new();
        for (name, attrs) in &relation_attrs {
            let count = *max_cards.get(name).unwrap_or(&0);
            for t in 0..count {
                for a in attrs {
                    columns.push(FieldId::from_parts(
                        Arc::from(name.as_str()),
                        TupleId(t),
                        a.clone(),
                    ));
                }
            }
        }
        let mut rows = Vec::with_capacity(ws.len());
        for (db, p) in ws.worlds() {
            let mut values = Vec::with_capacity(columns.len());
            for (name, attrs) in &relation_attrs {
                let rel = db.relation(name)?;
                if rel.schema().attrs() != attrs.as_slice() {
                    return Err(WsError::invalid(format!(
                        "worlds disagree on the schema of `{name}`"
                    )));
                }
                let count = *max_cards.get(name).unwrap_or(&0);
                for t in 0..count {
                    match rel.rows().get(t) {
                        Some(tuple) => values.extend(tuple.values().iter().cloned()),
                        None => values.extend(std::iter::repeat(Value::Bottom).take(attrs.len())),
                    }
                }
            }
            rows.push((Tuple::new(values), *p));
        }
        Ok(WorldSetRelation {
            columns,
            rows,
            relation_attrs,
        })
    }

    /// Number of worlds (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the world-set relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The arity of the world-set relation (total number of fields).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The `inline⁻¹` decoding (§3): rebuild the world-set.
    pub fn to_world_set(&self) -> Result<WorldSet> {
        let mut worlds = Vec::with_capacity(self.rows.len());
        for (row, p) in &self.rows {
            worlds.push((self.decode_world(row)?, *p));
        }
        Ok(WorldSet::from_weighted_worlds(worlds))
    }

    /// Decode a single inlined row into a database, dropping `t⊥` tuples.
    pub fn decode_world(&self, row: &Tuple) -> Result<Database> {
        let mut db = Database::new();
        for (name, attrs) in &self.relation_attrs {
            let schema = Schema::from_parts(Arc::from(name.as_str()), attrs.clone());
            let mut rel = Relation::new(schema);
            // Collect the per-tuple values from this relation's columns.
            let mut per_tuple: BTreeMap<usize, Vec<Value>> = BTreeMap::new();
            for (pos, col) in self.columns.iter().enumerate() {
                if col.in_relation(name) {
                    per_tuple
                        .entry(col.tuple.0)
                        .or_default()
                        .push(row[pos].clone());
                }
            }
            for (_, values) in per_tuple {
                let tuple = Tuple::new(values);
                if !tuple.has_bottom() && !rel.contains(&tuple) {
                    rel.push(tuple)?;
                }
            }
            db.insert_relation(rel);
        }
        Ok(db)
    }

    /// View the world-set relation as a trivial 1-WSD: a single component
    /// over every field, with one local world per world (Proposition 1).
    pub fn to_1wsd(&self) -> Result<Wsd> {
        let mut wsd = Wsd::new();
        let max_per_rel: BTreeMap<&str, usize> = self
            .columns
            .iter()
            .map(|c| (c.relation.as_ref(), c.tuple.0 + 1))
            .fold(BTreeMap::new(), |mut m, (r, t)| {
                let e = m.entry(r).or_default();
                *e = (*e).max(t);
                m
            });
        for (name, attrs) in &self.relation_attrs {
            let attr_names: Vec<&str> = attrs.iter().map(|a| a.as_ref()).collect();
            wsd.register_relation(
                name,
                &attr_names,
                *max_per_rel.get(name.as_str()).unwrap_or(&0),
            )?;
        }
        let mut comp = Component::new(self.columns.clone());
        for (row, p) in &self.rows {
            comp.push_row(row.values().to_vec(), *p)?;
        }
        wsd.add_component(comp)?;
        Ok(wsd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsd::example_census_wsd;

    fn small_world(values: &[(i64, i64)]) -> Database {
        let mut rel = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for (a, b) in values {
            rel.push_values([*a, *b]).unwrap();
        }
        let mut db = Database::new();
        db.insert_relation(rel);
        db
    }

    #[test]
    fn world_set_merging_and_probabilities() {
        let w1 = small_world(&[(1, 2)]);
        let w2 = small_world(&[(1, 2)]);
        let w3 = small_world(&[(3, 4)]);
        let ws = WorldSet::from_weighted_worlds(vec![(w1, 0.25), (w2, 0.25), (w3, 0.5)]);
        assert_eq!(ws.len(), 2);
        assert!((ws.total_probability() - 1.0).abs() < 1e-9);
        assert!((ws.probability_of(&small_world(&[(1, 2)])) - 0.5).abs() < 1e-9);
        assert!(ws.contains(&small_world(&[(3, 4)])));
        assert!(!ws.contains(&small_world(&[(9, 9)])));
        assert!(!ws.is_empty());
    }

    #[test]
    fn uniform_world_set_and_push() {
        let mut ws = WorldSet::from_worlds(vec![small_world(&[(1, 1)]), small_world(&[(2, 2)])]);
        assert!((ws.probability_of(&small_world(&[(1, 1)])) - 0.5).abs() < 1e-9);
        ws.push(small_world(&[(1, 1)]), 0.5);
        assert_eq!(ws.len(), 2);
        assert!((ws.probability_of(&small_world(&[(1, 1)])) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn filter_worlds_conditions_and_detects_inconsistency() {
        let ws = WorldSet::from_weighted_worlds(vec![
            (small_world(&[(1, 2)]), 0.3),
            (small_world(&[(3, 4)]), 0.7),
        ]);
        let filtered = ws
            .filter_worlds(|db| {
                db.relation("R")
                    .unwrap()
                    .contains(&Tuple::from_iter([3i64, 4]))
            })
            .unwrap();
        assert_eq!(filtered.len(), 1);
        assert!((filtered.total_probability() - 1.0).abs() < 1e-9);
        assert!(ws.filter_worlds(|_| false).is_err());
    }

    #[test]
    fn map_worlds_preserves_probabilities() {
        let ws = WorldSet::from_weighted_worlds(vec![
            (small_world(&[(1, 2)]), 0.3),
            (small_world(&[(3, 4)]), 0.7),
        ]);
        let mapped = ws
            .map_worlds(|db| {
                let mut db = db.clone();
                db.remove_relation("R");
                Ok(db)
            })
            .unwrap();
        // Both worlds become the empty database and merge.
        assert_eq!(mapped.len(), 1);
        assert!((mapped.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inline_round_trip_on_equal_sized_worlds() {
        let wsd = example_census_wsd();
        let ws = wsd.rep().unwrap();
        let wsr = WorldSetRelation::from_world_set(&ws).unwrap();
        assert_eq!(wsr.len(), ws.len());
        assert_eq!(wsr.arity(), 6); // 2 tuples × 3 attributes
        let back = wsr.to_world_set().unwrap();
        assert!(ws.same_worlds(&back));
        assert!(ws.same_distribution(&back, 1e-9));
    }

    #[test]
    fn inline_round_trip_on_worlds_of_different_sizes() {
        // One world has two tuples, the other a single tuple (Fig. 15 style).
        let ws = WorldSet::from_weighted_worlds(vec![
            (small_world(&[(1, 2), (3, 4)]), 0.5),
            (small_world(&[(5, 6)]), 0.5),
        ]);
        let wsr = WorldSetRelation::from_world_set(&ws).unwrap();
        assert_eq!(wsr.arity(), 4);
        // Padding of the smaller world uses ⊥.
        assert!(wsr.rows.iter().any(|(row, _)| row.has_bottom()));
        let back = wsr.to_world_set().unwrap();
        assert!(ws.same_worlds(&back));
        assert_eq!(ws.max_cardinalities().get("R"), Some(&2));
    }

    #[test]
    fn one_wsd_represents_the_same_world_set() {
        let wsd = example_census_wsd();
        let ws = wsd.rep().unwrap();
        let wsr = WorldSetRelation::from_world_set(&ws).unwrap();
        let one = wsr.to_1wsd().unwrap();
        one.validate().unwrap();
        assert_eq!(one.component_count(), 1);
        let back = one.rep().unwrap();
        assert!(ws.same_worlds(&back));
        assert!(ws.same_distribution(&back, 1e-9));
    }

    #[test]
    fn empty_world_set_cannot_be_inlined() {
        assert!(WorldSetRelation::from_world_set(&WorldSet::new()).is_err());
    }
}
