//! Chasing dependencies on probabilistic WSDs (§8, Figure 24).
//!
//! Data cleaning removes the worlds that violate a set of integrity
//! constraints.  Two constraint classes are supported, exactly as in the
//! paper:
//!
//! * functional dependencies `A1,…,Am → A0` over a relation, and
//! * single-tuple equality-generating dependencies
//!   `A1θ1c1 ∧ … ∧ Amθmcm ⇒ A0θ0c0`.
//!
//! Enforcing a dependency (1) composes the components defining the involved
//! fields, (2) removes the local worlds in which the dependency is violated,
//! and (3) renormalizes the surviving probabilities.  Unlike the classical
//! chase on tableaux no fixpoint is needed: enforcing one of these
//! dependencies cannot introduce new violations of another (§8).  The chase
//! result does not depend on the order of the dependencies, although the
//! *size* of the resulting decomposition may (Fig. 23).

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;
use ws_relational::Value;

/// The dependency types themselves are purely relational and live in the
/// substrate (`ws_relational::constraint`), where the single-world
/// satisfaction check and the update subsystem's conditioning verb share
/// them; they are re-exported here so `ws_core::chase::Dependency` remains
/// the canonical path for WSD code.
pub use ws_relational::constraint::{
    AttrComparison, Dependency, EqualityGeneratingDependency, FunctionalDependency,
};

/// Chase a set of dependencies on the WSD (Fig. 24).
///
/// On success the WSD represents exactly the subset of the original worlds
/// satisfying every dependency, with probabilities renormalized, and the
/// returned value is the probability mass of the *original* world-set that
/// satisfies all dependencies (i.e. `P(ψ)`; the §4 discussion of conditional
/// probabilities builds on this).  Fails with [`WsError::Inconsistent`] if no
/// world satisfies the dependencies.
pub fn chase(wsd: &mut Wsd, dependencies: &[Dependency]) -> Result<f64> {
    let mut mass = 1.0;
    for dep in dependencies {
        mass *= match dep {
            Dependency::Fd(fd) => chase_fd(wsd, fd)?,
            Dependency::Egd(egd) => chase_egd(wsd, egd)?,
        };
    }
    Ok(mass)
}

/// Chase one single-tuple EGD.
///
/// Returns the fraction of the input probability mass whose worlds satisfy
/// the dependency (1.0 when nothing had to be removed).
pub fn chase_egd(wsd: &mut Wsd, egd: &EqualityGeneratingDependency) -> Result<f64> {
    let meta = wsd.meta(&egd.relation)?.clone();
    for a in egd.attrs() {
        if !meta.attrs.iter().any(|b| b.as_ref() == a) {
            return Err(WsError::invalid(format!(
                "dependency attribute `{a}` not in schema of `{}`",
                egd.relation
            )));
        }
    }
    let mut survival = 1.0;
    let tuples: Vec<usize> = meta.live_tuples().collect();
    for t in tuples {
        if !egd_possibly_violated(wsd, egd, t)? {
            continue;
        }
        // Compose the components of all involved fields of this tuple, plus
        // every field of the tuple that may carry ⊥: a tuple that is absent
        // from a world (any field ⊥, per the inline⁻¹ semantics) cannot
        // violate the dependency there, and that absence may be recorded in a
        // field the dependency does not mention.
        let mut fields: Vec<FieldId> = egd
            .attrs()
            .iter()
            .map(|a| FieldId::new(&egd.relation, t, a))
            .collect();
        fields.extend(presence_fields(wsd, &egd.relation, &meta.attrs, t)?);
        fields.sort();
        fields.dedup();
        let presence: Vec<FieldId> = fields.clone();
        let slot = wsd.compose_fields(&fields)?;
        let comp = wsd.component_mut(slot)?;
        let body_positions: Vec<usize> = egd
            .body
            .iter()
            .map(|a| {
                comp.position(&FieldId::new(&egd.relation, t, a.attr.as_str()))
                    .expect("composed component defines the body fields")
            })
            .collect();
        let head_position = comp
            .position(&FieldId::new(&egd.relation, t, egd.head.attr.as_str()))
            .expect("composed component defines the head field");
        let presence_positions: Vec<usize> = presence
            .iter()
            .map(|f| {
                comp.position(f)
                    .expect("composed component defines all presence fields")
            })
            .collect();
        let before = comp.len();
        let before_mass = comp.total_probability();
        comp.rows.retain(|row| {
            // A local world violates the EGD for tuple t iff the tuple is
            // present (no ⊥ among its fields), the body holds and the head
            // fails.
            let involved_present = presence_positions
                .iter()
                .all(|&p| !row.values[p].is_bottom());
            if !involved_present {
                return true;
            }
            let body_holds = egd
                .body
                .iter()
                .zip(&body_positions)
                .all(|(atom, &p)| atom.eval(&row.values[p]));
            let head_holds = egd.head.eval(&row.values[head_position]);
            !body_holds || head_holds
        });
        if comp.len() != before {
            if comp.is_empty() {
                return Err(WsError::Inconsistent);
            }
            let kept = comp.total_probability();
            survival *= kept / before_mass;
            comp.renormalize()?;
        }
    }
    Ok(survival)
}

/// The fields of a tuple that can carry `⊥` in some local world — the fields
/// recording that the tuple is absent from some worlds.  These must be part
/// of any violation check, because an absent tuple cannot violate anything.
fn presence_fields(
    wsd: &Wsd,
    relation: &str,
    attrs: &[std::sync::Arc<str>],
    tuple: usize,
) -> Result<Vec<FieldId>> {
    let mut out = Vec::new();
    for a in attrs {
        let field = FieldId::new(relation, tuple, a.as_ref());
        if wsd.possible_values(&field)?.contains(&Value::Bottom) {
            out.push(field);
        }
    }
    Ok(out)
}

/// Cheap refinement check (§8): skip the composition when the dependency
/// cannot be violated for this tuple — when the body is certainly false for
/// some atom, or the head certainly holds.
fn egd_possibly_violated(
    wsd: &Wsd,
    egd: &EqualityGeneratingDependency,
    tuple: usize,
) -> Result<bool> {
    for atom in &egd.body {
        let values =
            wsd.possible_values(&FieldId::new(&egd.relation, tuple, atom.attr.as_str()))?;
        if values.iter().all(|v| v.is_bottom() || !atom.eval(v)) {
            return Ok(false);
        }
    }
    let head_values =
        wsd.possible_values(&FieldId::new(&egd.relation, tuple, egd.head.attr.as_str()))?;
    if head_values
        .iter()
        .all(|v| v.is_bottom() || egd.head.eval(v))
    {
        return Ok(false);
    }
    Ok(true)
}

/// Chase one functional dependency.
///
/// Returns the fraction of the input probability mass whose worlds satisfy
/// the dependency (1.0 when nothing had to be removed).
pub fn chase_fd(wsd: &mut Wsd, fd: &FunctionalDependency) -> Result<f64> {
    let meta = wsd.meta(&fd.relation)?.clone();
    for a in fd.lhs.iter().chain(&fd.rhs) {
        if !meta.attrs.iter().any(|b| b.as_ref() == a.as_str()) {
            return Err(WsError::invalid(format!(
                "dependency attribute `{a}` not in schema of `{}`",
                fd.relation
            )));
        }
    }
    let mut survival = 1.0;
    let tuples: Vec<usize> = meta.live_tuples().collect();
    for (si, &s) in tuples.iter().enumerate() {
        for &t in &tuples[si + 1..] {
            if !fd_possibly_violated(wsd, fd, s, t)? {
                continue;
            }
            let mut fields: Vec<FieldId> = Vec::new();
            for a in fd.lhs.iter().chain(&fd.rhs) {
                fields.push(FieldId::new(&fd.relation, s, a.as_str()));
                fields.push(FieldId::new(&fd.relation, t, a.as_str()));
            }
            // A violation also requires both tuples to be *present*, so every
            // field that may record an absence (⊥) joins the composition.
            fields.extend(presence_fields(wsd, &fd.relation, &meta.attrs, s)?);
            fields.extend(presence_fields(wsd, &fd.relation, &meta.attrs, t)?);
            fields.sort();
            fields.dedup();
            let presence: Vec<FieldId> = fields.clone();
            let slot = wsd.compose_fields(&fields)?;
            let comp = wsd.component_mut(slot)?;
            let pos = |tuple: usize, attr: &str| {
                comp.position(&FieldId::new(&fd.relation, tuple, attr))
                    .expect("composed component defines all involved fields")
            };
            let lhs_positions: Vec<(usize, usize)> =
                fd.lhs.iter().map(|a| (pos(s, a), pos(t, a))).collect();
            let rhs_positions: Vec<(usize, usize)> =
                fd.rhs.iter().map(|a| (pos(s, a), pos(t, a))).collect();
            let presence_positions: Vec<usize> = presence
                .iter()
                .map(|f| {
                    comp.position(f)
                        .expect("composed component defines all presence fields")
                })
                .collect();
            let before = comp.len();
            let before_mass = comp.total_probability();
            comp.rows.retain(|row| {
                let all_present = presence_positions
                    .iter()
                    .all(|&p| !row.values[p].is_bottom());
                if !all_present {
                    return true;
                }
                let lhs_equal = lhs_positions
                    .iter()
                    .all(|&(ps, pt)| row.values[ps] == row.values[pt]);
                if !lhs_equal {
                    return true;
                }
                // Violation iff some dependent attribute differs.
                rhs_positions
                    .iter()
                    .all(|&(ps, pt)| row.values[ps] == row.values[pt])
            });
            if comp.len() != before {
                if comp.is_empty() {
                    return Err(WsError::Inconsistent);
                }
                let kept = comp.total_probability();
                survival *= kept / before_mass;
                comp.renormalize()?;
            }
        }
    }
    Ok(survival)
}

/// Cheap refinement check for FDs (§8): a pair can only violate the
/// dependency if every determinant attribute has a shared possible value and
/// the dependent attributes are not certainly equal.
fn fd_possibly_violated(wsd: &Wsd, fd: &FunctionalDependency, s: usize, t: usize) -> Result<bool> {
    for a in &fd.lhs {
        let vs = wsd.possible_values(&FieldId::new(&fd.relation, s, a.as_str()))?;
        let vt = wsd.possible_values(&FieldId::new(&fd.relation, t, a.as_str()))?;
        if !vs.iter().any(|v| !v.is_bottom() && vt.contains(v)) {
            return Ok(false);
        }
    }
    let mut all_rhs_certainly_equal = true;
    for a in &fd.rhs {
        let cs = wsd.certain_value(&FieldId::new(&fd.relation, s, a.as_str()))?;
        let ct = wsd.certain_value(&FieldId::new(&fd.relation, t, a.as_str()))?;
        match (cs, ct) {
            (Some(x), Some(y)) if x == y => {}
            _ => {
                all_rhs_certainly_equal = false;
                break;
            }
        }
    }
    Ok(!all_rhs_certainly_equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::normalize;
    use crate::wsd::example_census_wsd;
    use ws_relational::CmpOp;
    use ws_relational::Database;

    fn f(rel: &str, t: usize, a: &str) -> FieldId {
        FieldId::new(rel, t, a)
    }

    /// Oracle: condition the explicitly enumerated world-set on a predicate.
    fn oracle_filter(wsd: &Wsd, keep: impl Fn(&Database) -> bool) -> Vec<(Database, f64)> {
        let worlds = wsd.enumerate_worlds(1_000_000).unwrap();
        let surviving: Vec<(Database, f64)> =
            worlds.into_iter().filter(|(db, _)| keep(db)).collect();
        let mass: f64 = surviving.iter().map(|(_, p)| p).sum();
        surviving
            .into_iter()
            .map(|(db, p)| (db, p / mass))
            .collect()
    }

    /// Build the introduction's *uncleaned* WSD: independent or-set fields.
    fn uncleaned_census_wsd() -> Wsd {
        let mut wsd = Wsd::new();
        wsd.register_relation("R", &["S", "N", "M"], 2).unwrap();
        wsd.set_uniform(f("R", 0, "S"), vec![Value::int(185), Value::int(785)])
            .unwrap();
        wsd.set_certain(f("R", 0, "N"), Value::text("Smith"))
            .unwrap();
        wsd.set_uniform(f("R", 0, "M"), vec![Value::int(1), Value::int(2)])
            .unwrap();
        wsd.set_uniform(f("R", 1, "S"), vec![Value::int(185), Value::int(186)])
            .unwrap();
        wsd.set_certain(f("R", 1, "N"), Value::text("Brown"))
            .unwrap();
        wsd.set_uniform(
            f("R", 1, "M"),
            vec![Value::int(1), Value::int(2), Value::int(3), Value::int(4)],
        )
        .unwrap();
        wsd
    }

    #[test]
    fn fd_chase_enforces_key_uniqueness() {
        // S → N, M over the 32-world or-set relation of the introduction:
        // 8 of the 32 worlds (both SSNs = 185) are removed.
        let mut wsd = uncleaned_census_wsd();
        assert_eq!(wsd.world_count(), 32);
        let fd = FunctionalDependency::new("R", vec!["S"], vec!["N", "M"]);
        chase_fd(&mut wsd, &fd).unwrap();
        wsd.validate().unwrap();
        let worlds = wsd.rep().unwrap();
        assert_eq!(worlds.len(), 24);
        assert!((worlds.total_probability() - 1.0).abs() < 1e-9);
        // Every remaining world has distinct SSNs.
        for (db, _) in worlds.worlds() {
            let ssns = db.relation("R").unwrap().distinct_column("S").unwrap();
            assert_eq!(ssns.len(), 2);
        }
    }

    #[test]
    fn fd_chase_matches_world_filtering_oracle() {
        let mut wsd = uncleaned_census_wsd();
        let oracle = oracle_filter(&wsd, |db| {
            let r = db.relation("R").unwrap();
            // FD S → M: no two tuples share S with different M.
            for a in r.rows() {
                for b in r.rows() {
                    if a[0] == b[0] && a[2] != b[2] {
                        return false;
                    }
                }
            }
            true
        });
        let fd = FunctionalDependency::new("R", vec!["S"], vec!["M"]);
        chase_fd(&mut wsd, &fd).unwrap();
        let ours = wsd.rep().unwrap();
        assert_eq!(ours.len(), oracle.len());
        for (db, p) in &oracle {
            assert!((ours.probability_of(db) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn egd_chase_example_from_section8() {
        // "The person with SSN 785 is married": S = 785 ⇒ M = 1, chased on
        // the cleaned Fig. 4 WSD, gives the 4-local-world component of Fig. 22.
        let mut wsd = example_census_wsd();
        let egd = EqualityGeneratingDependency::implies("R", "S", 785i64, "M", CmpOp::Eq, 1i64);
        chase_egd(&mut wsd, &egd).unwrap();
        wsd.validate().unwrap();
        let comp = wsd.component_of(&f("R", 0, "S")).unwrap();
        // t1.S, t2.S and t1.M are now in one component with 4 local worlds.
        assert_eq!(comp.len(), 4);
        assert!(comp.position(&f("R", 0, "M")).is_some());
        // Probabilities of Fig. 22 (renormalized by 1 - 0.4*0.3 = 0.88... the
        // paper's figures: 0.1842, 0.0790, 0.3684, 0.3684).
        let probs: Vec<f64> = comp.rows.iter().map(|r| r.prob).collect();
        let mut sorted = probs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 0.0790).abs() < 1e-3);
        assert!((sorted[1] - 0.1842).abs() < 1e-3);
        assert!((sorted[2] - 0.3684).abs() < 1e-3);
        assert!((sorted[3] - 0.3684).abs() < 1e-3);
        assert!((comp.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn egd_chase_matches_world_filtering_oracle() {
        let mut wsd = example_census_wsd();
        let oracle = oracle_filter(&wsd, |db| {
            db.relation("R")
                .unwrap()
                .rows()
                .iter()
                .all(|t| t[0] != Value::int(785) || t[2] == Value::int(1))
        });
        let egd = EqualityGeneratingDependency::implies("R", "S", 785i64, "M", CmpOp::Eq, 1i64);
        chase_egd(&mut wsd, &egd).unwrap();
        let ours = wsd.rep().unwrap();
        assert_eq!(ours.len(), oracle.len());
        for (db, p) in &oracle {
            assert!((ours.probability_of(db) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn chase_order_does_not_change_the_world_set() {
        // The Figure 23 scenario: two tuples, dependencies d1 = (B → C) and
        // d2 = (A = 1 ⇒ B ≠ 2); chasing in either order yields the same
        // world-set (though possibly different decompositions).
        fn fig23_wsd() -> Wsd {
            let mut wsd = Wsd::new();
            wsd.register_relation("R", &["A", "B", "C"], 2).unwrap();
            wsd.set_certain(f("R", 0, "A"), Value::int(1)).unwrap();
            wsd.set_uniform(f("R", 0, "B"), vec![Value::int(1), Value::int(2)])
                .unwrap();
            wsd.set_certain(f("R", 0, "C"), Value::int(5)).unwrap();
            wsd.set_certain(f("R", 1, "A"), Value::int(2)).unwrap();
            wsd.set_uniform(f("R", 1, "B"), vec![Value::int(2), Value::int(3)])
                .unwrap();
            wsd.set_uniform(f("R", 1, "C"), vec![Value::int(5), Value::int(6)])
                .unwrap();
            wsd
        }
        let d1 = Dependency::Fd(FunctionalDependency::new("R", vec!["B"], vec!["C"]));
        let d2 = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "A",
            1i64,
            "B",
            CmpOp::Ne,
            2i64,
        ));
        let mut first = fig23_wsd();
        chase(&mut first, &[d1.clone(), d2.clone()]).unwrap();
        let mut second = fig23_wsd();
        chase(&mut second, &[d2, d1]).unwrap();
        let w1 = first.rep().unwrap();
        let w2 = second.rep().unwrap();
        assert!(w1.same_worlds(&w2));
        assert!(w1.same_distribution(&w2, 1e-9));
        // Chasing d2 before d1 avoids composing the B/C components entirely
        // (Fig. 23 (e)): afterwards normalization gives at least as many
        // components as the d1-first order before normalization.
        normalize::normalize(&mut first).unwrap();
        normalize::normalize(&mut second).unwrap();
        assert!(first.rep().unwrap().same_worlds(&w1));
    }

    #[test]
    fn inconsistent_world_set_is_reported() {
        let mut wsd = Wsd::new();
        wsd.register_relation("R", &["A", "B"], 1).unwrap();
        wsd.set_certain(f("R", 0, "A"), Value::int(1)).unwrap();
        wsd.set_certain(f("R", 0, "B"), Value::int(2)).unwrap();
        // A = 1 ⇒ B = 3 can never hold: every world is inconsistent.
        let egd = EqualityGeneratingDependency::implies("R", "A", 1i64, "B", CmpOp::Eq, 3i64);
        assert_eq!(chase_egd(&mut wsd, &egd), Err(WsError::Inconsistent));
    }

    #[test]
    fn unknown_attributes_are_rejected() {
        let mut wsd = example_census_wsd();
        let fd = FunctionalDependency::new("R", vec!["Z"], vec!["M"]);
        assert!(chase_fd(&mut wsd, &fd).is_err());
        let egd = EqualityGeneratingDependency::implies("R", "Z", 1i64, "M", CmpOp::Eq, 1i64);
        assert!(chase_egd(&mut wsd, &egd).is_err());
        let fd = FunctionalDependency::new("NOPE", vec!["A"], vec!["B"]);
        assert!(chase(&mut wsd, &[Dependency::Fd(fd)]).is_err());
    }

    #[test]
    fn refinement_avoids_unnecessary_composition() {
        // An EGD whose body can never hold must not merge any components.
        let mut wsd = example_census_wsd();
        let before = wsd.component_count();
        let egd = EqualityGeneratingDependency::implies("R", "S", 999i64, "M", CmpOp::Eq, 1i64);
        chase_egd(&mut wsd, &egd).unwrap();
        assert_eq!(wsd.component_count(), before);
        // Same for an FD whose determinants never overlap.
        let mut wsd2 = Wsd::new();
        wsd2.register_relation("R", &["A", "B"], 2).unwrap();
        wsd2.set_certain(f("R", 0, "A"), Value::int(1)).unwrap();
        wsd2.set_uniform(f("R", 0, "B"), vec![Value::int(1), Value::int(2)])
            .unwrap();
        wsd2.set_certain(f("R", 1, "A"), Value::int(2)).unwrap();
        wsd2.set_uniform(f("R", 1, "B"), vec![Value::int(3), Value::int(4)])
            .unwrap();
        let before = wsd2.component_count();
        chase_fd(
            &mut wsd2,
            &FunctionalDependency::new("R", vec!["A"], vec!["B"]),
        )
        .unwrap();
        assert_eq!(wsd2.component_count(), before);
    }

    #[test]
    fn dependency_display_and_accessors() {
        let fd = FunctionalDependency::new("R", vec!["S"], vec!["N", "M"]);
        assert_eq!(fd.to_string(), "R: S → N,M");
        let egd = EqualityGeneratingDependency::implies("R", "S", 785i64, "M", CmpOp::Eq, 1i64);
        assert!(egd.to_string().contains("S=785"));
        assert!(egd.to_string().contains("⇒ M=1"));
        assert_eq!(egd.attrs(), vec!["M", "S"]);
        assert_eq!(Dependency::Fd(fd).relation(), "R");
        assert_eq!(Dependency::Egd(egd).relation(), "R");
        let atom = AttrComparison::new("A", CmpOp::Gt, 3i64);
        assert!(atom.eval(&Value::int(4)));
        assert!(!atom.eval(&Value::int(3)));
        assert!(!atom.eval(&Value::Bottom));
        // A multi-field component used in composition keeps working in chase.
        let c = Component::certain(f("X", 0, "A"), Value::int(1));
        assert_eq!(c.width(), 1);
    }
}
