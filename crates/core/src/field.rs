//! Field identifiers `R.t.A`.
//!
//! A world-set relation has one column per *field* of the original schema:
//! relation name `R`, tuple position/identifier `t`, attribute `A` (§3).
//! Components of a WSD draw their columns from this field space, and the
//! UWSDT layer uses the same triple as its `FID`.

use std::fmt;
use std::sync::Arc;

/// A tuple identifier: the position `i` of tuple `t_i` within `inline(R^A)`.
///
/// Tuple identifiers denote *positions*, not values (§3); the same identifier
/// refers to "the same tuple slot" across all possible worlds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub usize);

impl TupleId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0 + 1)
    }
}

/// A field identifier `R.t.A`: the `A`-field of tuple `t` in relation `R`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId {
    /// The relation name `R`.
    pub relation: Arc<str>,
    /// The tuple identifier `t`.
    pub tuple: TupleId,
    /// The attribute name `A`.
    pub attr: Arc<str>,
}

impl FieldId {
    /// Construct a field identifier.
    pub fn new(relation: impl AsRef<str>, tuple: usize, attr: impl AsRef<str>) -> Self {
        FieldId {
            relation: Arc::from(relation.as_ref()),
            tuple: TupleId(tuple),
            attr: Arc::from(attr.as_ref()),
        }
    }

    /// Construct from already-interned names (avoids re-allocating).
    pub fn from_parts(relation: Arc<str>, tuple: TupleId, attr: Arc<str>) -> Self {
        FieldId {
            relation,
            tuple,
            attr,
        }
    }

    /// `true` iff the field belongs to the given relation.
    pub fn in_relation(&self, relation: &str) -> bool {
        self.relation.as_ref() == relation
    }

    /// `true` iff the field belongs to the given relation *and* tuple.
    pub fn in_tuple(&self, relation: &str, tuple: usize) -> bool {
        self.in_relation(relation) && self.tuple.0 == tuple
    }

    /// A copy of this field re-addressed to another relation/tuple, keeping
    /// the attribute name (used by `copy`, product and union, which create
    /// fields of the result relation mirroring input fields).
    pub fn readdressed(&self, relation: &str, tuple: usize) -> FieldId {
        FieldId {
            relation: Arc::from(relation),
            tuple: TupleId(tuple),
            attr: self.attr.clone(),
        }
    }

    /// A copy of this field with a different attribute name (used by `δ`).
    pub fn with_attr(&self, attr: impl AsRef<str>) -> FieldId {
        FieldId {
            relation: self.relation.clone(),
            tuple: self.tuple,
            attr: Arc::from(attr.as_ref()),
        }
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.relation, self.tuple, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let f = FieldId::new("R", 0, "S");
        assert!(f.in_relation("R"));
        assert!(!f.in_relation("S"));
        assert!(f.in_tuple("R", 0));
        assert!(!f.in_tuple("R", 1));
        assert_eq!(f.tuple.index(), 0);
        assert_eq!(f.to_string(), "R.t1.S");
    }

    #[test]
    fn readdressing_preserves_attribute() {
        let f = FieldId::new("R", 2, "M");
        let g = f.readdressed("P", 5);
        assert_eq!(g.relation.as_ref(), "P");
        assert_eq!(g.tuple, TupleId(5));
        assert_eq!(g.attr.as_ref(), "M");
        let h = f.with_attr("M2");
        assert_eq!(h.attr.as_ref(), "M2");
        assert_eq!(h.relation.as_ref(), "R");
    }

    #[test]
    fn ordering_is_stable_for_map_keys() {
        let a = FieldId::new("R", 0, "A");
        let b = FieldId::new("R", 1, "A");
        let c = FieldId::new("S", 0, "A");
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn from_parts_equals_new() {
        let a = FieldId::new("R", 3, "X");
        let b = FieldId::from_parts(Arc::from("R"), TupleId(3), Arc::from("X"));
        assert_eq!(a, b);
    }
}
