//! Conditioning a world-set on integrity constraints and conditional
//! confidence computation.
//!
//! Section 4 of the paper observes that the confidence of tuples in the
//! answer to a *difference* query — and more generally in any query asked
//! under a universal constraint `ψ` — can be obtained as a conditional
//! probability `P(φ | ψ) = P(φ ∧ ψ) / P(ψ)` instead of materializing the
//! (potentially expensive) representation of the result.  In the WSD
//! framework the constraint side is exactly what the chase of Section 8
//! computes: chasing `ψ` keeps precisely the worlds satisfying `ψ` and
//! renormalizes their probabilities, so confidence computed on the chased
//! decomposition *is* the conditional confidence.  The chase additionally
//! reports the surviving probability mass, which is `P(ψ)` itself.
//!
//! This module packages those observations into a small API:
//!
//! * [`satisfaction_probability`] — `P(ψ)` for a set of dependencies,
//! * [`condition`] — chase in place and report `P(ψ)`,
//! * [`conditional_conf`] — `P(t ∈ R | ψ)`,
//! * [`conditional_query_conf`] — `P(t ∈ Q(·) | ψ)` for a relational algebra
//!   query `Q`, and
//! * [`joint_probability`] — `P(t ∈ R ∧ ψ)`, recovered as
//!   `P(t ∈ R | ψ) · P(ψ)`.

use crate::chase::{chase, Dependency};
use crate::confidence;
use crate::error::{Result, WsError};
use crate::ops;
use crate::wsd::Wsd;
use ws_relational::{RaExpr, Tuple};

/// The probability that a world drawn from the WSD satisfies every
/// dependency in `constraints` (`P(ψ)`).
///
/// Returns 0.0 when no world satisfies the constraints.  The input WSD is not
/// modified.
pub fn satisfaction_probability(wsd: &Wsd, constraints: &[Dependency]) -> Result<f64> {
    let mut scratch = wsd.clone();
    match chase(&mut scratch, constraints) {
        Ok(mass) => Ok(mass),
        Err(WsError::Inconsistent) => Ok(0.0),
        Err(other) => Err(other),
    }
}

/// Condition the WSD on the constraints in place: after the call the WSD
/// represents exactly the worlds satisfying `ψ`, renormalized, and the
/// returned value is `P(ψ)` with respect to the original distribution.
///
/// Unlike [`satisfaction_probability`] this propagates
/// [`WsError::Inconsistent`] when no world survives, because an in-place
/// conditioning on an unsatisfiable constraint would leave the caller with a
/// WSD representing the empty world-set.
#[deprecated(
    since = "0.1.0",
    note = "conditioning is an update-language verb now: call \
            `maybms::Session::condition`, or `WriteBackend::apply_condition` \
            (`ws_relational::WriteBackend`) on the Wsd directly"
)]
pub fn condition(wsd: &mut Wsd, constraints: &[Dependency]) -> Result<f64> {
    ws_relational::WriteBackend::apply_condition(wsd, constraints)
}

/// The conditional confidence `P(t ∈ relation | ψ)`.
///
/// Errors with [`WsError::Inconsistent`] if `P(ψ) = 0` (the conditional
/// probability is undefined).
pub fn conditional_conf(
    wsd: &Wsd,
    relation: &str,
    tuple: &Tuple,
    constraints: &[Dependency],
) -> Result<f64> {
    let mut scratch = wsd.clone();
    chase(&mut scratch, constraints)?;
    confidence::conf(&scratch, relation, tuple)
}

/// The conditional confidence of `tuple` in the answer of `query`, given the
/// constraints: `P(t ∈ Q(A) | A ⊨ ψ)`.
///
/// The query is evaluated on the conditioned decomposition (conditioning
/// first is equivalent to conditioning the query answer, because the chase
/// only removes worlds and the query is evaluated world-by-world).
pub fn conditional_query_conf(
    wsd: &Wsd,
    query: &RaExpr,
    tuple: &Tuple,
    constraints: &[Dependency],
) -> Result<f64> {
    let mut scratch = wsd.clone();
    chase(&mut scratch, constraints)?;
    let out = ops::evaluate_query_fresh(&mut scratch, query, "conditional_q")?;
    confidence::conf(&scratch, &out, tuple)
}

/// The joint probability `P(t ∈ relation ∧ ψ)`, i.e. the mass of worlds that
/// both satisfy the constraints and contain the tuple.
pub fn joint_probability(
    wsd: &Wsd,
    relation: &str,
    tuple: &Tuple,
    constraints: &[Dependency],
) -> Result<f64> {
    let mut scratch = wsd.clone();
    let mass = match chase(&mut scratch, constraints) {
        Ok(mass) => mass,
        Err(WsError::Inconsistent) => return Ok(0.0),
        Err(other) => return Err(other),
    };
    Ok(mass * confidence::conf(&scratch, relation, tuple)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::{AttrComparison, EqualityGeneratingDependency, FunctionalDependency};
    use crate::wsd::example_census_wsd;
    use ws_relational::{CmpOp, Predicate, Value};

    fn married_constraint() -> Dependency {
        // "The person with SSN 785 is married" (§8 running example):
        // S = 785 ⇒ M = 1.
        Dependency::Egd(EqualityGeneratingDependency::new(
            "R",
            vec![AttrComparison::new("S", CmpOp::Eq, 785i64)],
            AttrComparison::new("M", CmpOp::Eq, 1i64),
        ))
    }

    /// Oracle: P(ψ) by explicit enumeration of the (small) world-set.
    fn oracle_satisfaction(wsd: &Wsd, constraints: &[Dependency]) -> f64 {
        use ws_baselines_free_oracle::world_satisfies;
        wsd.enumerate_worlds(1 << 20)
            .unwrap()
            .into_iter()
            .filter(|(db, _)| constraints.iter().all(|d| world_satisfies(db, d)))
            .map(|(_, p)| p)
            .sum()
    }

    /// A tiny local re-implementation of the explicit-world dependency check
    /// (the full version lives in `ws-baselines`, which depends on this crate
    /// and therefore cannot be used from its unit tests).
    mod ws_baselines_free_oracle {
        use super::*;
        use ws_relational::Database;

        pub fn world_satisfies(db: &Database, dep: &Dependency) -> bool {
            match dep {
                Dependency::Egd(egd) => {
                    let rel = db.relation(&egd.relation).unwrap();
                    rel.rows().iter().all(|row| {
                        let value_of =
                            |attr: &str| &row[rel.schema().position(attr).expect("attr exists")];
                        let body = egd.body.iter().all(|a| a.eval(value_of(&a.attr)));
                        !body || egd.head.eval(value_of(&egd.head.attr))
                    })
                }
                Dependency::Fd(fd) => {
                    let rel = db.relation(&fd.relation).unwrap();
                    let rows = rel.rows();
                    for (i, s) in rows.iter().enumerate() {
                        for t in &rows[i + 1..] {
                            let pos =
                                |attr: &str| rel.schema().position(attr).expect("attr exists");
                            let lhs_eq = fd.lhs.iter().all(|a| s[pos(a)] == t[pos(a)]);
                            let rhs_eq = fd.rhs.iter().all(|a| s[pos(a)] == t[pos(a)]);
                            if lhs_eq && !rhs_eq {
                                return false;
                            }
                        }
                    }
                    true
                }
            }
        }
    }

    #[test]
    fn satisfaction_probability_matches_enumeration() {
        let wsd = example_census_wsd();
        let deps = vec![married_constraint()];
        let ours = satisfaction_probability(&wsd, &deps).unwrap();
        let oracle = oracle_satisfaction(&wsd, &deps);
        assert!((ours - oracle).abs() < 1e-9, "{ours} vs oracle {oracle}");
        // The constraint removes the "785 but not married" worlds, so the
        // mass is strictly between 0 and 1.
        assert!(ours > 0.0 && ours < 1.0);
    }

    #[test]
    fn conditioning_in_place_reports_the_same_mass() {
        let mut wsd = example_census_wsd();
        let deps = vec![married_constraint()];
        let expected = satisfaction_probability(&wsd, &deps).unwrap();
        let mass = ws_relational::WriteBackend::apply_condition(&mut wsd, &deps).unwrap();
        assert!((mass - expected).abs() < 1e-12);
        // After conditioning the constraint is satisfied in every world.
        assert!((satisfaction_probability(&wsd, &deps).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_confidence_is_bayes_consistent() {
        let wsd = example_census_wsd();
        let deps = vec![married_constraint()];
        let tuple = Tuple::from_iter([Value::int(785), Value::text("Smith"), Value::int(1)]);
        let p_psi = satisfaction_probability(&wsd, &deps).unwrap();
        let p_cond = conditional_conf(&wsd, "R", &tuple, &deps).unwrap();
        let p_joint = joint_probability(&wsd, "R", &tuple, &deps).unwrap();
        assert!((p_joint - p_cond * p_psi).abs() < 1e-9);
        // Conditioning on "785 ⇒ married" can only increase the confidence of
        // the married-785 tuple.
        let unconditional = confidence::conf(&wsd, "R", &tuple).unwrap();
        assert!(p_cond >= unconditional - 1e-12);
    }

    #[test]
    fn conditional_query_confidence_matches_enumeration() {
        let wsd = example_census_wsd();
        let deps = vec![married_constraint()];
        // Q = π_S(σ_{M=1}(R)) — the SSNs of married persons.
        let query = RaExpr::rel("R")
            .select(Predicate::eq_const("M", 1i64))
            .project(vec!["S"]);
        let tuple = Tuple::from_iter([Value::int(785)]);
        let ours = conditional_query_conf(&wsd, &query, &tuple, &deps).unwrap();

        // Oracle: enumerate, filter by the constraint, evaluate the query in
        // each surviving world, renormalize.
        let worlds = wsd.enumerate_worlds(1 << 20).unwrap();
        let mut surviving_mass = 0.0;
        let mut containing_mass = 0.0;
        for (db, p) in worlds {
            let satisfied = deps
                .iter()
                .all(|d| ws_baselines_free_oracle::world_satisfies(&db, d));
            if !satisfied {
                continue;
            }
            surviving_mass += p;
            let answer = ws_relational::evaluate_set(&db, &query).unwrap();
            if answer.contains(&tuple) {
                containing_mass += p;
            }
        }
        let oracle = containing_mass / surviving_mass;
        assert!((ours - oracle).abs() < 1e-9, "{ours} vs oracle {oracle}");
    }

    #[test]
    fn unsatisfiable_constraints_behave_sanely() {
        let wsd = example_census_wsd();
        // Names are certain, so "Smith ⇒ Smith ≠ Smith" can never hold for t1.
        let impossible = Dependency::Egd(EqualityGeneratingDependency::new(
            "R",
            vec![AttrComparison::new("N", CmpOp::Eq, "Smith")],
            AttrComparison::new("N", CmpOp::Ne, "Smith"),
        ));
        assert_eq!(
            satisfaction_probability(&wsd, std::slice::from_ref(&impossible)).unwrap(),
            0.0
        );
        assert_eq!(
            joint_probability(
                &wsd,
                "R",
                &Tuple::from_iter([Value::int(185), Value::text("Smith"), Value::int(1)]),
                std::slice::from_ref(&impossible)
            )
            .unwrap(),
            0.0
        );
        assert!(conditional_conf(
            &wsd,
            "R",
            &Tuple::from_iter([Value::int(185), Value::text("Smith"), Value::int(1)]),
            std::slice::from_ref(&impossible)
        )
        .is_err());
        let mut in_place = example_census_wsd();
        assert!(ws_relational::WriteBackend::apply_condition(
            &mut in_place,
            std::slice::from_ref(&impossible)
        )
        .is_err());
    }

    #[test]
    fn functional_dependency_constraints_are_supported() {
        let wsd = example_census_wsd();
        // SSN is a key (the §1 cleaning constraint); in the Fig. 4 WSD the
        // SSNs already differ in every world, so the mass is 1.
        let key = Dependency::Fd(FunctionalDependency::new("R", vec!["S"], vec!["N", "M"]));
        let mass = satisfaction_probability(&wsd, &[key]).unwrap();
        assert!((mass - 1.0).abs() < 1e-9);
    }
}
