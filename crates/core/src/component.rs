//! WSD components and their local worlds.
//!
//! A component is one factor of a product decomposition of a world-set
//! relation (§3, Definition 1).  Its columns are fields `R.t.A`; its rows are
//! the *local worlds*: each row assigns one value to every column and carries
//! a probability.  Choosing one row from every component of a WSD yields one
//! possible world, with probability equal to the product of the chosen rows'
//! probabilities.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use std::collections::BTreeSet;
use ws_relational::Value;

/// Tolerance used when validating that component probabilities sum to one.
pub const PROB_EPSILON: f64 = 1e-6;

/// One local world of a component: a value for each component column plus the
/// probability of this combination.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalWorld {
    /// The values, positionally aligned with [`Component::fields`].
    pub values: Vec<Value>,
    /// The probability of this local world within its component.
    pub prob: f64,
}

impl LocalWorld {
    /// Create a local world.
    pub fn new(values: Vec<Value>, prob: f64) -> Self {
        LocalWorld { values, prob }
    }
}

/// A component relation of a WSD.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Component {
    /// The component's schema: the fields it defines values for.
    pub fields: Vec<FieldId>,
    /// The local worlds.
    pub rows: Vec<LocalWorld>,
}

impl Component {
    /// Create an empty component over the given fields.
    pub fn new(fields: Vec<FieldId>) -> Self {
        Component {
            fields,
            rows: Vec::new(),
        }
    }

    /// Create a *certain* component: one field, one local world, probability 1.
    pub fn certain(field: FieldId, value: Value) -> Self {
        Component {
            fields: vec![field],
            rows: vec![LocalWorld::new(vec![value], 1.0)],
        }
    }

    /// Create a single-field component from weighted alternatives.
    pub fn weighted(field: FieldId, alternatives: Vec<(Value, f64)>) -> Result<Self> {
        let mut c = Component::new(vec![field]);
        for (v, p) in alternatives {
            c.rows.push(LocalWorld::new(vec![v], p));
        }
        c.validate()?;
        Ok(c)
    }

    /// Create a single-field component from equally likely alternatives
    /// (the or-set reading of a field).
    pub fn uniform(field: FieldId, alternatives: Vec<Value>) -> Result<Self> {
        if alternatives.is_empty() {
            return Err(WsError::invalid("or-set must contain at least one value"));
        }
        let p = 1.0 / alternatives.len() as f64;
        Component::weighted(field, alternatives.into_iter().map(|v| (v, p)).collect())
    }

    /// Add a local world.
    pub fn push_row(&mut self, values: Vec<Value>, prob: f64) -> Result<()> {
        if values.len() != self.fields.len() {
            return Err(WsError::invalid(format!(
                "component row arity {} does not match field count {}",
                values.len(),
                self.fields.len()
            )));
        }
        self.rows.push(LocalWorld::new(values, prob));
        Ok(())
    }

    /// Number of columns (fields / placeholders) of the component.
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Number of local worlds.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the component has no local worlds (an inconsistent component).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of a field among the component's columns.
    pub fn position(&self, field: &FieldId) -> Option<usize> {
        self.fields.iter().position(|f| f == field)
    }

    /// Sum of the local-world probabilities.
    pub fn total_probability(&self) -> f64 {
        self.rows.iter().map(|r| r.prob).sum()
    }

    /// Validate that the component is well formed: consistent arity, all
    /// probabilities in `[0, 1]`, probabilities summing to one, and no
    /// duplicated field.
    pub fn validate(&self) -> Result<()> {
        let mut seen = BTreeSet::new();
        for f in &self.fields {
            if !seen.insert(f.clone()) {
                return Err(WsError::invalid(format!(
                    "field {f} appears twice in a component"
                )));
            }
        }
        for row in &self.rows {
            if row.values.len() != self.fields.len() {
                return Err(WsError::invalid("component row arity mismatch"));
            }
            if !(0.0..=1.0 + PROB_EPSILON).contains(&row.prob) {
                return Err(WsError::invalid(format!(
                    "local-world probability {} out of range",
                    row.prob
                )));
            }
        }
        let total = self.total_probability();
        if self.is_empty() || (total - 1.0).abs() > PROB_EPSILON {
            return Err(WsError::invalid(format!(
                "component probabilities sum to {total}, expected 1"
            )));
        }
        Ok(())
    }

    /// The `ext` operation of §4: extend the component with a new column that
    /// is a copy of the column of `src`, named `dst`.
    pub fn ext(&mut self, src: &FieldId, dst: FieldId) -> Result<()> {
        let pos = self
            .position(src)
            .ok_or_else(|| WsError::unknown_field(src))?;
        if self.position(&dst).is_some() {
            return Err(WsError::invalid(format!("field {dst} already present")));
        }
        self.fields.push(dst);
        for row in &mut self.rows {
            let v = row.values[pos].clone();
            row.values.push(v);
        }
        Ok(())
    }

    /// The `compose` operation of §4: the relational product of two
    /// components, with probabilities multiplied.
    pub fn compose(&self, other: &Component) -> Component {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        let mut rows = Vec::with_capacity(self.rows.len() * other.rows.len());
        for a in &self.rows {
            for b in &other.rows {
                let mut values = a.values.clone();
                values.extend(b.values.iter().cloned());
                rows.push(LocalWorld::new(values, a.prob * b.prob));
            }
        }
        Component { fields, rows }
    }

    /// `propagate-⊥` (Fig. 12) restricted to one relation: within every local
    /// world, if any field of tuple `R.t` carries `⊥`, set all fields of
    /// `R.t` present in this component to `⊥`.
    pub fn propagate_bottom(&mut self, relation: &str) {
        // Group column positions by tuple id of the target relation.
        let mut by_tuple: Vec<(usize, Vec<usize>)> = Vec::new();
        for (pos, f) in self.fields.iter().enumerate() {
            if f.in_relation(relation) {
                match by_tuple.iter_mut().find(|(t, _)| *t == f.tuple.0) {
                    Some((_, v)) => v.push(pos),
                    None => by_tuple.push((f.tuple.0, vec![pos])),
                }
            }
        }
        for row in &mut self.rows {
            for (_, positions) in &by_tuple {
                if positions.iter().any(|&p| row.values[p].is_bottom()) {
                    for &p in positions {
                        row.values[p] = Value::Bottom;
                    }
                }
            }
        }
    }

    /// Remove the column of the given field ("project away"), keeping rows.
    pub fn project_away(&mut self, field: &FieldId) -> Result<()> {
        let pos = self
            .position(field)
            .ok_or_else(|| WsError::unknown_field(field))?;
        self.fields.remove(pos);
        for row in &mut self.rows {
            row.values.remove(pos);
        }
        Ok(())
    }

    /// Keep only the columns for the given fields (in their current order).
    pub fn project_to(&mut self, keep: &BTreeSet<FieldId>) {
        let positions: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| keep.contains(f))
            .map(|(i, _)| i)
            .collect();
        self.fields = positions.iter().map(|&i| self.fields[i].clone()).collect();
        for row in &mut self.rows {
            row.values = positions.iter().map(|&i| row.values[i].clone()).collect();
        }
    }

    /// The `compress` normalization (Fig. 20): merge identical rows, summing
    /// their probabilities.
    pub fn compress(&mut self) {
        let mut merged: Vec<LocalWorld> = Vec::with_capacity(self.rows.len());
        for row in self.rows.drain(..) {
            match merged.iter_mut().find(|m| m.values == row.values) {
                Some(m) => m.prob += row.prob,
                None => merged.push(row),
            }
        }
        self.rows = merged;
    }

    /// Renormalize probabilities so they sum to one.  Returns an error if all
    /// probability mass has been removed (the world-set became empty).
    pub fn renormalize(&mut self) -> Result<()> {
        let total = self.total_probability();
        if self.is_empty() || total <= 0.0 {
            return Err(WsError::Inconsistent);
        }
        for row in &mut self.rows {
            row.prob /= total;
        }
        Ok(())
    }

    /// The distinct values appearing in the column of `field`.
    pub fn possible_values(&self, field: &FieldId) -> Result<BTreeSet<Value>> {
        let pos = self
            .position(field)
            .ok_or_else(|| WsError::unknown_field(field))?;
        Ok(self.rows.iter().map(|r| r.values[pos].clone()).collect())
    }

    /// Whether the column of `field` holds the same single value in every
    /// local world (the field is *certain*).
    pub fn is_certain(&self, field: &FieldId) -> Result<Option<Value>> {
        let values = self.possible_values(field)?;
        if values.len() == 1 {
            Ok(values.into_iter().next())
        } else {
            Ok(None)
        }
    }

    /// The value of `field` in row `row_idx`.
    pub fn value_at(&self, row_idx: usize, field: &FieldId) -> Result<&Value> {
        let pos = self
            .position(field)
            .ok_or_else(|| WsError::unknown_field(field))?;
        Ok(&self.rows[row_idx].values[pos])
    }

    /// Overwrite the value of `field` in row `row_idx`.
    pub fn set_value(&mut self, row_idx: usize, field: &FieldId, value: Value) -> Result<()> {
        let pos = self
            .position(field)
            .ok_or_else(|| WsError::unknown_field(field))?;
        self.rows[row_idx].values[pos] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rel: &str, t: usize, a: &str) -> FieldId {
        FieldId::new(rel, t, a)
    }

    fn ssn_component() -> Component {
        // The first component of Fig. 4: {t1.S, t2.S} with three local worlds.
        let mut c = Component::new(vec![f("R", 0, "S"), f("R", 1, "S")]);
        c.push_row(vec![Value::int(185), Value::int(186)], 0.2)
            .unwrap();
        c.push_row(vec![Value::int(785), Value::int(185)], 0.4)
            .unwrap();
        c.push_row(vec![Value::int(785), Value::int(186)], 0.4)
            .unwrap();
        c
    }

    #[test]
    fn construction_and_validation() {
        let c = ssn_component();
        assert_eq!(c.width(), 2);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.validate().is_ok());
        assert!((c.total_probability() - 1.0).abs() < PROB_EPSILON);

        let certain = Component::certain(f("R", 0, "N"), Value::text("Smith"));
        assert!(certain.validate().is_ok());
        assert_eq!(
            certain.is_certain(&f("R", 0, "N")).unwrap(),
            Some(Value::text("Smith"))
        );
    }

    #[test]
    fn invalid_components_are_rejected() {
        // Probabilities not summing to 1.
        let mut c = Component::new(vec![f("R", 0, "A")]);
        c.push_row(vec![Value::int(1)], 0.5).unwrap();
        assert!(c.validate().is_err());
        // Arity mismatch.
        assert!(c.push_row(vec![Value::int(1), Value::int(2)], 0.5).is_err());
        // Duplicate field.
        let d = Component::new(vec![f("R", 0, "A"), f("R", 0, "A")]);
        assert!(d.validate().is_err());
        // Out-of-range probability.
        let mut e = Component::new(vec![f("R", 0, "A")]);
        e.push_row(vec![Value::int(1)], 1.5).unwrap();
        assert!(e.validate().is_err());
        // Empty or-set.
        assert!(Component::uniform(f("R", 0, "A"), vec![]).is_err());
    }

    #[test]
    fn uniform_and_weighted_alternatives() {
        let c = Component::uniform(
            f("R", 1, "M"),
            vec![Value::int(1), Value::int(2), Value::int(3), Value::int(4)],
        )
        .unwrap();
        assert_eq!(c.len(), 4);
        assert!((c.rows[0].prob - 0.25).abs() < PROB_EPSILON);

        let w = Component::weighted(
            f("R", 0, "M"),
            vec![(Value::int(1), 0.7), (Value::int(2), 0.3)],
        )
        .unwrap();
        assert_eq!(w.len(), 2);
        assert!(Component::weighted(f("R", 0, "M"), vec![(Value::int(1), 0.7)]).is_err());
    }

    #[test]
    fn ext_copies_a_column() {
        let mut c = ssn_component();
        c.ext(&f("R", 0, "S"), f("P", 0, "S")).unwrap();
        assert_eq!(c.width(), 3);
        assert_eq!(c.rows[1].values[2], Value::int(785));
        // Copying a missing column or duplicating a field fails.
        assert!(c.ext(&f("R", 9, "S"), f("P", 9, "S")).is_err());
        assert!(c.ext(&f("R", 0, "S"), f("P", 0, "S")).is_err());
    }

    #[test]
    fn compose_multiplies_probabilities() {
        let a = ssn_component();
        let b = Component::weighted(
            f("R", 0, "M"),
            vec![(Value::int(1), 0.7), (Value::int(2), 0.3)],
        )
        .unwrap();
        let c = a.compose(&b);
        assert_eq!(c.width(), 3);
        assert_eq!(c.len(), 6);
        assert!((c.total_probability() - 1.0).abs() < PROB_EPSILON);
        assert!((c.rows[0].prob - 0.2 * 0.7).abs() < PROB_EPSILON);
    }

    #[test]
    fn propagate_bottom_within_tuples() {
        // Component over P.t1.B, P.t1.C, P.t2.B as in Fig. 11 (a).
        let mut c = Component::new(vec![f("P", 0, "B"), f("P", 0, "C"), f("P", 1, "B")]);
        c.push_row(vec![Value::Bottom, Value::int(0), Value::int(3)], 0.5)
            .unwrap();
        c.push_row(vec![Value::int(2), Value::int(7), Value::int(4)], 0.5)
            .unwrap();
        c.propagate_bottom("P");
        // t1's C must become ⊥ in the first row; t2 untouched.
        assert_eq!(c.rows[0].values[1], Value::Bottom);
        assert_eq!(c.rows[0].values[2], Value::int(3));
        assert_eq!(c.rows[1].values[1], Value::int(7));
    }

    #[test]
    fn project_away_and_project_to() {
        let mut c = ssn_component();
        c.project_away(&f("R", 1, "S")).unwrap();
        assert_eq!(c.width(), 1);
        assert!(c.project_away(&f("R", 1, "S")).is_err());

        let mut c = ssn_component();
        let keep: BTreeSet<FieldId> = [f("R", 1, "S")].into_iter().collect();
        c.project_to(&keep);
        assert_eq!(c.width(), 1);
        assert_eq!(c.fields[0], f("R", 1, "S"));
        assert_eq!(c.rows[0].values, vec![Value::int(186)]);
    }

    #[test]
    fn compress_merges_equal_rows() {
        let mut c = Component::new(vec![f("R", 0, "A")]);
        c.push_row(vec![Value::int(1)], 0.3).unwrap();
        c.push_row(vec![Value::int(1)], 0.2).unwrap();
        c.push_row(vec![Value::int(2)], 0.5).unwrap();
        c.compress();
        assert_eq!(c.len(), 2);
        assert!((c.rows[0].prob - 0.5).abs() < PROB_EPSILON);
    }

    #[test]
    fn renormalize_after_row_removal() {
        let mut c = ssn_component();
        c.rows.remove(0); // drop the 0.2 row
        c.renormalize().unwrap();
        assert!((c.total_probability() - 1.0).abs() < PROB_EPSILON);
        assert!((c.rows[0].prob - 0.5).abs() < PROB_EPSILON);
        c.rows.clear();
        assert!(c.renormalize().is_err());
    }

    #[test]
    fn possible_values_and_cell_access() {
        let mut c = ssn_component();
        let vals = c.possible_values(&f("R", 0, "S")).unwrap();
        assert_eq!(vals.len(), 2);
        assert!(c.is_certain(&f("R", 0, "S")).unwrap().is_none());
        assert_eq!(c.value_at(1, &f("R", 1, "S")).unwrap(), &Value::int(185));
        c.set_value(1, &f("R", 1, "S"), Value::int(999)).unwrap();
        assert_eq!(c.value_at(1, &f("R", 1, "S")).unwrap(), &Value::int(999));
        assert!(c.possible_values(&f("X", 0, "A")).is_err());
        assert!(c.value_at(0, &f("X", 0, "A")).is_err());
        assert!(c.set_value(0, &f("X", 0, "A"), Value::int(0)).is_err());
    }
}
