//! Normalization of (probabilistic) WSDs (§7, Figure 20).
//!
//! Normalization searches for an equivalent WSD taking less space:
//!
//! * [`remove_invalid_tuples`] drops tuple slots that are absent from every
//!   world (all-`⊥` columns),
//! * [`compress_component`] merges identical local worlds, summing their
//!   probabilities, and
//! * [`decompose_component`] / [`decompose_all`] factorize components into
//!   products of smaller, probabilistically independent components
//!   (relational factorization).
//!
//! The factorization here is counting-based: a partition `{B1,…,Bk}` of a
//! component's fields is a product decomposition iff `Π|π_Bi(C)| = |C|` *and*
//! the probability of every local world equals the product of its blocks'
//! marginal probabilities.  We refine greedily from singleton blocks by
//! merging pairwise-correlated blocks, then verify with factor checks;
//! higher-order-only dependencies (e.g. three fields correlated by parity
//! while pairwise independent) are kept in one coarser block, which is still
//! a correct — just not always maximal — decomposition (see DESIGN.md).

use crate::component::{Component, LocalWorld, PROB_EPSILON};
use crate::error::Result;
use crate::field::FieldId;
use crate::wsd::Wsd;
use std::collections::BTreeMap;
use ws_relational::Value;

/// Remove tuple slots of `relation` that are invalid, i.e. absent (`⊥`) in
/// every possible world (Fig. 20, `remove invalid tuples`; Example 12).
/// Returns the number of removed tuple slots.
pub fn remove_invalid_tuples(wsd: &mut Wsd, relation: &str) -> Result<usize> {
    let meta = wsd.meta(relation)?.clone();
    let mut removed = 0;
    for t in meta.live_tuples() {
        let mut invalid = false;
        for a in &meta.attrs {
            let field = FieldId::new(relation, t, a.as_ref());
            let values = wsd.possible_values(&field)?;
            if values.len() == 1 && values.contains(&Value::Bottom) {
                invalid = true;
                break;
            }
        }
        if invalid {
            wsd.remove_tuple(relation, t)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Merge identical local worlds of every component, summing probabilities
/// (Fig. 20, `compress`).  Returns the number of rows eliminated.
pub fn compress_all(wsd: &mut Wsd) -> Result<usize> {
    let slots: Vec<usize> = wsd.components().map(|(s, _)| s).collect();
    let mut eliminated = 0;
    for slot in slots {
        let comp = wsd.component_mut(slot)?;
        let before = comp.len();
        comp.compress();
        eliminated += before - comp.len();
    }
    Ok(eliminated)
}

/// Compress one component (convenience wrapper around
/// [`Component::compress`]).
pub fn compress_component(component: &mut Component) {
    component.compress();
}

/// Marginalize a component onto a block of its column positions: group the
/// rows by their projected values and sum probabilities.
fn marginal(component: &Component, block: &[usize]) -> Vec<(Vec<Value>, f64)> {
    let mut groups: BTreeMap<Vec<Value>, f64> = BTreeMap::new();
    for row in &component.rows {
        let key: Vec<Value> = block.iter().map(|&i| row.values[i].clone()).collect();
        *groups.entry(key).or_insert(0.0) += row.prob;
    }
    groups.into_iter().collect()
}

/// Check whether a partition of the column positions factorizes the component
/// both as a relation (support) and as a probability distribution.
fn partition_factorizes(component: &Component, blocks: &[Vec<usize>]) -> bool {
    // Support check: Π|π_Bi(C)| = |distinct rows of C|.
    let distinct_rows: std::collections::BTreeSet<&Vec<Value>> =
        component.rows.iter().map(|r| &r.values).collect();
    let mut product: u128 = 1;
    let marginals: Vec<Vec<(Vec<Value>, f64)>> =
        blocks.iter().map(|b| marginal(component, b)).collect();
    for m in &marginals {
        product = product.saturating_mul(m.len() as u128);
        if product > distinct_rows.len() as u128 {
            return false;
        }
    }
    if product != distinct_rows.len() as u128 {
        return false;
    }
    // Probability check: every row's probability is the product of its blocks'
    // marginal probabilities (after compressing duplicate rows).
    let mut compressed = component.clone();
    compressed.compress();
    for row in &compressed.rows {
        let mut expected = 1.0;
        for (block, m) in blocks.iter().zip(&marginals) {
            let key: Vec<Value> = block.iter().map(|&i| row.values[i].clone()).collect();
            let p = m
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            expected *= p;
        }
        if (expected - row.prob).abs() > PROB_EPSILON {
            return false;
        }
    }
    true
}

/// Whether two columns are (pairwise) probabilistically independent: the
/// joint marginal over `{a, b}` equals the product of the marginals over
/// `{a}` and `{b}`, both in support and in probability.
fn columns_independent(component: &Component, a: usize, b: usize) -> bool {
    let joint = marginal(component, &[a, b]);
    let ma = marginal(component, &[a]);
    let mb = marginal(component, &[b]);
    if joint.len() != ma.len() * mb.len() {
        return false;
    }
    joint.iter().all(|(values, p)| {
        let pa = ma
            .iter()
            .find(|(k, _)| k[0] == values[0])
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        let pb = mb
            .iter()
            .find(|(k, _)| k[0] == values[1])
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        (pa * pb - p).abs() <= PROB_EPSILON
    })
}

/// Factorize a component into a maximal (under pairwise-detectable
/// correlations) list of probabilistically independent components whose
/// composition equals the input.
pub fn decompose_component(component: &Component) -> Vec<Component> {
    let width = component.width();
    if width <= 1 {
        return vec![component.clone()];
    }
    let mut compressed = component.clone();
    compressed.compress();

    // Start from the connected components of the pairwise-correlation graph.
    let mut block_of: Vec<usize> = (0..width).collect();
    fn find(block_of: &mut Vec<usize>, i: usize) -> usize {
        if block_of[i] != i {
            let root = find(block_of, block_of[i]);
            block_of[i] = root;
        }
        block_of[i]
    }
    for a in 0..width {
        for b in (a + 1)..width {
            if !columns_independent(&compressed, a, b) {
                let ra = find(&mut block_of, a);
                let rb = find(&mut block_of, b);
                block_of[ra] = rb;
            }
        }
    }
    let roots: Vec<usize> = (0..width).map(|i| find(&mut block_of, i)).collect();
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    for i in 0..width {
        match blocks.iter_mut().find(|b| roots[b[0]] == roots[i]) {
            Some(b) => b.push(i),
            None => blocks.push(vec![i]),
        }
    }

    // Verify; if higher-order correlations remain, coarsen: keep blocks that
    // are individually factors, merge everything else.
    if !partition_factorizes(&compressed, &blocks) {
        let mut factor_blocks: Vec<Vec<usize>> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        for b in &blocks {
            let complement: Vec<usize> = (0..width).filter(|i| !b.contains(i)).collect();
            if complement.is_empty() {
                rest.extend(b.iter().copied());
                continue;
            }
            if partition_factorizes(&compressed, &[b.clone(), complement]) {
                factor_blocks.push(b.clone());
            } else {
                rest.extend(b.iter().copied());
            }
        }
        if !rest.is_empty() {
            factor_blocks.push(rest);
        }
        blocks = factor_blocks;
        if !partition_factorizes(&compressed, &blocks) {
            // Fall back to the trivial decomposition.
            blocks = vec![(0..width).collect()];
        }
    }

    if blocks.len() == 1 {
        return vec![compressed];
    }
    blocks
        .into_iter()
        .map(|block| {
            let fields: Vec<FieldId> = block
                .iter()
                .map(|&i| compressed.fields[i].clone())
                .collect();
            let rows = marginal(&compressed, &block)
                .into_iter()
                .map(|(values, prob)| LocalWorld::new(values, prob))
                .collect();
            Component { fields, rows }
        })
        .collect()
}

/// Apply [`decompose_component`] to every component of the WSD, replacing
/// decomposable components in place.  Returns the number of additional
/// components gained.
pub fn decompose_all(wsd: &mut Wsd) -> Result<usize> {
    let slots: Vec<usize> = wsd.components().map(|(s, _)| s).collect();
    let mut gained = 0;
    for slot in slots {
        let parts = decompose_component(wsd.component(slot)?);
        if parts.len() > 1 {
            gained += parts.len() - 1;
            wsd.replace_component(slot, parts)?;
        }
    }
    Ok(gained)
}

/// Full normalization pass: remove invalid tuples of every relation, compress
/// every component, and maximally decompose.
pub fn normalize(wsd: &mut Wsd) -> Result<()> {
    let relations: Vec<String> = wsd.relation_names().iter().map(|s| s.to_string()).collect();
    for rel in relations {
        remove_invalid_tuples(wsd, &rel)?;
    }
    compress_all(wsd)?;
    decompose_all(wsd)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsd::example_census_wsd;
    use ws_relational::Value;

    fn f(rel: &str, t: usize, a: &str) -> FieldId {
        FieldId::new(rel, t, a)
    }

    /// A component that is secretly the product of two independent parts.
    fn product_component() -> Component {
        let a = Component::uniform(f("R", 0, "A"), vec![Value::int(1), Value::int(2)]).unwrap();
        let b = Component::weighted(
            f("R", 0, "B"),
            vec![(Value::int(10), 0.3), (Value::int(20), 0.7)],
        )
        .unwrap();
        a.compose(&b)
    }

    #[test]
    fn decompose_splits_independent_fields() {
        let comp = product_component();
        let parts = decompose_component(&comp);
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.width(), 1);
            p.validate().unwrap();
        }
        // Recomposing yields the original distribution.
        let recomposed = parts[0].compose(&parts[1]);
        let mut original = comp.clone();
        original.compress();
        for row in &original.rows {
            let found = recomposed
                .rows
                .iter()
                .find(|r| {
                    // fields may be ordered differently; match by field name.
                    original.fields.iter().enumerate().all(|(i, field)| {
                        let pos = recomposed.position(field).unwrap();
                        r.values[pos] == row.values[i]
                    })
                })
                .unwrap();
            assert!((found.prob - row.prob).abs() < 1e-9);
        }
    }

    #[test]
    fn decompose_keeps_correlated_fields_together() {
        // The SSN component of Fig. 4 is not a product: t1.S and t2.S correlate.
        let mut c = Component::new(vec![f("R", 0, "S"), f("R", 1, "S")]);
        c.push_row(vec![Value::int(185), Value::int(186)], 0.2)
            .unwrap();
        c.push_row(vec![Value::int(785), Value::int(185)], 0.4)
            .unwrap();
        c.push_row(vec![Value::int(785), Value::int(186)], 0.4)
            .unwrap();
        let parts = decompose_component(&c);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].width(), 2);
    }

    #[test]
    fn decompose_detects_probabilistic_dependence_despite_full_support() {
        // Support is the full product {1,2}×{1,2} but probabilities correlate.
        let mut c = Component::new(vec![f("R", 0, "A"), f("R", 0, "B")]);
        c.push_row(vec![Value::int(1), Value::int(1)], 0.4).unwrap();
        c.push_row(vec![Value::int(1), Value::int(2)], 0.1).unwrap();
        c.push_row(vec![Value::int(2), Value::int(1)], 0.1).unwrap();
        c.push_row(vec![Value::int(2), Value::int(2)], 0.4).unwrap();
        let parts = decompose_component(&c);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn decompose_single_row_component_into_singletons() {
        let mut c = Component::new(vec![f("R", 0, "A"), f("R", 0, "B"), f("R", 0, "C")]);
        c.push_row(vec![Value::int(1), Value::int(2), Value::int(3)], 1.0)
            .unwrap();
        let parts = decompose_component(&c);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.len() == 1 && p.width() == 1));
    }

    #[test]
    fn higher_order_dependency_is_kept_coarse_but_correct() {
        // XOR-style: C = A ⊕ B; all pairs are independent but the triple is not.
        let mut c = Component::new(vec![f("R", 0, "A"), f("R", 0, "B"), f("R", 0, "C")]);
        for (a, b) in [(0i64, 0i64), (0, 1), (1, 0), (1, 1)] {
            c.push_row(vec![Value::int(a), Value::int(b), Value::int(a ^ b)], 0.25)
                .unwrap();
        }
        let parts = decompose_component(&c);
        // No factorization exists, so the component must stay whole.
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].width(), 3);
    }

    #[test]
    fn decompose_all_splits_composed_wsd_back() {
        let mut wsd = example_census_wsd();
        let before_worlds = wsd.rep().unwrap();
        let before_components = wsd.component_count();
        // Artificially compose two independent components.
        wsd.compose_fields(&[f("R", 0, "M"), f("R", 1, "M")])
            .unwrap();
        assert_eq!(wsd.component_count(), before_components - 1);
        let gained = decompose_all(&mut wsd).unwrap();
        assert_eq!(gained, 1);
        assert_eq!(wsd.component_count(), before_components);
        wsd.validate().unwrap();
        assert!(before_worlds.same_worlds(&wsd.rep().unwrap()));
        assert!(before_worlds.same_distribution(&wsd.rep().unwrap(), 1e-9));
    }

    #[test]
    fn compress_all_merges_duplicate_local_worlds() {
        let mut wsd = Wsd::new();
        wsd.register_relation("R", &["A"], 1).unwrap();
        let mut c = Component::new(vec![f("R", 0, "A")]);
        c.push_row(vec![Value::int(1)], 0.25).unwrap();
        c.push_row(vec![Value::int(1)], 0.25).unwrap();
        c.push_row(vec![Value::int(2)], 0.5).unwrap();
        wsd.add_component(c).unwrap();
        let eliminated = compress_all(&mut wsd).unwrap();
        assert_eq!(eliminated, 1);
        let field = f("R", 0, "A");
        assert_eq!(wsd.component_of(&field).unwrap().len(), 2);
    }

    #[test]
    fn remove_invalid_tuples_drops_all_bottom_slots() {
        // Figure 11 (a) / Example 12: tuple t2 of P is ⊥ in all worlds.
        let mut wsd = Wsd::new();
        wsd.register_relation("P", &["A", "C"], 2).unwrap();
        wsd.set_uniform(f("P", 0, "A"), vec![Value::int(1), Value::int(2)])
            .unwrap();
        wsd.set_certain(f("P", 0, "C"), Value::int(7)).unwrap();
        wsd.set_certain(f("P", 1, "A"), Value::Bottom).unwrap();
        wsd.set_certain(f("P", 1, "C"), Value::Bottom).unwrap();
        let removed = remove_invalid_tuples(&mut wsd, "P").unwrap();
        assert_eq!(removed, 1);
        wsd.validate().unwrap();
        for (db, _) in wsd.enumerate_worlds(10).unwrap() {
            assert_eq!(db.relation("P").unwrap().len(), 1);
        }
        // Idempotent.
        assert_eq!(remove_invalid_tuples(&mut wsd, "P").unwrap(), 0);
    }

    #[test]
    fn full_normalization_preserves_the_world_set() {
        let mut wsd = example_census_wsd();
        // Mess the representation up: compose everything into one component.
        let fields: Vec<FieldId> = ["S", "N", "M"]
            .iter()
            .flat_map(|a| (0..2).map(move |t| f("R", t, a)))
            .collect();
        let before = wsd.rep().unwrap();
        wsd.compose_fields(&fields).unwrap();
        assert_eq!(wsd.component_count(), 1);
        normalize(&mut wsd).unwrap();
        wsd.validate().unwrap();
        // The maximal decomposition of Fig. 4 has 5 components.
        assert_eq!(wsd.component_count(), 5);
        let after = wsd.rep().unwrap();
        assert!(before.same_worlds(&after));
        assert!(before.same_distribution(&after, 1e-9));
    }

    use crate::wsd::Wsd;
}
