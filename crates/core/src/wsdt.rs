//! WSDs with template relations (WSDTs, §3 "Adding Template Relations").
//!
//! A template relation stores, once and for all, the information that is the
//! same in every possible world; fields on which the worlds disagree hold the
//! placeholder `?` and their possible values live in the (multi-local-world)
//! components.  A WSDT is equivalent to a WSD in which every certain field
//! has been split off into its own single-local-world component; the
//! conversion functions below go back and forth between the two views.

use crate::component::Component;
use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::normalize;
use crate::wsd::Wsd;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use ws_relational::{Relation, Schema, Tuple, Value};

/// A world-set decomposition with template relations.
#[derive(Clone, Debug)]
pub struct Wsdt {
    /// One template relation per represented relation, with `?` placeholders
    /// for uncertain fields.  Row `i` of a template corresponds to the `i`-th
    /// *live* tuple slot listed in [`Wsdt::tuple_slots`].
    pub templates: BTreeMap<String, Relation>,
    /// For each relation, the tuple slots backing the template rows.
    pub tuple_slots: BTreeMap<String, Vec<usize>>,
    /// The components defining the possible values of the placeholders.
    pub components: Vec<Component>,
}

impl Wsdt {
    /// Build a WSDT from a WSD.
    ///
    /// Certain fields (a single possible value) move into the templates; all
    /// other fields keep their component columns.  The input is first
    /// compressed so that duplicate local worlds do not hide certainty.
    pub fn from_wsd(wsd: &Wsd) -> Result<Self> {
        let mut wsd = wsd.clone();
        normalize::compress_all(&mut wsd)?;

        let mut templates = BTreeMap::new();
        let mut tuple_slots = BTreeMap::new();
        let mut uncertain: BTreeSet<FieldId> = BTreeSet::new();

        for name in wsd.relation_names().iter().map(|s| s.to_string()) {
            let meta = wsd.meta(&name)?.clone();
            let schema = Schema::from_parts(Arc::from(name.as_str()), meta.attrs.clone());
            let mut template = Relation::new(schema);
            let mut slots = Vec::new();
            for t in meta.live_tuples() {
                let mut values = Vec::with_capacity(meta.attrs.len());
                for a in &meta.attrs {
                    let field = FieldId::new(&name, t, a.as_ref());
                    match wsd.certain_value(&field)? {
                        Some(v) => values.push(v),
                        None => {
                            values.push(Value::Unknown);
                            uncertain.insert(field);
                        }
                    }
                }
                template.push(Tuple::new(values))?;
                slots.push(t);
            }
            templates.insert(name.clone(), template);
            tuple_slots.insert(name, slots);
        }

        // Keep only the uncertain columns of each component.
        let mut components = Vec::new();
        for (_, comp) in wsd.components() {
            let mut c = comp.clone();
            c.project_to(&uncertain);
            if c.width() > 0 {
                c.compress();
                components.push(c);
            }
        }
        Ok(Wsdt {
            templates,
            tuple_slots,
            components,
        })
    }

    /// Rebuild the equivalent WSD: template values become certain
    /// single-local-world components, placeholders keep their components.
    pub fn to_wsd(&self) -> Result<Wsd> {
        let mut wsd = Wsd::new();
        for (name, template) in &self.templates {
            let attrs: Vec<&str> = template
                .schema()
                .attrs()
                .iter()
                .map(|a| a.as_ref())
                .collect();
            let slots = self
                .tuple_slots
                .get(name)
                .ok_or_else(|| WsError::unknown_relation(name.clone()))?;
            let tuple_count = slots.iter().copied().max().map_or(0, |m| m + 1);
            wsd.register_relation(name, &attrs, tuple_count)?;
            // Mark slots not backed by a template row as removed.
            for t in 0..tuple_count {
                if !slots.contains(&t) {
                    wsd.remove_tuple(name, t)?;
                }
            }
        }
        for component in &self.components {
            wsd.add_component(component.clone())?;
        }
        for (name, template) in &self.templates {
            let slots = &self.tuple_slots[name];
            for (row, &t) in template.rows().iter().zip(slots) {
                for (i, a) in template.schema().attrs().iter().enumerate() {
                    if !row[i].is_unknown() {
                        wsd.set_certain(FieldId::new(name, t, a.as_ref()), row[i].clone())?;
                    }
                }
            }
        }
        wsd.validate()?;
        Ok(wsd)
    }

    /// Total number of placeholder (`?`) fields across all templates.
    pub fn placeholder_count(&self) -> usize {
        self.templates
            .values()
            .flat_map(|t| t.rows())
            .map(|row| row.values().iter().filter(|v| v.is_unknown()).count())
            .sum()
    }

    /// Number of components (equal to the number of independent groups of
    /// placeholders).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of components defining more than one placeholder.
    pub fn multi_placeholder_components(&self) -> usize {
        self.components.iter().filter(|c| c.width() > 1).count()
    }

    /// Total number of template rows (≈ the size of one world).
    pub fn template_rows(&self) -> usize {
        self.templates.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsd::example_census_wsd;

    #[test]
    fn figure5_template_and_components() {
        // The WSDT of Figure 5: names are certain, SSNs and marital statuses
        // are placeholders; three components (SSN pair, t1.M, t2.M).
        let wsd = example_census_wsd();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        let template = &wsdt.templates["R"];
        assert_eq!(template.len(), 2);
        // N column certain, S and M columns are placeholders.
        for row in template.rows() {
            assert!(row[1].is_constant());
            assert!(row[0].is_unknown());
            assert!(row[2].is_unknown());
        }
        assert_eq!(wsdt.placeholder_count(), 4);
        assert_eq!(wsdt.component_count(), 3);
        assert_eq!(wsdt.multi_placeholder_components(), 1);
        assert_eq!(wsdt.template_rows(), 2);
    }

    #[test]
    fn wsdt_round_trip_preserves_the_world_set() {
        let wsd = example_census_wsd();
        let before = wsd.rep().unwrap();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        let back = wsdt.to_wsd().unwrap();
        let after = back.rep().unwrap();
        assert!(before.same_worlds(&after));
        assert!(before.same_distribution(&after, 1e-9));
    }

    #[test]
    fn fully_certain_relation_has_no_components() {
        let mut rel = Relation::new(Schema::new("S", &["X", "Y"]).unwrap());
        rel.push_values([1i64, 2]).unwrap();
        rel.push_values([3i64, 4]).unwrap();
        let mut wsd = Wsd::new();
        wsd.add_certain_relation(&rel).unwrap();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        assert_eq!(wsdt.component_count(), 0);
        assert_eq!(wsdt.placeholder_count(), 0);
        assert!(wsdt.templates["S"].set_eq(&rel));
        let back = wsdt.to_wsd().unwrap();
        assert_eq!(back.rep().unwrap().len(), 1);
    }

    #[test]
    fn removed_tuples_survive_the_round_trip() {
        let mut wsd = example_census_wsd();
        wsd.remove_tuple("R", 0).unwrap();
        let before = wsd.rep().unwrap();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        assert_eq!(wsdt.templates["R"].len(), 1);
        let back = wsdt.to_wsd().unwrap();
        assert!(before.same_worlds(&back.rep().unwrap()));
    }

    #[test]
    fn compression_moves_spuriously_uncertain_fields_to_the_template() {
        // A component listing the same value twice is certain after compress.
        let mut wsd = Wsd::new();
        wsd.register_relation("R", &["A"], 1).unwrap();
        let mut c = Component::new(vec![FieldId::new("R", 0, "A")]);
        c.push_row(vec![Value::int(7)], 0.5).unwrap();
        c.push_row(vec![Value::int(7)], 0.5).unwrap();
        wsd.add_component(c).unwrap();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        assert_eq!(wsdt.placeholder_count(), 0);
        assert_eq!(wsdt.component_count(), 0);
        assert_eq!(wsdt.templates["R"].rows()[0][0], Value::int(7));
    }
}
