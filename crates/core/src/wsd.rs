//! World-set decompositions (WSDs).
//!
//! A WSD represents a finite set of possible worlds over a relational schema
//! as a set of [`Component`]s whose product is a world-set relation of the
//! world-set (§3, Definitions 1–2).  Each field `R.t.A` of the inlined schema
//! is covered by exactly one component; choosing one local world per
//! component yields one possible world whose probability is the product of
//! the chosen local worlds' probabilities.

use crate::component::{Component, LocalWorld};
use crate::error::{Result, WsError};
use crate::field::{FieldId, TupleId};
use crate::worldset::WorldSet;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use ws_relational::{Database, Relation, Schema, Tuple, Value};

/// Default cap on explicit world enumeration (used by [`Wsd::rep`]).
pub const DEFAULT_WORLD_LIMIT: u128 = 1_000_000;

/// Metadata about one relation represented by a WSD.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationMeta {
    /// The attribute names, in schema order.
    pub attrs: Vec<Arc<str>>,
    /// `|R|max`: the number of tuple slots of the relation.
    pub tuple_count: usize,
    /// Tuple slots removed entirely by normalization (absent from all worlds).
    pub removed: BTreeSet<usize>,
}

impl RelationMeta {
    /// The tuple slots that are still live (not removed by normalization).
    pub fn live_tuples(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tuple_count).filter(move |t| !self.removed.contains(t))
    }

    /// The schema of the relation (named-perspective view).
    pub fn schema(&self, name: &str) -> Schema {
        Schema::from_parts(Arc::from(name), self.attrs.clone())
    }
}

/// A (probabilistic) world-set decomposition.
#[derive(Clone, Debug, Default)]
pub struct Wsd {
    relations: BTreeMap<String, RelationMeta>,
    /// Component slots; `None` marks slots vacated by composition/removal.
    components: Vec<Option<Component>>,
    /// Which component slot covers each field.
    field_index: HashMap<FieldId, usize>,
}

impl Wsd {
    /// Create an empty WSD (representing the single empty database if no
    /// relations are registered).
    pub fn new() -> Self {
        Wsd::default()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Register a relation with the given attributes and number of tuple
    /// slots.  Fields must subsequently be covered via [`Wsd::set_certain`],
    /// [`Wsd::set_uniform`], [`Wsd::set_alternatives`] or
    /// [`Wsd::add_component`].
    pub fn register_relation<S: AsRef<str>>(
        &mut self,
        name: impl AsRef<str>,
        attrs: &[S],
        tuple_count: usize,
    ) -> Result<()> {
        let name = name.as_ref().to_string();
        if self.relations.contains_key(&name) {
            return Err(WsError::invalid(format!(
                "relation `{name}` already registered"
            )));
        }
        self.relations.insert(
            name,
            RelationMeta {
                attrs: attrs.iter().map(|a| Arc::from(a.as_ref())).collect(),
                tuple_count,
                removed: BTreeSet::new(),
            },
        );
        Ok(())
    }

    /// Register a completely certain relation: every field becomes its own
    /// single-row component with probability 1.
    pub fn add_certain_relation(&mut self, relation: &Relation) -> Result<()> {
        let name = relation.schema().relation().to_string();
        let attrs: Vec<&str> = relation
            .schema()
            .attrs()
            .iter()
            .map(|a| a.as_ref())
            .collect();
        self.register_relation(&name, &attrs, relation.len())?;
        for (t, row) in relation.rows().iter().enumerate() {
            for (a, attr) in attrs.iter().enumerate() {
                self.set_certain(FieldId::new(&name, t, attr), row[a].clone())?;
            }
        }
        Ok(())
    }

    /// Append a fresh tuple slot to a registered relation, returning its
    /// index.  The new slot's fields are uncovered; callers must cover them
    /// (certainly, or with a presence-splitting component) before the WSD
    /// validates again.  This is the structural half of the update language's
    /// inserts.
    pub fn append_tuple_slot(&mut self, relation: &str) -> Result<usize> {
        let meta = self.meta_mut(relation)?;
        let slot = meta.tuple_count;
        meta.tuple_count += 1;
        Ok(slot)
    }

    /// Cover a field with a certain value.
    pub fn set_certain(&mut self, field: FieldId, value: Value) -> Result<()> {
        self.add_component(Component::certain(field, value))
    }

    /// Cover a field with equally likely alternatives (or-set semantics).
    pub fn set_uniform(&mut self, field: FieldId, alternatives: Vec<Value>) -> Result<()> {
        self.add_component(Component::uniform(field, alternatives)?)
    }

    /// Cover a field with weighted alternatives.
    pub fn set_alternatives(
        &mut self,
        field: FieldId,
        alternatives: Vec<(Value, f64)>,
    ) -> Result<()> {
        self.add_component(Component::weighted(field, alternatives)?)
    }

    /// Add a (validated) component covering the fields it mentions.
    ///
    /// All fields must belong to registered relations, address tuple slots
    /// within range, and not already be covered by another component.
    pub fn add_component(&mut self, component: Component) -> Result<()> {
        component.validate()?;
        for f in &component.fields {
            let meta = self
                .relations
                .get(f.relation.as_ref())
                .ok_or_else(|| WsError::unknown_relation(f.relation.as_ref()))?;
            if f.tuple.0 >= meta.tuple_count {
                return Err(WsError::invalid(format!(
                    "tuple slot {} out of range for relation `{}`",
                    f.tuple, f.relation
                )));
            }
            if !meta.attrs.contains(&f.attr) {
                return Err(WsError::invalid(format!(
                    "attribute `{}` not in schema of `{}`",
                    f.attr, f.relation
                )));
            }
            if self.field_index.contains_key(f) {
                return Err(WsError::invalid(format!(
                    "field {f} is already covered by a component"
                )));
            }
        }
        let slot = self.components.len();
        for f in &component.fields {
            self.field_index.insert(f.clone(), slot);
        }
        self.components.push(Some(component));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Names of the relations represented by this WSD.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Whether a relation is registered.
    pub fn contains_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// The metadata of a relation.
    pub fn meta(&self, name: &str) -> Result<&RelationMeta> {
        self.relations
            .get(name)
            .ok_or_else(|| WsError::unknown_relation(name))
    }

    fn meta_mut(&mut self, name: &str) -> Result<&mut RelationMeta> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| WsError::unknown_relation(name))
    }

    /// Remove a relation and all fields referring to it from the WSD.
    ///
    /// Dropping a relation marginalizes out the uncertainty that only
    /// affected that relation; correlations with other relations are
    /// preserved because shared components simply lose the dropped columns.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        let meta = self.meta(name)?.clone();
        for t in 0..meta.tuple_count {
            for a in &meta.attrs {
                let field = FieldId::from_parts(Arc::from(name), TupleId(t), a.clone());
                if self.field_index.contains_key(&field) {
                    self.remove_field(&field)?;
                }
            }
        }
        self.relations.remove(name);
        Ok(())
    }

    /// The fields of one tuple slot of a relation, in schema order.
    pub fn tuple_fields(&self, relation: &str, tuple: usize) -> Result<Vec<FieldId>> {
        let meta = self.meta(relation)?;
        Ok(meta
            .attrs
            .iter()
            .map(|a| FieldId::from_parts(Arc::from(relation), TupleId(tuple), a.clone()))
            .collect())
    }

    /// The component slot covering a field.
    pub fn slot_of(&self, field: &FieldId) -> Result<usize> {
        self.field_index
            .get(field)
            .copied()
            .ok_or_else(|| WsError::unknown_field(field))
    }

    /// The component covering a field.
    pub fn component_of(&self, field: &FieldId) -> Result<&Component> {
        let slot = self.slot_of(field)?;
        self.component(slot)
    }

    /// The component stored at a slot.
    pub fn component(&self, slot: usize) -> Result<&Component> {
        self.components
            .get(slot)
            .and_then(Option::as_ref)
            .ok_or_else(|| WsError::invalid(format!("component slot {slot} is empty")))
    }

    /// Mutable access to the component stored at a slot.
    pub fn component_mut(&mut self, slot: usize) -> Result<&mut Component> {
        self.components
            .get_mut(slot)
            .and_then(Option::as_mut)
            .ok_or_else(|| WsError::invalid(format!("component slot {slot} is empty")))
    }

    /// Iterate over the live components (slot, component).
    pub fn components(&self) -> impl Iterator<Item = (usize, &Component)> {
        self.components
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }

    /// Number of live components (the `m` of an `m`-WSD).
    pub fn component_count(&self) -> usize {
        self.components().count()
    }

    /// The possible values of a field across its component's local worlds.
    pub fn possible_values(&self, field: &FieldId) -> Result<BTreeSet<Value>> {
        self.component_of(field)?.possible_values(field)
    }

    /// The certain value of a field, if it has exactly one possible value.
    pub fn certain_value(&self, field: &FieldId) -> Result<Option<Value>> {
        self.component_of(field)?.is_certain(field)
    }

    // ------------------------------------------------------------------
    // Structural mutation
    // ------------------------------------------------------------------

    /// Compose the components at the given slots into one (the `compose`
    /// operation of §4), returning the slot of the merged component.
    pub fn compose_slots(&mut self, slots: &[usize]) -> Result<usize> {
        let mut distinct: Vec<usize> = slots.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.is_empty() {
            return Err(WsError::invalid("compose requires at least one slot"));
        }
        let target = distinct[0];
        // Verify all slots are live before mutating anything.
        for &s in &distinct {
            self.component(s)?;
        }
        let mut merged = self.components[target].take().unwrap();
        for &s in &distinct[1..] {
            let other = self.components[s].take().unwrap();
            merged = merged.compose(&other);
        }
        for f in &merged.fields {
            self.field_index.insert(f.clone(), target);
        }
        self.components[target] = Some(merged);
        Ok(target)
    }

    /// Compose the components covering the given fields, returning the slot
    /// of the resulting component.
    pub fn compose_fields(&mut self, fields: &[FieldId]) -> Result<usize> {
        let slots: Vec<usize> = fields
            .iter()
            .map(|f| self.slot_of(f))
            .collect::<Result<_>>()?;
        self.compose_slots(&slots)
    }

    /// The `ext`-based copy of one field: add `dst` as a new column of the
    /// component covering `src`, copying `src`'s values.
    pub fn ext_field(&mut self, src: &FieldId, dst: FieldId) -> Result<()> {
        let meta = self
            .relations
            .get(dst.relation.as_ref())
            .ok_or_else(|| WsError::unknown_relation(dst.relation.as_ref()))?;
        if dst.tuple.0 >= meta.tuple_count {
            return Err(WsError::invalid(format!(
                "tuple slot {} out of range for relation `{}`",
                dst.tuple, dst.relation
            )));
        }
        if self.field_index.contains_key(&dst) {
            return Err(WsError::invalid(format!("field {dst} already covered")));
        }
        let slot = self.slot_of(src)?;
        self.component_mut(slot)?.ext(src, dst.clone())?;
        self.field_index.insert(dst, slot);
        Ok(())
    }

    /// Remove a field's column from its component.  Components left without
    /// columns are dropped (their uncertainty is marginalized out).
    pub fn remove_field(&mut self, field: &FieldId) -> Result<()> {
        let slot = self.slot_of(field)?;
        {
            let comp = self.component_mut(slot)?;
            comp.project_away(field)?;
            if comp.width() == 0 {
                self.components[slot] = None;
            }
        }
        self.field_index.remove(field);
        Ok(())
    }

    /// Remove an entire tuple slot of a relation: all its fields are dropped
    /// and the slot is marked as removed (absent from every world).
    pub fn remove_tuple(&mut self, relation: &str, tuple: usize) -> Result<()> {
        let fields = self.tuple_fields(relation, tuple)?;
        for f in fields {
            if self.field_index.contains_key(&f) {
                self.remove_field(&f)?;
            }
        }
        self.meta_mut(relation)?.removed.insert(tuple);
        Ok(())
    }

    /// Replace the component at `slot` by one or more parts covering exactly
    /// the same fields (used by the `decompose` normalization).  The first
    /// part stays in `slot`; the remaining parts get fresh slots.
    pub fn replace_component(&mut self, slot: usize, parts: Vec<Component>) -> Result<()> {
        let original = self.component(slot)?;
        let original_fields: BTreeSet<FieldId> = original.fields.iter().cloned().collect();
        let part_fields: BTreeSet<FieldId> = parts
            .iter()
            .flat_map(|p| p.fields.iter().cloned())
            .collect();
        let total: usize = parts.iter().map(|p| p.fields.len()).sum();
        if parts.is_empty() || part_fields != original_fields || total != original_fields.len() {
            return Err(WsError::invalid(
                "replacement parts must partition exactly the original component's fields",
            ));
        }
        for p in &parts {
            p.validate()?;
        }
        let mut parts = parts;
        let first = parts.remove(0);
        for f in &first.fields {
            self.field_index.insert(f.clone(), slot);
        }
        self.components[slot] = Some(first);
        for p in parts {
            let new_slot = self.components.len();
            for f in &p.fields {
                self.field_index.insert(f.clone(), new_slot);
            }
            self.components.push(Some(p));
        }
        Ok(())
    }

    /// Restrict a relation's schema to a subset of its attributes (used by the
    /// projection operator after the corresponding field columns have been
    /// dropped).  The attribute list is replaced by `attrs` in the given order.
    pub fn set_relation_attrs(&mut self, name: &str, attrs: Vec<Arc<str>>) -> Result<()> {
        let meta = self.meta_mut(name)?;
        meta.attrs = attrs;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw structural access (the persistence layer's codec surface)
    // ------------------------------------------------------------------

    /// The raw component slot array, including the `None` holes left behind
    /// by composition and removal.  The slot *indices* are part of the
    /// structural identity of the decomposition (field coverage is recorded
    /// per slot), so the persistence codec serializes this array verbatim
    /// rather than the compacted [`Wsd::components`] view.
    pub fn raw_components(&self) -> &[Option<Component>] {
        &self.components
    }

    /// Iterate over `(name, metadata)` of every registered relation, in
    /// sorted name order.
    pub fn relation_metas(&self) -> impl Iterator<Item = (&str, &RelationMeta)> {
        self.relations.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Rebuild a WSD from its raw parts: the relation metadata and the
    /// component slot array exactly as [`Wsd::relation_metas`] and
    /// [`Wsd::raw_components`] exposed them.  The field index is
    /// reconstructed from the component schemas; the result is validated, so
    /// a corrupted snapshot (double-covered or uncovered fields, bad
    /// probabilities) is rejected instead of silently accepted.
    pub fn from_raw_parts(
        relations: Vec<(String, RelationMeta)>,
        components: Vec<Option<Component>>,
    ) -> Result<Wsd> {
        let mut wsd = Wsd::new();
        for (name, meta) in relations {
            if wsd.relations.insert(name.clone(), meta).is_some() {
                return Err(WsError::invalid(format!(
                    "relation `{name}` appears twice in the raw parts"
                )));
            }
        }
        for (slot, component) in components.iter().enumerate() {
            let Some(component) = component else { continue };
            for f in &component.fields {
                if wsd.field_index.insert(f.clone(), slot).is_some() {
                    return Err(WsError::invalid(format!(
                        "field {f} is covered by two components in the raw parts"
                    )));
                }
            }
        }
        wsd.components = components;
        wsd.validate()?;
        Ok(wsd)
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check the structural invariants of the WSD: every live field of every
    /// registered relation is covered by exactly one live component, the
    /// field index agrees with the component schemas, and every component
    /// validates (arity, probabilities summing to one).
    pub fn validate(&self) -> Result<()> {
        for (slot, comp) in self.components() {
            comp.validate()?;
            for f in &comp.fields {
                match self.field_index.get(f) {
                    Some(&s) if s == slot => {}
                    _ => {
                        return Err(WsError::invalid(format!(
                            "field {f} not indexed to its component"
                        )))
                    }
                }
            }
        }
        for (field, &slot) in &self.field_index {
            let comp = self.component(slot)?;
            if comp.position(field).is_none() {
                return Err(WsError::invalid(format!(
                    "field {field} indexed to a component that does not define it"
                )));
            }
        }
        for (name, meta) in &self.relations {
            for t in meta.live_tuples() {
                for a in &meta.attrs {
                    let field =
                        FieldId::from_parts(Arc::from(name.as_str()), TupleId(t), a.clone());
                    if !self.field_index.contains_key(&field) {
                        return Err(WsError::invalid(format!(
                            "field {field} of relation `{name}` is not covered"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // World semantics
    // ------------------------------------------------------------------

    /// The number of component-tuple combinations, i.e. the number of worlds
    /// described by the decomposition (worlds may repeat; saturating).
    pub fn world_count(&self) -> u128 {
        let mut n: u128 = 1;
        for (_, c) in self.components() {
            n = n.saturating_mul(c.len() as u128);
        }
        n
    }

    /// Enumerate all possible worlds with their probabilities.
    ///
    /// This materializes the represented world-set and is intended for
    /// testing, oracles and small examples; it fails if the decomposition
    /// describes more than `limit` worlds.
    pub fn enumerate_worlds(&self, limit: u128) -> Result<Vec<(Database, f64)>> {
        let count = self.world_count();
        if count > limit {
            return Err(WsError::TooManyWorlds {
                worlds: count,
                limit,
            });
        }
        let slots: Vec<usize> = self.components().map(|(i, _)| i).collect();
        let mut choice = vec![0usize; slots.len()];
        let mut out = Vec::new();
        loop {
            let mut prob = 1.0;
            for (k, &slot) in slots.iter().enumerate() {
                prob *= self.component(slot)?.rows[choice[k]].prob;
            }
            out.push((self.world_for_choice(&slots, &choice)?, prob));
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == slots.len() {
                    return Ok(out);
                }
                choice[k] += 1;
                if choice[k] < self.component(slots[k])?.len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
            if slots.is_empty() {
                return Ok(out);
            }
        }
    }

    /// Build the database obtained by picking the given local world from each
    /// listed component slot.
    fn world_for_choice(&self, slots: &[usize], choice: &[usize]) -> Result<Database> {
        let mut db = Database::new();
        for (name, meta) in &self.relations {
            let schema = meta.schema(name);
            let mut rel = Relation::new(schema);
            for t in meta.live_tuples() {
                let mut values = Vec::with_capacity(meta.attrs.len());
                let mut dropped = false;
                for a in &meta.attrs {
                    let field =
                        FieldId::from_parts(Arc::from(name.as_str()), TupleId(t), a.clone());
                    let slot = self.slot_of(&field)?;
                    let k = slots
                        .iter()
                        .position(|&s| s == slot)
                        .ok_or_else(|| WsError::invalid("component slot not enumerated"))?;
                    let comp = self.component(slot)?;
                    let pos = comp
                        .position(&field)
                        .ok_or_else(|| WsError::unknown_field(&field))?;
                    let v = comp.rows[choice[k]].values[pos].clone();
                    if v.is_bottom() {
                        dropped = true;
                        break;
                    }
                    values.push(v);
                }
                if !dropped {
                    let tuple = Tuple::new(values);
                    if !rel.contains(&tuple) {
                        rel.push(tuple)?;
                    }
                }
            }
            db.insert_relation(rel);
        }
        Ok(db)
    }

    /// The represented set of possible worlds, `rep(W)`, with duplicate
    /// worlds merged and their probabilities added.
    pub fn rep(&self) -> Result<WorldSet> {
        self.rep_with_limit(DEFAULT_WORLD_LIMIT)
    }

    /// Like [`Wsd::rep`] with an explicit enumeration limit.
    pub fn rep_with_limit(&self, limit: u128) -> Result<WorldSet> {
        Ok(WorldSet::from_weighted_worlds(
            self.enumerate_worlds(limit)?,
        ))
    }

    /// The marginal one-relation view: enumerate the possible worlds of a
    /// single relation (other relations' uncertainty is marginalized out).
    pub fn rep_relation(&self, relation: &str, limit: u128) -> Result<Vec<(Relation, f64)>> {
        let meta = self.meta(relation)?.clone();
        let worlds = self.enumerate_worlds(limit)?;
        let mut out: Vec<(Relation, f64)> = Vec::new();
        for (db, p) in worlds {
            let rel = db.relation(relation)?.clone();
            match out.iter_mut().find(|(r, _)| r.set_eq(&rel)) {
                Some((_, q)) => *q += p,
                None => out.push((rel, p)),
            }
        }
        let _ = meta;
        Ok(out)
    }

    /// Probability-weighted local worlds of one component covering a field.
    pub fn local_worlds(&self, field: &FieldId) -> Result<&[LocalWorld]> {
        Ok(&self.component_of(field)?.rows)
    }
}

impl fmt::Display for Wsd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WSD with {} relation(s), {} component(s), ~{} world(s)",
            self.relations.len(),
            self.component_count(),
            self.world_count()
        )?;
        for (slot, comp) in self.components() {
            write!(f, "  C{slot}: [")?;
            for (i, field) in comp.fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{field}")?;
            }
            writeln!(f, "] ({} local worlds)", comp.len())?;
        }
        Ok(())
    }
}

/// Build the WSD of the introduction's running example (Figures 4/5):
/// relation `R[S, N, M]` with two tuples, correlated social security numbers
/// and independent marital statuses.  Used by tests, examples and benches.
pub fn example_census_wsd() -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["S", "N", "M"], 2).unwrap();
    // Correlated SSN component (after cleaning with the uniqueness constraint).
    let mut ssn = Component::new(vec![FieldId::new("R", 0, "S"), FieldId::new("R", 1, "S")]);
    ssn.push_row(vec![Value::int(185), Value::int(186)], 0.2)
        .unwrap();
    ssn.push_row(vec![Value::int(785), Value::int(185)], 0.4)
        .unwrap();
    ssn.push_row(vec![Value::int(785), Value::int(186)], 0.4)
        .unwrap();
    wsd.add_component(ssn).unwrap();
    wsd.set_certain(FieldId::new("R", 0, "N"), Value::text("Smith"))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 1, "N"), Value::text("Brown"))
        .unwrap();
    wsd.set_alternatives(
        FieldId::new("R", 0, "M"),
        vec![(Value::int(1), 0.7), (Value::int(2), 0.3)],
    )
    .unwrap();
    wsd.set_uniform(
        FieldId::new("R", 1, "M"),
        vec![Value::int(1), Value::int(2), Value::int(3), Value::int(4)],
    )
    .unwrap();
    wsd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_wsd_has_expected_shape() {
        let wsd = example_census_wsd();
        assert_eq!(wsd.relation_names(), vec!["R"]);
        assert!(wsd.contains_relation("R"));
        assert_eq!(wsd.component_count(), 5);
        assert_eq!(wsd.world_count(), 3 * 2 * 4);
        wsd.validate().unwrap();
    }

    #[test]
    fn world_probabilities_multiply_across_components() {
        let wsd = example_census_wsd();
        let worlds = wsd.enumerate_worlds(1000).unwrap();
        assert_eq!(worlds.len(), 24);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // The world from Example 3: SSNs (185, 186), marital (2, 2) has
        // probability 0.2 * 1 * 0.3 * 1 * 0.25 = 0.015.
        let target: f64 = 0.2 * 0.3 * 0.25;
        let found = worlds.iter().any(|(db, p)| {
            let r = db.relation("R").unwrap();
            r.len() == 2
                && r.contains(&Tuple::from_iter([
                    Value::int(185),
                    Value::text("Smith"),
                    Value::int(2),
                ]))
                && r.contains(&Tuple::from_iter([
                    Value::int(186),
                    Value::text("Brown"),
                    Value::int(2),
                ]))
                && (p - target).abs() < 1e-9
        });
        assert!(found);
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let wsd = example_census_wsd();
        assert!(matches!(
            wsd.enumerate_worlds(3),
            Err(WsError::TooManyWorlds { .. })
        ));
        assert!(wsd.rep_with_limit(3).is_err());
    }

    #[test]
    fn registering_and_covering_fields() {
        let mut wsd = Wsd::new();
        wsd.register_relation("R", &["A", "B"], 1).unwrap();
        assert!(wsd.register_relation("R", &["A"], 1).is_err());
        wsd.set_certain(FieldId::new("R", 0, "A"), Value::int(1))
            .unwrap();
        // Covering the same field twice fails.
        assert!(wsd
            .set_certain(FieldId::new("R", 0, "A"), Value::int(2))
            .is_err());
        // Unknown relation / attribute / out-of-range tuple fail.
        assert!(wsd
            .set_certain(FieldId::new("S", 0, "A"), Value::int(1))
            .is_err());
        assert!(wsd
            .set_certain(FieldId::new("R", 0, "Z"), Value::int(1))
            .is_err());
        assert!(wsd
            .set_certain(FieldId::new("R", 5, "B"), Value::int(1))
            .is_err());
        // Validation notices the uncovered field R.t1.B.
        assert!(wsd.validate().is_err());
        wsd.set_uniform(
            FieldId::new("R", 0, "B"),
            vec![Value::int(1), Value::int(2)],
        )
        .unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.world_count(), 2);
    }

    #[test]
    fn add_certain_relation_covers_all_fields() {
        let mut rel = Relation::new(Schema::new("S", &["X", "Y"]).unwrap());
        rel.push_values([1i64, 2]).unwrap();
        rel.push_values([3i64, 4]).unwrap();
        let mut wsd = Wsd::new();
        wsd.add_certain_relation(&rel).unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.world_count(), 1);
        let worlds = wsd.enumerate_worlds(10).unwrap();
        assert_eq!(worlds.len(), 1);
        assert!(worlds[0].0.relation("S").unwrap().set_eq(&rel));
    }

    #[test]
    fn compose_and_possible_values() {
        let mut wsd = example_census_wsd();
        let f_s1 = FieldId::new("R", 0, "S");
        let f_m1 = FieldId::new("R", 0, "M");
        assert_eq!(wsd.possible_values(&f_s1).unwrap().len(), 2);
        assert_eq!(wsd.certain_value(&f_s1).unwrap(), None);
        assert_eq!(
            wsd.certain_value(&FieldId::new("R", 0, "N")).unwrap(),
            Some(Value::text("Smith"))
        );
        let before = wsd.rep().unwrap();
        let slot = wsd.compose_fields(&[f_s1.clone(), f_m1.clone()]).unwrap();
        assert_eq!(wsd.slot_of(&f_s1).unwrap(), slot);
        assert_eq!(wsd.slot_of(&f_m1).unwrap(), slot);
        assert_eq!(wsd.component(slot).unwrap().len(), 6);
        wsd.validate().unwrap();
        // Composition does not change the represented world-set.
        let after = wsd.rep().unwrap();
        assert!(before.same_worlds(&after));
        assert!(wsd.compose_slots(&[]).is_err());
    }

    #[test]
    fn ext_and_remove_field() {
        let mut wsd = example_census_wsd();
        wsd.register_relation("P", &["S", "N", "M"], 2).unwrap();
        wsd.ext_field(&FieldId::new("R", 0, "S"), FieldId::new("P", 0, "S"))
            .unwrap();
        assert_eq!(
            wsd.possible_values(&FieldId::new("P", 0, "S")).unwrap(),
            wsd.possible_values(&FieldId::new("R", 0, "S")).unwrap()
        );
        // Copying again or onto an unregistered relation fails.
        assert!(wsd
            .ext_field(&FieldId::new("R", 0, "S"), FieldId::new("P", 0, "S"))
            .is_err());
        assert!(wsd
            .ext_field(&FieldId::new("R", 0, "S"), FieldId::new("Q", 0, "S"))
            .is_err());
        assert!(wsd
            .ext_field(&FieldId::new("R", 0, "S"), FieldId::new("P", 7, "S"))
            .is_err());
        wsd.remove_field(&FieldId::new("P", 0, "S")).unwrap();
        assert!(wsd.slot_of(&FieldId::new("P", 0, "S")).is_err());
    }

    #[test]
    fn remove_tuple_marks_slot_removed() {
        let mut wsd = example_census_wsd();
        wsd.remove_tuple("R", 1).unwrap();
        wsd.validate().unwrap();
        let meta = wsd.meta("R").unwrap();
        assert_eq!(meta.live_tuples().collect::<Vec<_>>(), vec![0]);
        let worlds = wsd.enumerate_worlds(100).unwrap();
        assert!(worlds
            .iter()
            .all(|(db, _)| db.relation("R").unwrap().len() == 1));
    }

    #[test]
    fn drop_relation_removes_fields_and_metadata() {
        let mut wsd = example_census_wsd();
        let mut extra = Relation::new(Schema::new("S", &["X"]).unwrap());
        extra.push_values([7i64]).unwrap();
        wsd.add_certain_relation(&extra).unwrap();
        wsd.drop_relation("S").unwrap();
        assert!(!wsd.contains_relation("S"));
        wsd.validate().unwrap();
        assert!(wsd.drop_relation("S").is_err());
    }

    #[test]
    fn rep_relation_marginalizes() {
        let wsd = example_census_wsd();
        let rels = wsd.rep_relation("R", 1000).unwrap();
        // 3 SSN combinations × 2 × 4 marital choices = 24 distinct R-worlds.
        assert_eq!(rels.len(), 24);
        let total: f64 = rels.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_components_and_worlds() {
        let wsd = example_census_wsd();
        let s = wsd.to_string();
        assert!(s.contains("component"));
        assert!(s.contains("R.t1.S"));
        assert_eq!(
            wsd.local_worlds(&FieldId::new("R", 1, "M")).unwrap().len(),
            4
        );
    }
}
