//! Errors for the world-set decomposition layer.

use crate::field::FieldId;
use std::fmt;
use ws_relational::RelationalError;

/// Result alias for the WSD layer.
pub type Result<T> = std::result::Result<T, WsError>;

/// Errors raised by world-set decompositions and their operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WsError {
    /// A field `R.t.A` is not covered by any component of the WSD.
    UnknownField(String),
    /// A relation name is not registered in the WSD.
    UnknownRelation(String),
    /// The represented world-set became empty (e.g. the chase removed every
    /// world because no world satisfies the dependencies).
    Inconsistent,
    /// Enumerating the possible worlds would exceed the requested limit.
    TooManyWorlds {
        /// Number of worlds the representation describes (saturating).
        worlds: u128,
        /// The enumeration limit that was exceeded.
        limit: u128,
    },
    /// An error bubbled up from the relational substrate.
    Relational(RelationalError),
    /// Anything else worth reporting with a message.
    Invalid(String),
}

impl WsError {
    /// Build an [`WsError::Invalid`] from a message.
    pub fn invalid(msg: impl Into<String>) -> Self {
        WsError::Invalid(msg.into())
    }

    /// Build an [`WsError::UnknownField`] from a field id.
    pub fn unknown_field(field: &FieldId) -> Self {
        WsError::UnknownField(field.to_string())
    }

    /// Build an [`WsError::UnknownRelation`].
    pub fn unknown_relation(name: impl Into<String>) -> Self {
        WsError::UnknownRelation(name.into())
    }
}

impl fmt::Display for WsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsError::UnknownField(field) => write!(f, "field {field} is not part of the WSD"),
            WsError::UnknownRelation(rel) => {
                write!(f, "relation `{rel}` is not part of the WSD")
            }
            WsError::Inconsistent => write!(f, "world-set is inconsistent (no world remains)"),
            WsError::TooManyWorlds { worlds, limit } => write!(
                f,
                "the representation describes {worlds} worlds, more than the enumeration limit {limit}"
            ),
            WsError::Relational(e) => write!(f, "relational error: {e}"),
            WsError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for WsError {}

impl From<RelationalError> for WsError {
    fn from(e: RelationalError) -> Self {
        match e {
            // Inconsistency means the same thing at every layer; mapping it
            // here lets callers match one variant regardless of the backend.
            RelationalError::Inconsistent => WsError::Inconsistent,
            other => WsError::Relational(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = WsError::unknown_field(&FieldId::new("R", 0, "A"));
        assert!(e.to_string().contains("R.t1.A"));
        let e = WsError::unknown_relation("S");
        assert!(e.to_string().contains('S'));
        assert!(WsError::Inconsistent.to_string().contains("inconsistent"));
        let e = WsError::TooManyWorlds {
            worlds: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
        let rel_err = RelationalError::UnknownRelation("T".into());
        let e: WsError = rel_err.into();
        assert!(matches!(e, WsError::Relational(_)));
        assert!(e.to_string().contains('T'));
        assert_eq!(WsError::invalid("boom").to_string(), "boom");
    }
}
