//! Interval probabilities over world-set decompositions.
//!
//! The related-work discussion of the paper points to follow-up work (\[17\],
//! Götz & Koch) on managing *interval* probabilities: either because the
//! exact probabilities of the local worlds are not known (an expert or an
//! extraction tool only provides bounds), or because approximation introduced
//! uncertainty about the weights themselves.  This module equips WSD
//! components with probability intervals and computes **confidence bounds**:
//! for every tuple `t` it returns an interval that is guaranteed to contain
//! the exact confidence for *any* choice of local-world probabilities
//! consistent with the given intervals (and with the sum-to-one constraint of
//! each component).
//!
//! Within a composed, tuple-level component the bound uses both directions of
//! the simplex constraint — the probability of the matching local worlds is
//! at least `max(Σ lo_match, 1 − Σ hi_rest)` and at most
//! `min(Σ hi_match, 1 − Σ lo_rest)` — and independent components combine with
//! the usual `1 − Π (1 − c_i)` rule evaluated in interval arithmetic.  When
//! every interval is a point, the bounds collapse to the exact confidence of
//! [`crate::confidence`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::component::Component;
use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;
use ws_relational::{Tuple, Value};

/// A closed probability interval `[lo, hi] ⊆ [0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ProbInterval {
    /// Build an interval, validating `0 ≤ lo ≤ hi ≤ 1`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(WsError::invalid(format!(
                "[{lo}, {hi}] is not a probability interval"
            )));
        }
        Ok(ProbInterval { lo, hi })
    }

    /// The degenerate interval `[p, p]`.
    pub fn point(p: f64) -> Result<Self> {
        ProbInterval::new(p, p)
    }

    /// The vacuous interval `[0, 1]`.
    pub fn full() -> Self {
        ProbInterval { lo: 0.0, hi: 1.0 }
    }

    /// Widen a point probability by `margin` on both sides, clamped to
    /// `[0, 1]`.
    pub fn around(p: f64, margin: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || margin < 0.0 {
            return Err(WsError::invalid(format!(
                "cannot widen probability {p} by margin {margin}"
            )));
        }
        ProbInterval::new((p - margin).max(0.0), (p + margin).min(1.0))
    }

    /// Whether the interval is a single point (up to float tolerance).
    pub fn is_point(&self) -> bool {
        (self.hi - self.lo).abs() < 1e-12
    }

    /// The width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `p` lies in the interval (inclusive, with tolerance).
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lo - 1e-9 && p <= self.hi + 1e-9
    }

    /// Interval product — the interval of `a · b` for independent events.
    pub fn product(&self, other: &ProbInterval) -> ProbInterval {
        ProbInterval {
            lo: (self.lo * other.lo).clamp(0.0, 1.0),
            hi: (self.hi * other.hi).clamp(0.0, 1.0),
        }
    }

    /// Interval complement — the interval of `1 − a`.
    pub fn complement(&self) -> ProbInterval {
        ProbInterval {
            lo: (1.0 - self.hi).clamp(0.0, 1.0),
            hi: (1.0 - self.lo).clamp(0.0, 1.0),
        }
    }

    /// `1 − (1 − a)(1 − b)`: the probability that at least one of two
    /// independent events happens, in interval arithmetic.
    pub fn independent_or(&self, other: &ProbInterval) -> ProbInterval {
        self.complement().product(&other.complement()).complement()
    }
}

/// A tuple-level view of one WSD relation in which every composed local world
/// carries a probability *interval* instead of a point probability.
#[derive(Clone, Debug)]
pub struct IntervalView {
    relation: String,
    attrs: Vec<Arc<str>>,
    /// Composed component, the tuple slots it covers, and one interval per
    /// composed local world (row).
    groups: Vec<(Component, Vec<usize>, Vec<ProbInterval>)>,
}

impl IntervalView {
    /// Build the view, assigning each original local world an interval via
    /// `assign(slot, row_index, point_probability)`.
    ///
    /// Composition multiplies intervals (independent components), mirroring
    /// how [`Component::compose`] multiplies point probabilities.
    pub fn new<F>(wsd: &Wsd, relation: &str, mut assign: F) -> Result<Self>
    where
        F: FnMut(usize, usize, f64) -> Result<ProbInterval>,
    {
        let meta = wsd.meta(relation)?.clone();
        // Group the component slots by shared tuples, exactly as the exact
        // tuple-level view of §6 does.
        let mut slot_groups: Vec<BTreeSet<usize>> = Vec::new();
        let mut tuple_slots: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for t in meta.live_tuples() {
            let mut slots = BTreeSet::new();
            for a in &meta.attrs {
                slots.insert(wsd.slot_of(&FieldId::new(relation, t, a.as_ref()))?);
            }
            tuple_slots.insert(t, slots);
        }
        for slots in tuple_slots.values() {
            let mut merged = slots.clone();
            let mut remaining = Vec::new();
            for g in slot_groups.drain(..) {
                if g.intersection(&merged).next().is_some() {
                    merged.extend(g);
                } else {
                    remaining.push(g);
                }
            }
            remaining.push(merged);
            slot_groups = remaining;
        }

        let mut groups = Vec::with_capacity(slot_groups.len());
        for slots in slot_groups {
            let mut iter = slots.iter();
            let first = *iter.next().expect("groups are non-empty");
            let first_comp = wsd.component(first)?;
            let mut composed = first_comp.clone();
            let mut intervals: Vec<ProbInterval> = first_comp
                .rows
                .iter()
                .enumerate()
                .map(|(i, row)| assign(first, i, row.prob))
                .collect::<Result<_>>()?;
            for &slot in iter {
                let next_comp = wsd.component(slot)?;
                let next_intervals: Vec<ProbInterval> = next_comp
                    .rows
                    .iter()
                    .enumerate()
                    .map(|(i, row)| assign(slot, i, row.prob))
                    .collect::<Result<_>>()?;
                // The composed row order of `Component::compose` is the
                // nested loop (left-major) over the two input row lists.
                let mut combined = Vec::with_capacity(intervals.len() * next_intervals.len());
                for a in &intervals {
                    for b in &next_intervals {
                        combined.push(a.product(b));
                    }
                }
                composed = composed.compose(next_comp);
                intervals = combined;
            }
            debug_assert_eq!(composed.len(), intervals.len());
            let covered: Vec<usize> = tuple_slots
                .iter()
                .filter(|(_, ts)| ts.is_subset(&slots))
                .map(|(t, _)| *t)
                .collect();
            groups.push((composed, covered, intervals));
        }
        Ok(IntervalView {
            relation: relation.to_string(),
            attrs: meta.attrs.clone(),
            groups,
        })
    }

    /// Build a view whose intervals are the WSD's point probabilities — the
    /// bounds then coincide with the exact confidences.
    pub fn exact(wsd: &Wsd, relation: &str) -> Result<Self> {
        IntervalView::new(wsd, relation, |_, _, p| ProbInterval::point(p))
    }

    /// Build a view widening every point probability by `margin`.
    pub fn with_margin(wsd: &Wsd, relation: &str, margin: f64) -> Result<Self> {
        IntervalView::new(wsd, relation, move |_, _, p| {
            ProbInterval::around(p, margin)
        })
    }

    /// Number of independent groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Confidence bounds of `tuple`: an interval guaranteed to contain the
    /// exact confidence for every probability assignment consistent with the
    /// per-row intervals and the sum-to-one constraint of each group.
    pub fn conf_bounds(&self, tuple: &Tuple) -> Result<ProbInterval> {
        if tuple.arity() != self.attrs.len() {
            return Err(WsError::invalid(format!(
                "tuple arity {} does not match relation `{}` arity {}",
                tuple.arity(),
                self.relation,
                self.attrs.len()
            )));
        }
        let mut not_lo = 1.0; // Π (1 − lo_C)
        let mut not_hi = 1.0; // Π (1 − hi_C)
        for (comp, tuples, intervals) in &self.groups {
            let mut lo_match = 0.0;
            let mut hi_match = 0.0;
            let mut lo_rest = 0.0;
            let mut hi_rest = 0.0;
            for (row, interval) in comp.rows.iter().zip(intervals) {
                if self.row_defines_tuple(comp, &row.values, tuples, tuple) {
                    lo_match += interval.lo;
                    hi_match += interval.hi;
                } else {
                    lo_rest += interval.lo;
                    hi_rest += interval.hi;
                }
            }
            // Both directions of the simplex constraint Σ p = 1.
            let lo_c = lo_match.max(1.0 - hi_rest).clamp(0.0, 1.0);
            let hi_c = hi_match.min(1.0 - lo_rest).clamp(0.0, 1.0);
            let (lo_c, hi_c) = if lo_c <= hi_c {
                (lo_c, hi_c)
            } else {
                (hi_c, hi_c)
            };
            not_lo *= 1.0 - lo_c;
            not_hi *= 1.0 - hi_c;
        }
        ProbInterval::new(
            (1.0 - not_lo).clamp(0.0, 1.0),
            (1.0 - not_hi).clamp(0.0, 1.0),
        )
    }

    /// Possible tuples with their confidence bounds, ordered by tuple.
    pub fn possible_with_bounds(&self) -> Result<Vec<(Tuple, ProbInterval)>> {
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        for (comp, tuples, _) in &self.groups {
            for row in &comp.rows {
                for &t in tuples {
                    let mut values = Vec::with_capacity(self.attrs.len());
                    let mut dropped = false;
                    for a in &self.attrs {
                        let pos = comp
                            .position(&FieldId::new(&self.relation, t, a.as_ref()))
                            .expect("group covers all fields of its tuples");
                        let v = row.values[pos].clone();
                        if v.is_bottom() {
                            dropped = true;
                            break;
                        }
                        values.push(v);
                    }
                    if !dropped {
                        seen.insert(Tuple::new(values));
                    }
                }
            }
        }
        seen.into_iter()
            .map(|t| {
                let bounds = self.conf_bounds(&t)?;
                Ok((t, bounds))
            })
            .collect()
    }

    fn row_defines_tuple(
        &self,
        comp: &Component,
        values: &[Value],
        tuples: &[usize],
        tuple: &Tuple,
    ) -> bool {
        tuples.iter().any(|&t| {
            self.attrs.iter().enumerate().all(|(i, a)| {
                comp.position(&FieldId::new(&self.relation, t, a.as_ref()))
                    .map(|pos| values[pos] == tuple[i])
                    .unwrap_or(false)
            })
        })
    }
}

/// Convenience wrapper: confidence bounds for one tuple after widening every
/// local-world probability by `margin`.
pub fn conf_bounds(wsd: &Wsd, relation: &str, tuple: &Tuple, margin: f64) -> Result<ProbInterval> {
    IntervalView::with_margin(wsd, relation, margin)?.conf_bounds(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence;
    use crate::wsd::example_census_wsd;
    use crate::Component;

    #[test]
    fn interval_arithmetic_helpers() {
        let a = ProbInterval::new(0.2, 0.4).unwrap();
        let b = ProbInterval::new(0.5, 0.5).unwrap();
        assert!(b.is_point());
        assert!(!a.is_point());
        assert!((a.width() - 0.2).abs() < 1e-12);
        assert_eq!(a.product(&b), ProbInterval::new(0.1, 0.2).unwrap());
        assert_eq!(a.complement(), ProbInterval::new(0.6, 0.8).unwrap());
        let or = a.independent_or(&b);
        assert!((or.lo - 0.6).abs() < 1e-12 && (or.hi - 0.7).abs() < 1e-12);
        assert!(ProbInterval::new(0.5, 0.4).is_err());
        assert!(ProbInterval::new(-0.1, 0.4).is_err());
        assert!(ProbInterval::around(1.5, 0.1).is_err());
        assert_eq!(ProbInterval::around(0.95, 0.1).unwrap().hi, 1.0);
        assert_eq!(ProbInterval::full(), ProbInterval::new(0.0, 1.0).unwrap());
        assert!(a.contains(0.3));
        assert!(!a.contains(0.7));
    }

    #[test]
    fn point_intervals_reproduce_exact_confidence() {
        let wsd = example_census_wsd();
        let view = IntervalView::exact(&wsd, "R").unwrap();
        for (tuple, exact) in confidence::possible_with_confidence(&wsd, "R").unwrap() {
            let bounds = view.conf_bounds(&tuple).unwrap();
            assert!(
                (bounds.lo - exact).abs() < 1e-9 && (bounds.hi - exact).abs() < 1e-9,
                "point bounds [{}, {}] should equal exact {exact}",
                bounds.lo,
                bounds.hi
            );
        }
    }

    #[test]
    fn widened_intervals_contain_the_exact_confidence() {
        let wsd = example_census_wsd();
        for margin in [0.01, 0.05, 0.2] {
            let view = IntervalView::with_margin(&wsd, "R", margin).unwrap();
            for (tuple, exact) in confidence::possible_with_confidence(&wsd, "R").unwrap() {
                let bounds = view.conf_bounds(&tuple).unwrap();
                assert!(
                    bounds.contains(exact),
                    "[{}, {}] must contain {exact} at margin {margin}",
                    bounds.lo,
                    bounds.hi
                );
            }
        }
    }

    #[test]
    fn bounds_widen_monotonically_with_the_margin() {
        let wsd = example_census_wsd();
        let tuple = confidence::possible(&wsd, "R").unwrap().rows()[0].clone();
        let narrow = conf_bounds(&wsd, "R", &tuple, 0.01).unwrap();
        let wide = conf_bounds(&wsd, "R", &tuple, 0.1).unwrap();
        assert!(wide.lo <= narrow.lo + 1e-12);
        assert!(wide.hi >= narrow.hi - 1e-12);
        assert!(wide.width() >= narrow.width() - 1e-12);
    }

    #[test]
    fn simplex_constraint_tightens_vacuous_intervals() {
        // A single certain field whose probability interval is vacuous on the
        // matching row: the sum-to-one constraint still forces conf = 1
        // because there are no other rows to absorb the mass.
        let mut wsd = Wsd::new();
        let mut rel =
            ws_relational::Relation::new(ws_relational::Schema::new("S", &["X"]).unwrap());
        rel.push_values([7i64]).unwrap();
        wsd.add_certain_relation(&rel).unwrap();
        let view = IntervalView::new(&wsd, "S", |_, _, _| Ok(ProbInterval::full())).unwrap();
        let bounds = view.conf_bounds(&Tuple::from_iter([7i64])).unwrap();
        assert!((bounds.lo - 1.0).abs() < 1e-12 && (bounds.hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn possible_with_bounds_lists_every_possible_tuple() {
        let wsd = example_census_wsd();
        let view = IntervalView::with_margin(&wsd, "R", 0.05).unwrap();
        let with_bounds = view.possible_with_bounds().unwrap();
        let exact = confidence::possible(&wsd, "R").unwrap();
        assert_eq!(with_bounds.len(), exact.len());
        for (tuple, bounds) in &with_bounds {
            assert!(exact.contains(tuple));
            assert!(bounds.lo <= bounds.hi);
        }
        assert!(view.group_count() >= 1);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let wsd = example_census_wsd();
        let view = IntervalView::exact(&wsd, "R").unwrap();
        assert!(view.conf_bounds(&Tuple::from_iter([1i64])).is_err());
        assert!(IntervalView::exact(&wsd, "NOPE").is_err());
        // Silence the unused-import lint for Component in non-debug builds.
        let _ = std::mem::size_of::<Component>();
    }
}
