//! Confidence computation and possible-tuple queries (§6, Figures 17–19).
//!
//! The confidence of a tuple `t` in a relation `R` is the sum of the
//! probabilities of the worlds in which `t ∈ R`.  Iterating over the worlds
//! is infeasible, so the algorithm works on a *tuple-level* view of the WSD:
//! components are composed (virtually, without mutating the input WSD) until
//! all fields of any given tuple live in the same component.  Within one
//! component the local worlds are mutually exclusive, and distinct components
//! are independent, so
//!
//! `conf(t) = 1 − Π_C (1 − conf_C(t))`,
//!
//! where `conf_C(t)` sums the probabilities of `C`'s local worlds that define
//! some tuple equal to `t`.  The tuple-level composition may be exponential
//! in the worst case — unavoidable, since deciding tuple certainty is already
//! NP-hard on WSDs \[9\] — but stays small when components span few tuples.
//!
//! Two escape hatches for the hot path: per-tuple confidences fan out on a
//! [`WorkerPool`] ([`TupleLevelView::possible_with_confidence_with`]), and
//! the [`approx`] submodule estimates confidences by Monte-Carlo over
//! component local worlds with an (ε, δ) guarantee, never composing at all.

use crate::component::Component;
use crate::error::Result;
use crate::field::FieldId;
use crate::wsd::Wsd;
use std::collections::{BTreeMap, BTreeSet};
use ws_relational::{Relation, Schema, Tuple, Value, WorkerPool};

pub mod approx;

/// A tuple-level view of one relation of a WSD: every tuple slot's fields are
/// gathered into a single (composed) component.
///
/// Building the view performs the composition once; `conf`, `possible` and
/// `possible_with_confidence` then run over the composed groups.
#[derive(Clone, Debug)]
pub struct TupleLevelView {
    relation: String,
    attrs: Vec<std::sync::Arc<str>>,
    /// The composed component of each group, together with the tuple slots
    /// whose fields it defines.
    groups: Vec<(Component, Vec<usize>)>,
}

impl TupleLevelView {
    /// Build the tuple-level view of `relation` within `wsd`.
    pub fn new(wsd: &Wsd, relation: &str) -> Result<Self> {
        let meta = wsd.meta(relation)?.clone();
        // Group component slots: two slots belong together if they define
        // fields of the same tuple of `relation`.
        let mut slot_groups: Vec<BTreeSet<usize>> = Vec::new();
        let mut tuple_slots: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for t in meta.live_tuples() {
            let mut slots = BTreeSet::new();
            for a in &meta.attrs {
                slots.insert(wsd.slot_of(&FieldId::new(relation, t, a.as_ref()))?);
            }
            tuple_slots.insert(t, slots);
        }
        for slots in tuple_slots.values() {
            // Merge with any existing group sharing a slot.
            let mut merged = slots.clone();
            let mut remaining = Vec::new();
            for g in slot_groups.drain(..) {
                if g.intersection(&merged).next().is_some() {
                    merged.extend(g);
                } else {
                    remaining.push(g);
                }
            }
            remaining.push(merged);
            slot_groups = remaining;
        }
        // Compose each group's components (functionally) and record which
        // tuples it covers completely.
        let mut groups = Vec::with_capacity(slot_groups.len());
        for slots in slot_groups {
            let mut iter = slots.iter();
            let first = *iter.next().expect("groups are non-empty");
            let mut composed = wsd.component(first)?.clone();
            for &slot in iter {
                composed = composed.compose(wsd.component(slot)?);
            }
            let covered: Vec<usize> = tuple_slots
                .iter()
                .filter(|(_, ts)| ts.is_subset(&slots))
                .map(|(t, _)| *t)
                .collect();
            groups.push((composed, covered));
        }
        Ok(TupleLevelView {
            relation: relation.to_string(),
            attrs: meta.attrs.clone(),
            groups,
        })
    }

    /// The relation this view is over.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Number of composed groups (independent blocks of tuples).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The confidence of `tuple`: the probability that some world contains it.
    pub fn conf(&self, tuple: &Tuple) -> Result<f64> {
        if tuple.arity() != self.attrs.len() {
            return Err(crate::error::WsError::invalid(format!(
                "tuple arity {} does not match relation `{}` arity {}",
                tuple.arity(),
                self.relation,
                self.attrs.len()
            )));
        }
        let mut not_contained = 1.0;
        for (comp, tuples) in &self.groups {
            let mut conf_c = 0.0;
            for row in &comp.rows {
                if self.row_defines_tuple(comp, &row.values, tuples, tuple) {
                    conf_c += row.prob;
                }
            }
            not_contained *= 1.0 - conf_c;
        }
        Ok(1.0 - not_contained)
    }

    /// Whether a local world of a composed group defines some tuple slot whose
    /// values equal `tuple`.
    fn row_defines_tuple(
        &self,
        comp: &Component,
        values: &[Value],
        tuples: &[usize],
        tuple: &Tuple,
    ) -> bool {
        tuples.iter().any(|&t| {
            self.attrs.iter().enumerate().all(|(i, a)| {
                comp.position(&FieldId::new(&self.relation, t, a.as_ref()))
                    .map(|pos| values[pos] == tuple[i])
                    .unwrap_or(false)
            })
        })
    }

    /// The `possible` operator (Fig. 18): every tuple appearing in at least
    /// one world.
    pub fn possible(&self) -> Result<Relation> {
        let schema = Schema::from_parts(
            std::sync::Arc::from(self.relation.as_str()),
            self.attrs.clone(),
        );
        let mut out = Relation::new(schema);
        let mut seen: BTreeSet<Tuple> = BTreeSet::new();
        for (comp, tuples) in &self.groups {
            for row in &comp.rows {
                if row.prob <= 0.0 {
                    continue;
                }
                for &t in tuples {
                    let mut values = Vec::with_capacity(self.attrs.len());
                    let mut dropped = false;
                    for a in &self.attrs {
                        let pos = comp
                            .position(&FieldId::new(&self.relation, t, a.as_ref()))
                            .expect("group covers all fields of its tuples");
                        let v = row.values[pos].clone();
                        if v.is_bottom() {
                            dropped = true;
                            break;
                        }
                        values.push(v);
                    }
                    if !dropped {
                        let tuple = Tuple::new(values);
                        if seen.insert(tuple.clone()) {
                            out.push(tuple)?;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The `possibleᵖ` operator (Fig. 19): possible tuples with confidences.
    pub fn possible_with_confidence(&self) -> Result<Vec<(Tuple, f64)>> {
        self.possible_with_confidence_with(&WorkerPool::serial())
    }

    /// [`TupleLevelView::possible_with_confidence`] with the per-tuple
    /// confidence computations fanned out on `pool`.  Tuples are independent
    /// given the composed view, and results are collected in the serial
    /// order, so the output is identical for every thread count.
    pub fn possible_with_confidence_with(&self, pool: &WorkerPool) -> Result<Vec<(Tuple, f64)>> {
        let possible = self.possible()?;
        let confidences = pool.map_coarse(possible.rows(), |tuple| self.conf(tuple));
        possible
            .rows()
            .iter()
            .zip(confidences)
            .map(|(tuple, conf)| Ok((tuple.clone(), conf?)))
            .collect()
    }
}

/// Convenience wrapper: the confidence of one tuple in one relation.
pub fn conf(wsd: &Wsd, relation: &str, tuple: &Tuple) -> Result<f64> {
    TupleLevelView::new(wsd, relation)?.conf(tuple)
}

/// Convenience wrapper: the set of possible tuples of a relation.
pub fn possible(wsd: &Wsd, relation: &str) -> Result<Relation> {
    TupleLevelView::new(wsd, relation)?.possible()
}

/// Convenience wrapper: the possible tuples of a relation with confidences.
pub fn possible_with_confidence(wsd: &Wsd, relation: &str) -> Result<Vec<(Tuple, f64)>> {
    TupleLevelView::new(wsd, relation)?.possible_with_confidence()
}

/// [`possible_with_confidence`] with per-tuple work fanned out on `pool`.
pub fn possible_with_confidence_with(
    wsd: &Wsd,
    relation: &str,
    pool: &WorkerPool,
) -> Result<Vec<(Tuple, f64)>> {
    TupleLevelView::new(wsd, relation)?.possible_with_confidence_with(pool)
}

/// A tuple is *certain* iff it appears in every world, i.e. its confidence is
/// 1 (up to floating-point tolerance).
pub fn is_certain(wsd: &Wsd, relation: &str, tuple: &Tuple) -> Result<bool> {
    Ok(conf(wsd, relation, tuple)? >= 1.0 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::wsd::example_census_wsd;
    use ws_relational::{CmpOp, Database};

    /// Oracle: confidence by explicit world enumeration.
    fn oracle_conf(wsd: &Wsd, relation: &str, tuple: &Tuple) -> f64 {
        wsd.enumerate_worlds(1_000_000)
            .unwrap()
            .into_iter()
            .filter(|(db, _): &(Database, f64)| db.relation(relation).unwrap().contains(tuple))
            .map(|(_, p)| p)
            .sum()
    }

    #[test]
    fn example11_projection_confidences() {
        // Example 11: Q = π_S(R) over the Fig. 4 WSD; conf(185)=0.6,
        // conf(186)=0.6, conf(785)=0.8.
        let mut wsd = example_census_wsd();
        ops::project(&mut wsd, "R", "Q", &["S"]).unwrap();
        let view = TupleLevelView::new(&wsd, "Q").unwrap();
        let expected = [(185i64, 0.6), (186, 0.6), (785, 0.8)];
        for (value, p) in expected {
            let t = Tuple::from_iter([value]);
            assert!(
                (view.conf(&t).unwrap() - p).abs() < 1e-9,
                "conf({value}) should be {p}"
            );
        }
        let with_conf = view.possible_with_confidence().unwrap();
        assert_eq!(with_conf.len(), 3);
        let total_possible = view.possible().unwrap();
        assert_eq!(total_possible.len(), 3);
    }

    #[test]
    fn confidence_matches_world_enumeration_oracle() {
        let wsd = example_census_wsd();
        let view = TupleLevelView::new(&wsd, "R").unwrap();
        for (tuple, _) in view.possible_with_confidence().unwrap() {
            let ours = view.conf(&tuple).unwrap();
            let oracle = oracle_conf(&wsd, "R", &tuple);
            assert!(
                (ours - oracle).abs() < 1e-9,
                "conf({tuple}) = {ours}, oracle = {oracle}"
            );
        }
    }

    #[test]
    fn confidence_of_impossible_and_certain_tuples() {
        let wsd = example_census_wsd();
        let absent = Tuple::from_iter([Value::int(999), Value::text("Nobody"), Value::int(1)]);
        assert!(conf(&wsd, "R", &absent).unwrap().abs() < 1e-9);
        assert!(!is_certain(&wsd, "R", &absent).unwrap());

        // A relation with no uncertainty: its single tuple is certain.
        let mut certain_rel = Relation::new(Schema::new("S", &["X"]).unwrap());
        certain_rel.push_values([5i64]).unwrap();
        let mut wsd2 = Wsd::new();
        wsd2.add_certain_relation(&certain_rel).unwrap();
        assert!(is_certain(&wsd2, "S", &Tuple::from_iter([5i64])).unwrap());
    }

    #[test]
    fn tuple_arity_mismatch_is_an_error() {
        let wsd = example_census_wsd();
        assert!(conf(&wsd, "R", &Tuple::from_iter([1i64])).is_err());
        assert!(conf(&wsd, "NOPE", &Tuple::from_iter([1i64])).is_err());
    }

    #[test]
    fn possible_after_selection_matches_union_of_worlds() {
        let mut wsd = example_census_wsd();
        ops::select_const(&mut wsd, "R", "P", "M", CmpOp::Eq, &Value::int(1)).unwrap();
        let possible_tuples = possible(&wsd, "P").unwrap();
        // Oracle: union of P over all worlds.
        let mut expected: BTreeSet<Tuple> = BTreeSet::new();
        for (db, _) in wsd.enumerate_worlds(1_000_000).unwrap() {
            for t in db.relation("P").unwrap().rows() {
                expected.insert(t.clone());
            }
        }
        assert_eq!(possible_tuples.row_set(), expected);
        // And each possible tuple's confidence matches the oracle.
        for t in &expected {
            let ours = conf(&wsd, "P", t).unwrap();
            let oracle = oracle_conf(&wsd, "P", t);
            assert!((ours - oracle).abs() < 1e-9);
        }
    }

    #[test]
    fn group_count_reflects_tuple_correlation() {
        let wsd = example_census_wsd();
        // Both R tuples share the SSN component, so there is a single group.
        let view = TupleLevelView::new(&wsd, "R").unwrap();
        assert_eq!(view.group_count(), 1);
        assert_eq!(view.relation(), "R");

        // Two independent certain tuples give two groups.
        let mut rel = Relation::new(Schema::new("S", &["X"]).unwrap());
        rel.push_values([1i64]).unwrap();
        rel.push_values([2i64]).unwrap();
        let mut wsd2 = Wsd::new();
        wsd2.add_certain_relation(&rel).unwrap();
        let view2 = TupleLevelView::new(&wsd2, "S").unwrap();
        assert_eq!(view2.group_count(), 2);
    }
}
