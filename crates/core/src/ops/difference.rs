//! The difference `P := R − S` on WSDs (Figure 9).
//!
//! For every pair of tuple slots `(R.t_i, S.t_j)` the components defining
//! their fields are composed; within each local world of the composed
//! component, if `R.t_i` equals `S.t_j` on every attribute then `P.t_i` is
//! marked absent (`⊥`) in the worlds that local world describes.  As the
//! paper notes, difference is the least efficient operator: in the worst case
//! it composes all components of both operands.

use super::copy::copy;
use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;
use ws_relational::Value;

/// `P := R − S` (operands must have identical attribute lists).
pub fn difference(wsd: &mut Wsd, left: &str, right: &str, dst: &str) -> Result<()> {
    let left_meta = wsd.meta(left)?.clone();
    let right_meta = wsd.meta(right)?.clone();
    if left_meta.attrs != right_meta.attrs {
        return Err(WsError::invalid(format!(
            "difference operands `{left}` and `{right}` have different schemas"
        )));
    }
    copy(wsd, left, dst)?;
    let meta = wsd.meta(dst)?.clone();

    for i in meta.live_tuples() {
        for j in right_meta.live_tuples() {
            // Compose every component defining a field of P.t_i or S.t_j.
            let mut fields: Vec<FieldId> = meta
                .attrs
                .iter()
                .map(|a| FieldId::new(dst, i, a.as_ref()))
                .collect();
            fields.extend(
                right_meta
                    .attrs
                    .iter()
                    .map(|a| FieldId::new(right, j, a.as_ref())),
            );
            let slot = wsd.compose_fields(&fields)?;
            let comp = wsd.component_mut(slot)?;
            let dst_positions: Vec<usize> = meta
                .attrs
                .iter()
                .map(|a| {
                    comp.position(&FieldId::new(dst, i, a.as_ref()))
                        .expect("composed component defines all P.t_i fields")
                })
                .collect();
            let right_positions: Vec<usize> = right_meta
                .attrs
                .iter()
                .map(|a| {
                    comp.position(&FieldId::new(right, j, a.as_ref()))
                        .expect("composed component defines all S.t_j fields")
                })
                .collect();
            for row in &mut comp.rows {
                // The S tuple only "matches" when it is actually present.
                let s_present = right_positions.iter().all(|&p| !row.values[p].is_bottom());
                let equal = s_present
                    && dst_positions
                        .iter()
                        .zip(&right_positions)
                        .all(|(&dp, &rp)| row.values[dp] == row.values[rp]);
                if equal {
                    for &dp in &dst_positions {
                        row.values[dp] = Value::Bottom;
                    }
                }
            }
        }
    }
    Ok(())
}
