//! The `copy` helper of §4: make `dst` a copy of `src` within the same WSD.
//!
//! `copy(R, P)` executes `ext(C, R.ti.A, P.ti.A)` for every component `C` and
//! every field `R.ti.A`; afterwards `P` has the same tuples as `R` in every
//! represented world and is perfectly correlated with it.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;

/// Create relation `dst` as a copy of `src` (see module docs).
pub fn copy(wsd: &mut Wsd, src: &str, dst: &str) -> Result<()> {
    if wsd.contains_relation(dst) {
        return Err(WsError::invalid(format!(
            "result relation `{dst}` already exists"
        )));
    }
    let meta = wsd.meta(src)?.clone();
    let attrs: Vec<&str> = meta.attrs.iter().map(|a| a.as_ref()).collect();
    wsd.register_relation(dst, &attrs, meta.tuple_count)?;
    for t in meta.live_tuples() {
        for a in &meta.attrs {
            let src_field = FieldId::new(src, t, a.as_ref());
            let dst_field = FieldId::new(dst, t, a.as_ref());
            wsd.ext_field(&src_field, dst_field)?;
        }
    }
    for &t in &meta.removed {
        wsd.remove_tuple(dst, t)?;
    }
    Ok(())
}
