//! Selections on WSDs: `σ_{Aθc}` and `σ_{AθB}` (Figure 9, first column).
//!
//! A selection must not delete tuples from component relations — a component
//! tuple describes many worlds at once and may define values for several
//! tuples.  Instead, fields of tuples that fail the condition are overwritten
//! with `⊥`, and `propagate-⊥` (Fig. 12) marks the rest of the tuple's fields
//! in the same component so that later projections cannot "reintroduce" the
//! deleted tuple.

use super::copy::copy;
use crate::error::Result;
use crate::field::FieldId;
use crate::wsd::Wsd;
use ws_relational::{CmpOp, Value};

/// `P := σ_{Aθc}(R)`: selection with a constant comparison.
pub fn select_const(
    wsd: &mut Wsd,
    src: &str,
    dst: &str,
    attr: &str,
    op: CmpOp,
    constant: &Value,
) -> Result<()> {
    copy(wsd, src, dst)?;
    let meta = wsd.meta(dst)?.clone();
    for t in meta.live_tuples() {
        let field = FieldId::new(dst, t, attr);
        let slot = wsd.slot_of(&field)?;
        let comp = wsd.component_mut(slot)?;
        let pos = comp
            .position(&field)
            .expect("field index points to defining component");
        for row in &mut comp.rows {
            let v = &row.values[pos];
            if v.is_bottom() {
                continue; // tuple already absent in these worlds
            }
            if !op.eval(v, constant) {
                row.values[pos] = Value::Bottom;
            }
        }
        comp.propagate_bottom(dst);
    }
    Ok(())
}

/// `P := σ_{AθB}(R)`: selection comparing two attributes of the same tuple.
///
/// If the two attributes of a tuple live in different components, those
/// components are composed first — the current decomposition may not be able
/// to express exactly the combinations satisfying the join condition.
pub fn select_attr(
    wsd: &mut Wsd,
    src: &str,
    dst: &str,
    left: &str,
    op: CmpOp,
    right: &str,
) -> Result<()> {
    copy(wsd, src, dst)?;
    let meta = wsd.meta(dst)?.clone();
    for t in meta.live_tuples() {
        let f_left = FieldId::new(dst, t, left);
        let f_right = FieldId::new(dst, t, right);
        let slot_left = wsd.slot_of(&f_left)?;
        let slot_right = wsd.slot_of(&f_right)?;
        let slot = if slot_left == slot_right {
            slot_left
        } else {
            wsd.compose_slots(&[slot_left, slot_right])?
        };
        let comp = wsd.component_mut(slot)?;
        let pos_left = comp
            .position(&f_left)
            .expect("left field defined in composed component");
        let pos_right = comp
            .position(&f_right)
            .expect("right field defined in composed component");
        for row in &mut comp.rows {
            let l = &row.values[pos_left];
            let r = &row.values[pos_right];
            if l.is_bottom() {
                continue;
            }
            if !op.eval(l, r) {
                row.values[pos_left] = Value::Bottom;
            }
        }
        comp.propagate_bottom(dst);
    }
    Ok(())
}
