//! The union `T := R ∪ S` on WSDs (Figure 9).
//!
//! The result has `|R|max + |S|max` tuple slots: the first block mirrors the
//! tuples of `R`, the second block mirrors the tuples of `S`.  Each component
//! holding a field of `R` or `S` is extended so that in each of its local
//! worlds all values of `R` and `S` also become values of `T`.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;

/// `T := R ∪ S` (operands must have identical attribute lists).
pub fn union(wsd: &mut Wsd, left: &str, right: &str, dst: &str) -> Result<()> {
    if wsd.contains_relation(dst) {
        return Err(WsError::invalid(format!(
            "result relation `{dst}` already exists"
        )));
    }
    let left_meta = wsd.meta(left)?.clone();
    let right_meta = wsd.meta(right)?.clone();
    if left_meta.attrs != right_meta.attrs {
        return Err(WsError::invalid(format!(
            "union operands `{left}` and `{right}` have different schemas"
        )));
    }
    let attrs: Vec<&str> = left_meta.attrs.iter().map(|a| a.as_ref()).collect();
    wsd.register_relation(dst, &attrs, left_meta.tuple_count + right_meta.tuple_count)?;

    for i in 0..left_meta.tuple_count {
        if left_meta.removed.contains(&i) {
            wsd.remove_tuple(dst, i)?;
            continue;
        }
        for a in &left_meta.attrs {
            let src = FieldId::new(left, i, a.as_ref());
            wsd.ext_field(&src, FieldId::new(dst, i, a.as_ref()))?;
        }
    }
    for j in 0..right_meta.tuple_count {
        let tid = left_meta.tuple_count + j;
        if right_meta.removed.contains(&j) {
            wsd.remove_tuple(dst, tid)?;
            continue;
        }
        for a in &right_meta.attrs {
            let src = FieldId::new(right, j, a.as_ref());
            wsd.ext_field(&src, FieldId::new(dst, tid, a.as_ref()))?;
        }
    }
    Ok(())
}
