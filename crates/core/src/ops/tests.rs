//! Tests for the WSD operator algorithms, built around the running examples
//! of §4 (Figures 10–15) and validated against a per-world oracle: evaluating
//! the plain relational-algebra query in every enumerated world must yield
//! the same distribution over result relations as the WSD-level algorithms.

use super::*;
use crate::component::Component;
use crate::field::FieldId;
use crate::wsd::{example_census_wsd, Wsd};
use ws_relational::{evaluate_set, CmpOp, Predicate, RaExpr, Relation, Value};

/// Build the 7-WSD of Figure 10 (b): relation `R[A,B,C]` with three tuples
/// and eight possible worlds.
pub fn figure10_wsd() -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], 3).unwrap();
    wsd.set_uniform(
        FieldId::new("R", 0, "A"),
        vec![Value::int(1), Value::int(2)],
    )
    .unwrap();
    let mut c2 = Component::new(vec![
        FieldId::new("R", 0, "B"),
        FieldId::new("R", 0, "C"),
        FieldId::new("R", 1, "B"),
    ]);
    c2.push_row(vec![Value::int(1), Value::int(0), Value::int(3)], 0.5)
        .unwrap();
    c2.push_row(vec![Value::int(2), Value::int(7), Value::int(4)], 0.5)
        .unwrap();
    wsd.add_component(c2).unwrap();
    wsd.set_uniform(
        FieldId::new("R", 1, "A"),
        vec![Value::int(4), Value::int(5)],
    )
    .unwrap();
    wsd.set_certain(FieldId::new("R", 1, "C"), Value::int(0))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 2, "A"), Value::int(6))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 2, "B"), Value::int(6))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 2, "C"), Value::int(7))
        .unwrap();
    wsd.validate().unwrap();
    wsd
}

/// Build a small two-relation WSD in the spirit of Figure 14 (a).
fn figure14_wsd() -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B"], 2).unwrap();
    wsd.register_relation("S", &["C", "D"], 2).unwrap();
    wsd.set_uniform(
        FieldId::new("R", 0, "A"),
        vec![Value::int(1), Value::int(2)],
    )
    .unwrap();
    let mut c = Component::new(vec![FieldId::new("R", 0, "B"), FieldId::new("R", 1, "A")]);
    c.push_row(vec![Value::int(3), Value::int(5)], 0.5).unwrap();
    c.push_row(vec![Value::int(4), Value::int(6)], 0.5).unwrap();
    wsd.add_component(c).unwrap();
    wsd.set_uniform(
        FieldId::new("R", 1, "B"),
        vec![Value::int(7), Value::int(8)],
    )
    .unwrap();
    wsd.set_uniform(
        FieldId::new("S", 0, "C"),
        vec![Value::text("a"), Value::text("b")],
    )
    .unwrap();
    let mut c = Component::new(vec![FieldId::new("S", 0, "D"), FieldId::new("S", 1, "C")]);
    c.push_row(vec![Value::text("c"), Value::text("e")], 0.5)
        .unwrap();
    c.push_row(vec![Value::text("d"), Value::text("f")], 0.5)
        .unwrap();
    wsd.add_component(c).unwrap();
    wsd.set_uniform(
        FieldId::new("S", 1, "D"),
        vec![Value::text("g"), Value::text("h")],
    )
    .unwrap();
    wsd.validate().unwrap();
    wsd
}

/// The distribution over result relations obtained by evaluating the query in
/// every world of the input WSD (the semantic ground truth).
fn oracle_distribution(input: &Wsd, query: &RaExpr) -> Vec<(Relation, f64)> {
    let mut out: Vec<(Relation, f64)> = Vec::new();
    for (db, p) in input.enumerate_worlds(100_000).unwrap() {
        let rel = evaluate_set(&db, query).unwrap();
        match out.iter_mut().find(|(r, _)| r.set_eq(&rel)) {
            Some((_, q)) => *q += p,
            None => out.push((rel, p)),
        }
    }
    out
}

/// Compare two distributions over relations (set semantics, ε-tolerant).
fn same_distribution(a: &[(Relation, f64)], b: &[(Relation, f64)]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|(ra, pa)| {
        b.iter()
            .find(|(rb, _)| ra.set_eq(rb))
            .is_some_and(|(_, pb)| (pa - pb).abs() < 1e-9)
    })
}

/// Evaluate `query` both ways and assert the distributions agree.
fn assert_matches_oracle(wsd: &Wsd, query: &RaExpr) {
    let oracle = oracle_distribution(wsd, query);
    let mut evaluated = wsd.clone();
    ws_relational::engine::evaluate_query(&mut evaluated, query, "OUT").unwrap();
    evaluated.validate().unwrap();
    let ours = evaluated.rep_relation("OUT", 1_000_000).unwrap();
    assert!(
        same_distribution(&oracle, &ours),
        "WSD evaluation of {query} disagrees with the per-world oracle:\noracle={oracle:?}\nours={ours:?}"
    );
}

#[test]
fn figure10_has_eight_worlds() {
    let wsd = figure10_wsd();
    assert_eq!(wsd.world_count(), 8);
    assert_eq!(wsd.component_count(), 7);
    let worlds = wsd.enumerate_worlds(100).unwrap();
    assert_eq!(worlds.len(), 8);
    assert!(worlds
        .iter()
        .all(|(db, _)| db.relation("R").unwrap().len() == 3));
}

#[test]
fn copy_is_a_faithful_copy() {
    let mut wsd = figure10_wsd();
    copy(&mut wsd, "R", "P").unwrap();
    wsd.validate().unwrap();
    for (db, _) in wsd.enumerate_worlds(100).unwrap() {
        assert!(db.relation("R").unwrap().set_eq(db.relation("P").unwrap()));
    }
    // Copying onto an existing name fails.
    assert!(copy(&mut wsd, "R", "P").is_err());
}

#[test]
fn selection_with_constant_matches_oracle_fig11a() {
    // σ_{C=7}(R), Figure 11 (a).
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").select(Predicate::eq_const("C", 7i64));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn selection_with_constant_matches_oracle_fig11b() {
    // σ_{B=1}(R), Figure 11 (b).
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").select(Predicate::eq_const("B", 1i64));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn selection_with_constant_produces_worlds_of_different_sizes() {
    let mut wsd = figure10_wsd();
    select_const(&mut wsd, "R", "P", "C", CmpOp::Eq, &Value::int(7)).unwrap();
    let sizes: std::collections::BTreeSet<usize> = wsd
        .enumerate_worlds(100)
        .unwrap()
        .into_iter()
        .map(|(db, _)| db.relation("P").unwrap().len())
        .collect();
    // Worlds where t1.C = 0 keep only t3; worlds where t1.C = 7 keep t1 and t3.
    assert_eq!(sizes, [1usize, 2].into_iter().collect());
}

#[test]
fn join_selection_matches_oracle_fig13() {
    // σ_{A=B}(R), Figure 13: five distinct result worlds.
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Eq, "B"));
    assert_matches_oracle(&wsd, &q);
    let oracle = oracle_distribution(&wsd, &q);
    assert_eq!(oracle.len(), 5);
}

#[test]
fn join_selection_composes_components() {
    let mut wsd = figure10_wsd();
    let before = wsd.component_count();
    select_attr(&mut wsd, "R", "P", "A", CmpOp::Eq, "B").unwrap();
    // t1.A and t1.B lived in different components; they are now composed.
    let slot_a = wsd.slot_of(&FieldId::new("P", 0, "A")).unwrap();
    let slot_b = wsd.slot_of(&FieldId::new("P", 0, "B")).unwrap();
    assert_eq!(slot_a, slot_b);
    assert!(wsd.component_count() <= before + 3 * 3);
    wsd.validate().unwrap();
}

#[test]
fn inequality_selections_match_oracle() {
    let wsd = figure10_wsd();
    for op in [CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
        let q = RaExpr::rel("R").select(Predicate::cmp_const("A", op, 4i64));
        assert_matches_oracle(&wsd, &q);
        let q = RaExpr::rel("R").select(Predicate::AttrAttr {
            left: "A".into(),
            op,
            right: "C".into(),
        });
        assert_matches_oracle(&wsd, &q);
    }
}

#[test]
fn product_matches_oracle_fig14() {
    let wsd = figure14_wsd();
    let q = RaExpr::rel("R").product(RaExpr::rel("S"));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn product_rejects_overlapping_schemas() {
    let mut wsd = figure10_wsd();
    copy(&mut wsd, "R", "R2").unwrap();
    assert!(product(&mut wsd, "R", "R2", "T").is_err());
}

#[test]
fn union_matches_oracle() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R")
        .select(Predicate::eq_const("A", 1i64))
        .union(RaExpr::rel("R").select(Predicate::eq_const("B", 2i64)));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn union_requires_identical_schemas() {
    let mut wsd = figure14_wsd();
    assert!(union(&mut wsd, "R", "S", "T").is_err());
}

#[test]
fn projection_matches_oracle_after_selection() {
    // π_A(σ_{C=7}(R)) — exercises the ⊥ propagation of Figure 15.
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R")
        .select(Predicate::eq_const("C", 7i64))
        .project(vec!["A"]);
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn projection_of_plain_relation_matches_oracle() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").project(vec!["B", "A"]);
    assert_matches_oracle(&wsd, &q);
    // Result schema keeps the projection order.
    let mut evaluated = wsd.clone();
    ws_relational::engine::evaluate_query(&mut evaluated, &q, "OUT").unwrap();
    let attrs: Vec<String> = evaluated
        .meta("OUT")
        .unwrap()
        .attrs
        .iter()
        .map(|a| a.to_string())
        .collect();
    assert_eq!(attrs, vec!["B".to_string(), "A".to_string()]);
}

#[test]
fn projection_does_not_reintroduce_deleted_tuples() {
    // The Figure 15 scenario: a world-set where exactly one of two tuples is
    // present per world; projecting on A must preserve the "one tuple per
    // world" shape.
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B"], 2).unwrap();
    wsd.set_certain(FieldId::new("R", 0, "A"), Value::text("a"))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 1, "A"), Value::text("b"))
        .unwrap();
    let mut c = Component::new(vec![FieldId::new("R", 0, "B"), FieldId::new("R", 1, "B")]);
    c.push_row(vec![Value::text("c"), Value::Bottom], 0.5)
        .unwrap();
    c.push_row(vec![Value::Bottom, Value::text("d")], 0.5)
        .unwrap();
    wsd.add_component(c).unwrap();
    wsd.validate().unwrap();

    let q = RaExpr::rel("R").project(vec!["A"]);
    assert_matches_oracle(&wsd, &q);
    let mut evaluated = wsd.clone();
    ws_relational::engine::evaluate_query(&mut evaluated, &q, "P").unwrap();
    for (db, _) in evaluated.enumerate_worlds(100).unwrap() {
        assert_eq!(db.relation("P").unwrap().len(), 1);
    }
}

#[test]
fn projection_rejects_unknown_attributes() {
    let mut wsd = figure10_wsd();
    assert!(project(&mut wsd, "R", "P", &["Z"]).is_err());
}

#[test]
fn difference_matches_oracle() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").difference(RaExpr::rel("R").select(Predicate::eq_const("B", 1i64)));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn difference_requires_identical_schemas() {
    let mut wsd = figure14_wsd();
    assert!(difference(&mut wsd, "R", "S", "T").is_err());
}

#[test]
fn rename_matches_oracle_and_changes_schema() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").rename("A", "A2");
    assert_matches_oracle(&wsd, &q);
    let mut evaluated = wsd.clone();
    ws_relational::engine::evaluate_query(&mut evaluated, &q, "OUT").unwrap();
    assert!(evaluated
        .meta("OUT")
        .unwrap()
        .attrs
        .iter()
        .any(|a| a.as_ref() == "A2"));
    // Renaming to an existing attribute or from a missing one fails.
    let mut wsd2 = figure10_wsd();
    assert!(rename(&mut wsd2, "R", "X", "A", "B").is_err());
    assert!(rename(&mut wsd2, "R", "X", "Z", "Z2").is_err());
}

#[test]
fn composite_conjunctive_selection_matches_oracle() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").select(Predicate::and(vec![
        Predicate::cmp_const("A", CmpOp::Ge, 2i64),
        Predicate::eq_const("C", 0i64),
    ]));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn composite_disjunctive_selection_matches_oracle() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").select(Predicate::or(vec![
        Predicate::eq_const("A", 6i64),
        Predicate::eq_const("B", 1i64),
    ]));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn negated_selection_matches_oracle() {
    let wsd = figure10_wsd();
    let q = RaExpr::rel("R").select(Predicate::not(Predicate::and(vec![
        Predicate::eq_const("C", 0i64),
        Predicate::cmp_const("A", CmpOp::Lt, 6i64),
    ])));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn join_of_two_relations_matches_oracle() {
    let wsd = figure14_wsd();
    // R ⋈_{R.B < S.D is not type-compatible}; join on equality of A with a
    // constant-laden S attribute is not meaningful here, so join on the
    // product plus a selection over R's own attributes instead.
    let q = RaExpr::rel("R")
        .product(RaExpr::rel("S"))
        .select(Predicate::eq_const("A", 1i64));
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn query_over_the_census_example_matches_oracle() {
    // π_S(σ_{M=1}(R)) over the running census example of the introduction.
    let wsd = example_census_wsd();
    let q = RaExpr::rel("R")
        .select(Predicate::eq_const("M", 1i64))
        .project(vec!["S"]);
    assert_matches_oracle(&wsd, &q);
}

#[test]
fn evaluate_query_reports_unknown_relations() {
    let mut wsd = figure10_wsd();
    let q = RaExpr::rel("NOPE");
    assert!(ws_relational::engine::evaluate_query(&mut wsd, &q, "OUT").is_err());
}

#[test]
fn fresh_names_do_not_collide() {
    let mut wsd = figure10_wsd();
    let mut counter = 0;
    let a = fresh_name(&wsd, &mut counter, "tmp");
    wsd.register_relation(&a, &["X"], 0).unwrap();
    let b = fresh_name(&wsd, &mut counter, "tmp");
    assert_ne!(a, b);
}
