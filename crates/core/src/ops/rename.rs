//! The renaming `δ_{A→A'}(R)` on WSDs (Figure 9).
//!
//! Renaming only changes attribute names; the result is materialized as a new
//! relation `dst` whose fields are copies of `R`'s fields under the renamed
//! attribute, so that (as with every other operator) the input relation stays
//! available in the same WSD.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;

/// `P := δ_{from→to}(R)`.
pub fn rename(wsd: &mut Wsd, src: &str, dst: &str, from: &str, to: &str) -> Result<()> {
    if wsd.contains_relation(dst) {
        return Err(WsError::invalid(format!(
            "result relation `{dst}` already exists"
        )));
    }
    let meta = wsd.meta(src)?.clone();
    if !meta.attrs.iter().any(|a| a.as_ref() == from) {
        return Err(WsError::invalid(format!(
            "attribute `{from}` not in schema of `{src}`"
        )));
    }
    if from != to && meta.attrs.iter().any(|a| a.as_ref() == to) {
        return Err(WsError::invalid(format!(
            "attribute `{to}` already in schema of `{src}`"
        )));
    }
    let new_attrs: Vec<String> = meta
        .attrs
        .iter()
        .map(|a| {
            if a.as_ref() == from {
                to.to_string()
            } else {
                a.to_string()
            }
        })
        .collect();
    let new_attr_refs: Vec<&str> = new_attrs.iter().map(String::as_str).collect();
    wsd.register_relation(dst, &new_attr_refs, meta.tuple_count)?;
    for t in meta.live_tuples() {
        for (old, new) in meta.attrs.iter().zip(&new_attrs) {
            let src_field = FieldId::new(src, t, old.as_ref());
            let dst_field = FieldId::new(dst, t, new.as_str());
            wsd.ext_field(&src_field, dst_field)?;
        }
    }
    for &t in &meta.removed {
        wsd.remove_tuple(dst, t)?;
    }
    Ok(())
}
