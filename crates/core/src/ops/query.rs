//! The query processor `Q̂` on WSDs: translate a relational-algebra query to
//! the per-operator algorithms of Figure 9.
//!
//! Given a query `Q`, the result of `evaluate_query` is a new relation inside
//! the same WSD such that dropping all other relations yields a WSD
//! representing `{ Q(A) | A ∈ rep(W) }` (Theorem 1).  Intermediate results
//! get fresh relation names and remain represented, which is exactly what
//! keeps correlated sub-queries correlated.
//!
//! Composite selection conditions — which the paper's Fig. 9 leaves to the
//! atomic cases — are handled by rewriting:
//! `σ_{φ∧ψ} = σ_φ ∘ σ_ψ`, `σ_{φ∨ψ}(R) = σ_φ(R) ∪ σ_ψ(R)` (set semantics), and
//! negations are pushed onto the atoms by flipping the comparison operator.

use super::{copy, difference, product, project, rename, select_attr, select_const, union};
use crate::error::{Result, WsError};
use crate::wsd::Wsd;
use ws_relational::{Predicate, RaExpr};

/// Generate a fresh intermediate relation name that does not clash with any
/// relation already registered in the WSD.
pub fn fresh_name(wsd: &Wsd, counter: &mut usize, hint: &str) -> String {
    loop {
        let name = format!("__{hint}{}", *counter);
        *counter += 1;
        if !wsd.contains_relation(&name) {
            return name;
        }
    }
}

/// Evaluate a relational-algebra query over the WSD, materializing the result
/// as relation `out`.  Returns the name of the result relation (`out`).
pub fn evaluate_query(wsd: &mut Wsd, query: &RaExpr, out: &str) -> Result<String> {
    let mut counter = 0usize;
    eval_into(wsd, query, out, &mut counter)?;
    Ok(out.to_string())
}

fn eval_into(wsd: &mut Wsd, query: &RaExpr, out: &str, counter: &mut usize) -> Result<()> {
    match query {
        RaExpr::Rel(name) => {
            if !wsd.contains_relation(name) {
                return Err(WsError::unknown_relation(name.clone()));
            }
            copy(wsd, name, out)
        }
        RaExpr::Select { pred, input } => {
            let in_name = fresh_name(wsd, counter, "sel_in");
            eval_into(wsd, input, &in_name, counter)?;
            apply_selection(wsd, &in_name, pred, out, counter)
        }
        RaExpr::Project { attrs, input } => {
            let in_name = fresh_name(wsd, counter, "proj_in");
            eval_into(wsd, input, &in_name, counter)?;
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            project(wsd, &in_name, out, &attr_refs)
        }
        RaExpr::Product { left, right } => {
            let l = fresh_name(wsd, counter, "prod_l");
            let r = fresh_name(wsd, counter, "prod_r");
            eval_into(wsd, left, &l, counter)?;
            eval_into(wsd, right, &r, counter)?;
            product(wsd, &l, &r, out)
        }
        RaExpr::Union { left, right } => {
            let l = fresh_name(wsd, counter, "union_l");
            let r = fresh_name(wsd, counter, "union_r");
            eval_into(wsd, left, &l, counter)?;
            eval_into(wsd, right, &r, counter)?;
            union(wsd, &l, &r, out)
        }
        RaExpr::Difference { left, right } => {
            let l = fresh_name(wsd, counter, "diff_l");
            let r = fresh_name(wsd, counter, "diff_r");
            eval_into(wsd, left, &l, counter)?;
            eval_into(wsd, right, &r, counter)?;
            difference(wsd, &l, &r, out)
        }
        RaExpr::Rename { from, to, input } => {
            let in_name = fresh_name(wsd, counter, "ren_in");
            eval_into(wsd, input, &in_name, counter)?;
            rename(wsd, &in_name, out, from, to)
        }
    }
}

/// Apply a possibly composite selection predicate to relation `src`,
/// materializing the result as `out`.
fn apply_selection(
    wsd: &mut Wsd,
    src: &str,
    pred: &Predicate,
    out: &str,
    counter: &mut usize,
) -> Result<()> {
    match pred {
        Predicate::AttrConst { attr, op, value } => {
            select_const(wsd, src, out, attr, *op, value)
        }
        Predicate::AttrAttr { left, op, right } => select_attr(wsd, src, out, left, *op, right),
        Predicate::And(ps) => {
            if ps.is_empty() {
                return copy(wsd, src, out);
            }
            let mut current = src.to_string();
            for (i, p) in ps.iter().enumerate() {
                let target = if i + 1 == ps.len() {
                    out.to_string()
                } else {
                    fresh_name(wsd, counter, "and")
                };
                apply_selection(wsd, &current, p, &target, counter)?;
                current = target;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            if ps.is_empty() {
                return Err(WsError::invalid(
                    "empty disjunction is not supported as a WSD selection",
                ));
            }
            if ps.len() == 1 {
                return apply_selection(wsd, src, &ps[0], out, counter);
            }
            // σ_{φ1∨…∨φk}(R) = σ_{φ1}(R) ∪ … ∪ σ_{φk}(R).
            let mut branches = Vec::with_capacity(ps.len());
            for p in ps {
                let b = fresh_name(wsd, counter, "or");
                apply_selection(wsd, src, p, &b, counter)?;
                branches.push(b);
            }
            let mut acc = branches[0].clone();
            for (i, b) in branches.iter().enumerate().skip(1) {
                let target = if i + 1 == branches.len() {
                    out.to_string()
                } else {
                    fresh_name(wsd, counter, "or_u")
                };
                union(wsd, &acc, b, &target)?;
                acc = target;
            }
            Ok(())
        }
        Predicate::Not(p) => {
            let pushed = negate(p)?;
            apply_selection(wsd, src, &pushed, out, counter)
        }
    }
}

/// Push a negation onto the comparison atoms (De Morgan + operator flipping).
fn negate(pred: &Predicate) -> Result<Predicate> {
    Ok(match pred {
        Predicate::AttrConst { attr, op, value } => Predicate::AttrConst {
            attr: attr.clone(),
            op: op.negate(),
            value: value.clone(),
        },
        Predicate::AttrAttr { left, op, right } => Predicate::AttrAttr {
            left: left.clone(),
            op: op.negate(),
            right: right.clone(),
        },
        Predicate::And(ps) => Predicate::Or(ps.iter().map(negate).collect::<Result<_>>()?),
        Predicate::Or(ps) => Predicate::And(ps.iter().map(negate).collect::<Result<_>>()?),
        Predicate::Not(p) => (**p).clone(),
    })
}
