//! The query processor `Q̂` on WSDs, as a backend of the unified engine.
//!
//! Queries are no longer walked by a WSD-private translator: the shared
//! `optimize → execute` pipeline of [`ws_relational::engine`] plans the
//! [`RaExpr`] (selection pushdown, projection collapsing, θ-join
//! recognition) against this catalog and drives the per-operator algorithms
//! of Figure 9 through the [`QueryBackend`] implementation below.  Given a
//! query `Q`, the result of [`evaluate_query`] is a new relation inside the
//! same WSD such that dropping all other relations yields a WSD representing
//! `{ Q(A) | A ∈ rep(W) }` (Theorem 1).  Intermediate results get fresh
//! relation names and remain represented, which is exactly what keeps
//! correlated sub-queries correlated.
//!
//! Composite selection conditions — which the paper's Fig. 9 leaves to the
//! atomic cases — are handled by rewriting:
//! `σ_{φ∧ψ} = σ_φ ∘ σ_ψ`, `σ_{φ∨ψ}(R) = σ_φ(R) ∪ σ_ψ(R)` (set semantics), and
//! negations are pushed onto the atoms by flipping the comparison operator.

use super::{copy, difference, product, project, rename, select_attr, select_const, union};
use crate::error::{Result, WsError};
use crate::wsd::Wsd;
use ws_relational::engine::{self, ExecContext, QueryBackend, SchemaCatalog};
use ws_relational::{Predicate, RaExpr, RelationalError, Schema};

impl SchemaCatalog for Wsd {
    fn schema_of(&self, relation: &str) -> ws_relational::Result<Schema> {
        self.meta(relation)
            .map(|meta| meta.schema(relation))
            .map_err(|_| RelationalError::UnknownRelation(relation.to_string()))
    }

    fn contains_relation(&self, relation: &str) -> bool {
        Wsd::contains_relation(self, relation)
    }
}

impl QueryBackend for Wsd {
    type Error = WsError;

    fn materialize_base(&mut self, name: &str, out: &str) -> Result<()> {
        copy(self, name, out)
    }

    fn apply_select(
        &mut self,
        input: &str,
        pred: &Predicate,
        out: &str,
        ctx: &mut ExecContext,
    ) -> Result<()> {
        apply_selection(self, input, pred, out, ctx)
    }

    fn apply_project(
        &mut self,
        input: &str,
        attrs: &[String],
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        project(self, input, out, &attr_refs)
    }

    fn apply_product(
        &mut self,
        left: &str,
        right: &str,
        out: &str,
        _ctx: &mut ExecContext,
    ) -> Result<()> {
        product(self, left, right, out)
    }

    fn apply_union(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        union(self, left, right, out)
    }

    fn apply_difference(&mut self, left: &str, right: &str, out: &str) -> Result<()> {
        difference(self, left, right, out)
    }

    fn apply_rename(&mut self, input: &str, from: &str, to: &str, out: &str) -> Result<()> {
        rename(self, input, out, from, to)
    }

    fn drop_scratch(&mut self, name: &str) {
        let _ = self.drop_relation(name);
    }
}

/// Generate a fresh intermediate relation name that does not clash with any
/// relation already registered in the WSD.
///
/// Thin wrapper over the engine-wide generator, kept for callers that
/// allocate scratch names outside a plan execution.
pub fn fresh_name(wsd: &Wsd, counter: &mut usize, hint: &str) -> String {
    engine::fresh_scratch_name(|n| wsd.contains_relation(n), counter, hint)
}

/// Evaluate a relational-algebra query over the WSD through the unified
/// `optimize → execute` pipeline, materializing the result as relation
/// `out`.  Returns the name of the result relation (`out`).
#[deprecated(
    since = "0.1.0",
    note = "open a `maybms::Session` on the Wsd (prepare/execute/stream), or call \
            `ws_relational::engine::evaluate_query` directly"
)]
pub fn evaluate_query(wsd: &mut Wsd, query: &RaExpr, out: &str) -> Result<String> {
    engine::evaluate_query(wsd, query, out)
}

/// Evaluate a query into a freshly named `__{hint}{n}` result relation and
/// return that name.  The helper behind every "query a scratch copy, then
/// read the answer off" caller (conditional confidence, repairs, medical).
pub fn evaluate_query_fresh(wsd: &mut Wsd, query: &RaExpr, hint: &str) -> Result<String> {
    let mut counter = 0usize;
    let out = fresh_name(wsd, &mut counter, hint);
    engine::evaluate_query(wsd, query, &out)
}

/// Apply a possibly composite selection predicate to relation `src`,
/// materializing the result as `out`.
fn apply_selection(
    wsd: &mut Wsd,
    src: &str,
    pred: &Predicate,
    out: &str,
    ctx: &mut ExecContext,
) -> Result<()> {
    match pred {
        Predicate::AttrConst { attr, op, value } => select_const(wsd, src, out, attr, *op, value),
        Predicate::AttrAttr { left, op, right } => select_attr(wsd, src, out, left, *op, right),
        Predicate::And(ps) => {
            if ps.is_empty() {
                return copy(wsd, src, out);
            }
            let mut current = src.to_string();
            for (i, p) in ps.iter().enumerate() {
                let target = if i + 1 == ps.len() {
                    out.to_string()
                } else {
                    ctx.fresh(|n| wsd.contains_relation(n), "and")
                };
                apply_selection(wsd, &current, p, &target, ctx)?;
                current = target;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            if ps.is_empty() {
                return Err(WsError::invalid(
                    "empty disjunction is not supported as a WSD selection",
                ));
            }
            if ps.len() == 1 {
                return apply_selection(wsd, src, &ps[0], out, ctx);
            }
            // σ_{φ1∨…∨φk}(R) = σ_{φ1}(R) ∪ … ∪ σ_{φk}(R).
            let mut branches = Vec::with_capacity(ps.len());
            for p in ps {
                let b = ctx.fresh(|n| wsd.contains_relation(n), "or");
                apply_selection(wsd, src, p, &b, ctx)?;
                branches.push(b);
            }
            let mut acc = branches[0].clone();
            for (i, b) in branches.iter().enumerate().skip(1) {
                let target = if i + 1 == branches.len() {
                    out.to_string()
                } else {
                    ctx.fresh(|n| wsd.contains_relation(n), "or_u")
                };
                union(wsd, &acc, b, &target)?;
                acc = target;
            }
            Ok(())
        }
        Predicate::Not(p) => {
            let pushed = negate(p)?;
            apply_selection(wsd, src, &pushed, out, ctx)
        }
    }
}

/// Push a negation onto the comparison atoms (De Morgan + operator flipping).
fn negate(pred: &Predicate) -> Result<Predicate> {
    Ok(match pred {
        Predicate::AttrConst { attr, op, value } => Predicate::AttrConst {
            attr: attr.clone(),
            op: op.negate(),
            value: value.clone(),
        },
        Predicate::AttrAttr { left, op, right } => Predicate::AttrAttr {
            left: left.clone(),
            op: op.negate(),
            right: right.clone(),
        },
        Predicate::And(ps) => Predicate::Or(ps.iter().map(negate).collect::<Result<_>>()?),
        Predicate::Or(ps) => Predicate::And(ps.iter().map(negate).collect::<Result<_>>()?),
        Predicate::Not(p) => (**p).clone(),
    })
}
