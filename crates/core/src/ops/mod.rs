//! Relational algebra on world-set decompositions (§4, Figure 9).
//!
//! Every operation takes the WSD by mutable reference, evaluates the
//! operation *conceptually in every world*, and extends the WSD with a new
//! result relation; the input relations remain represented so that correlated
//! sub-query results stay correlated (the `σ_{A=1}(R) ∪ σ_{B=2}(R)` example of
//! §4).  The operators never need to look at probabilities except where
//! components are composed, in which case the composed probabilities are the
//! products of the inputs' (Remark 2).

mod copy;
mod difference;
mod product;
mod project;
mod query;
mod rename;
mod select;
mod union;
pub mod update;

pub use copy::copy;
pub use difference::difference;
pub use product::product;
pub use project::project;
#[allow(deprecated)] // the deprecated shim stays importable during migration
pub use query::{evaluate_query, evaluate_query_fresh, fresh_name};
pub use rename::rename;
pub use select::{select_attr, select_const};
pub use union::union;
pub use update::{apply_update, UpdateExpr};

#[cfg(test)]
mod tests;
