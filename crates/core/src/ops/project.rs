//! The projection `P := π_U(R)` on WSDs (Figure 9 / Figure 15).
//!
//! Simply dropping the non-`U` columns would be wrong when a projected-away
//! field carries the `⊥` marker that records the absence of its tuple in some
//! worlds (the Fig. 15 example): the tuple would be "reintroduced".  The
//! algorithm therefore first propagates `⊥` information from the columns to
//! be discarded into the kept columns — composing components where necessary
//! — and only then projects the discarded columns away.
//!
//! Our implementation composes *all* components holding fields of a tuple
//! whenever any of the tuple's discarded fields can be `⊥`.  This is slightly
//! coarser than the paper's minimal fixpoint (which only composes components
//! actually containing a `⊥`) but represents the same world-set; a subsequent
//! `normalize::decompose` re-splits any unnecessarily composed component.

use super::copy::copy;
use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;
use std::sync::Arc;
use ws_relational::Value;

/// `P := π_U(R)` where `attrs` is the projection list `U` (order preserved).
pub fn project(wsd: &mut Wsd, src: &str, dst: &str, attrs: &[&str]) -> Result<()> {
    let src_meta = wsd.meta(src)?.clone();
    for a in attrs {
        if !src_meta.attrs.iter().any(|b| b.as_ref() == *a) {
            return Err(WsError::invalid(format!(
                "projection attribute `{a}` not in schema of `{src}`"
            )));
        }
    }
    copy(wsd, src, dst)?;
    let meta = wsd.meta(dst)?.clone();
    let keep: Vec<Arc<str>> = attrs.iter().map(|a| Arc::from(*a)).collect();
    let dropped: Vec<Arc<str>> = meta
        .attrs
        .iter()
        .filter(|a| !attrs.contains(&a.as_ref()))
        .cloned()
        .collect();

    // Phase 1: propagate deletion markers into the kept columns.
    for t in meta.live_tuples() {
        let mut needs_composition = false;
        for a in &dropped {
            let field = FieldId::new(dst, t, a.as_ref());
            let values = wsd.possible_values(&field)?;
            if values.contains(&Value::Bottom) {
                needs_composition = true;
                break;
            }
        }
        if needs_composition {
            let fields: Vec<FieldId> = meta
                .attrs
                .iter()
                .map(|a| FieldId::new(dst, t, a.as_ref()))
                .collect();
            let slot = wsd.compose_fields(&fields)?;
            wsd.component_mut(slot)?.propagate_bottom(dst);
        }
    }

    // Phase 2: project away the discarded columns and shrink the schema.
    for t in meta.live_tuples() {
        for a in &dropped {
            wsd.remove_field(&FieldId::new(dst, t, a.as_ref()))?;
        }
    }
    wsd.set_relation_attrs(dst, keep)?;
    Ok(())
}
