//! The update language over world-set decompositions (the paper's second
//! half): possible and certain inserts, deletes, modifications and
//! conditioning by constraints, as one small [`UpdateExpr`] AST.
//!
//! The semantics contract is *"apply the update in every possible world,
//! then re-decompose"*: an update `u` maps the represented world-set
//! `{A1, …, An}` to `{u(A1), …, u(An)}` (deletes/modifies/inserts world by
//! world; a possible insert with probability `p` splits every world in two;
//! conditioning drops the worlds violating the constraints and
//! renormalizes).  [`apply_update`] dispatches the AST onto the per-verb
//! [`WriteBackend`] operators, so every representation of the stack —
//! single-world databases, WSDs, UWSDTs, U-relations and the explicit
//! world-enumeration oracle — speaks the same update language through the
//! same door that `maybms::Session::apply` opens.
//!
//! This module also implements [`WriteBackend`] for [`Wsd`] itself: deletes
//! and modifications compose exactly the components a tuple needs, rewrite
//! their local worlds in place, and a final normalization pass re-splits the
//! touched components into independent factors (the *re-decompose* half of
//! the contract).  Conditioning is the §8 chase.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::normalize;
use crate::wsd::Wsd;
use std::fmt;
use std::sync::Arc;
use ws_relational::engine::{check_assignments, check_insertable, check_probability};
use ws_relational::{Dependency, Predicate, Schema, Tuple, Value, WriteBackend};

/// One update of the paper's update language.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateExpr {
    /// Insert a tuple into every world with probability `prob`,
    /// independently of everything else.
    InsertPossible {
        /// The target relation.
        relation: String,
        /// The inserted tuple (no `⊥`/`?` markers).
        tuple: Tuple,
        /// The insertion probability in `[0, 1]`.
        prob: f64,
    },
    /// Insert a tuple into every world.
    InsertCertain {
        /// The target relation.
        relation: String,
        /// The inserted tuple (no `⊥`/`?` markers).
        tuple: Tuple,
    },
    /// Delete, in every world, the tuples satisfying the predicate.
    Delete {
        /// The target relation.
        relation: String,
        /// The per-tuple deletion condition.
        pred: Predicate,
    },
    /// Overwrite attributes of every tuple satisfying the predicate, in
    /// every world.
    Modify {
        /// The target relation.
        relation: String,
        /// The per-tuple modification condition.
        pred: Predicate,
        /// `attr ↦ new value` assignments.
        assignments: Vec<(String, Value)>,
    },
    /// Keep only the worlds satisfying every dependency, renormalized.
    Condition {
        /// The integrity constraints to condition on (an empty list is `⊤`).
        constraints: Vec<Dependency>,
    },
}

impl UpdateExpr {
    /// A certain insert.
    pub fn insert(relation: impl Into<String>, tuple: Tuple) -> UpdateExpr {
        UpdateExpr::InsertCertain {
            relation: relation.into(),
            tuple,
        }
    }

    /// A possible insert with probability `prob`.
    pub fn insert_possible(relation: impl Into<String>, tuple: Tuple, prob: f64) -> UpdateExpr {
        UpdateExpr::InsertPossible {
            relation: relation.into(),
            tuple,
            prob,
        }
    }

    /// A predicated delete.
    pub fn delete(relation: impl Into<String>, pred: Predicate) -> UpdateExpr {
        UpdateExpr::Delete {
            relation: relation.into(),
            pred,
        }
    }

    /// A predicated modification.
    pub fn modify(
        relation: impl Into<String>,
        pred: Predicate,
        assignments: Vec<(String, Value)>,
    ) -> UpdateExpr {
        UpdateExpr::Modify {
            relation: relation.into(),
            pred,
            assignments,
        }
    }

    /// Conditioning on a set of constraints (empty = the tautology `⊤`).
    pub fn condition(constraints: Vec<Dependency>) -> UpdateExpr {
        UpdateExpr::Condition { constraints }
    }

    /// The base relations this update touches.  Conditioning names the
    /// constrained relations, but because removing worlds changes the
    /// distribution of *everything correlated with them*, callers
    /// invalidating caches should treat it as touching every relation.
    pub fn relations(&self) -> Vec<&str> {
        match self {
            UpdateExpr::InsertPossible { relation, .. }
            | UpdateExpr::InsertCertain { relation, .. }
            | UpdateExpr::Delete { relation, .. }
            | UpdateExpr::Modify { relation, .. } => vec![relation],
            UpdateExpr::Condition { constraints } => {
                let mut out: Vec<&str> = constraints.iter().map(|d| d.relation()).collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }
}

impl fmt::Display for UpdateExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn tuple_list(f: &mut fmt::Formatter<'_>, tuple: &Tuple) -> fmt::Result {
            write!(f, "(")?;
            for (i, v) in tuple.values().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")
        }
        match self {
            UpdateExpr::InsertPossible {
                relation,
                tuple,
                prob,
            } => {
                write!(f, "INSERT INTO {relation} VALUES ")?;
                tuple_list(f, tuple)?;
                write!(f, " PROB {prob}")
            }
            UpdateExpr::InsertCertain { relation, tuple } => {
                write!(f, "INSERT INTO {relation} VALUES ")?;
                tuple_list(f, tuple)
            }
            UpdateExpr::Delete { relation, pred } => {
                write!(f, "DELETE FROM {relation} WHERE {pred}")
            }
            UpdateExpr::Modify {
                relation,
                pred,
                assignments,
            } => {
                write!(f, "UPDATE {relation} SET ")?;
                for (i, (attr, value)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{attr} = {value}")?;
                }
                write!(f, " WHERE {pred}")
            }
            UpdateExpr::Condition { constraints } => {
                if constraints.is_empty() {
                    return write!(f, "CONDITION ON ⊤");
                }
                write!(f, "CONDITION ON ")?;
                for (i, dep) in constraints.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "[{dep}]")?;
                }
                Ok(())
            }
        }
    }
}

/// Apply one update through a backend's [`WriteBackend`] verbs.
///
/// Returns the surviving probability mass: `P(ψ)` for conditioning, `1.0`
/// for every other verb (inserts/deletes/modifications never remove worlds).
pub fn apply_update<B: WriteBackend>(
    backend: &mut B,
    update: &UpdateExpr,
) -> std::result::Result<f64, B::Error> {
    match update {
        UpdateExpr::InsertPossible {
            relation,
            tuple,
            prob,
        } => backend.insert_possible(relation, tuple, *prob).map(|_| 1.0),
        UpdateExpr::InsertCertain { relation, tuple } => {
            backend.insert_certain(relation, tuple).map(|_| 1.0)
        }
        UpdateExpr::Delete { relation, pred } => backend.delete_where(relation, pred).map(|_| 1.0),
        UpdateExpr::Modify {
            relation,
            pred,
            assignments,
        } => backend
            .modify_where(relation, pred, assignments)
            .map(|_| 1.0),
        UpdateExpr::Condition { constraints } => backend.apply_condition(constraints),
    }
}

// ---------------------------------------------------------------------------
// The WSD write path.
// ---------------------------------------------------------------------------

/// The fields of one tuple slot, in schema order.
fn slot_fields(relation: &str, attrs: &[Arc<str>], tuple: usize) -> Vec<FieldId> {
    attrs
        .iter()
        .map(|a| FieldId::from_parts(Arc::from(relation), crate::field::TupleId(tuple), a.clone()))
        .collect()
}

/// Check that every attribute a predicate (or assignment list) mentions is
/// part of the relation's schema, so the per-local-world evaluation below
/// cannot fail halfway through a mutation.
fn check_attrs<'a>(
    relation: &str,
    attrs: &[Arc<str>],
    mentioned: impl IntoIterator<Item = &'a str>,
) -> Result<()> {
    for a in mentioned {
        if !attrs.iter().any(|b| b.as_ref() == a) {
            return Err(WsError::Relational(
                ws_relational::RelationalError::UnknownAttribute {
                    attr: a.to_string(),
                    relation: relation.to_string(),
                },
            ));
        }
    }
    Ok(())
}

impl WriteBackend for Wsd {
    fn insert_certain(&mut self, relation: &str, tuple: &Tuple) -> Result<()> {
        let meta = self.meta(relation)?;
        check_insertable(&meta.schema(relation), tuple)?;
        let attrs = meta.attrs.clone();
        let t = self.append_tuple_slot(relation)?;
        for (field, value) in slot_fields(relation, &attrs, t)
            .into_iter()
            .zip(tuple.values())
        {
            self.set_certain(field, value.clone())?;
        }
        Ok(())
    }

    fn insert_possible(&mut self, relation: &str, tuple: &Tuple, prob: f64) -> Result<()> {
        check_probability(prob)?;
        let meta = self.meta(relation)?;
        check_insertable(&meta.schema(relation), tuple)?;
        if prob <= 0.0 {
            return Ok(());
        }
        if prob >= 1.0 {
            return self.insert_certain(relation, tuple);
        }
        // One new component covering the whole slot: the tuple's values with
        // mass `prob`, the all-⊥ (absent) local world with mass `1 − prob`.
        let attrs = meta.attrs.clone();
        let t = self.append_tuple_slot(relation)?;
        let mut component = crate::component::Component::new(slot_fields(relation, &attrs, t));
        component.push_row(tuple.values().to_vec(), prob)?;
        component.push_row(vec![Value::Bottom; attrs.len()], 1.0 - prob)?;
        self.add_component(component)
    }

    fn delete_where(&mut self, relation: &str, pred: &Predicate) -> Result<()> {
        let meta = self.meta(relation)?.clone();
        check_attrs(relation, &meta.attrs, pred.referenced_attrs())?;
        let schema = meta.schema(relation);
        for t in meta.live_tuples() {
            // Fast path: if every attribute the predicate mentions is certain
            // for this slot, the tuple is deleted everywhere or nowhere — no
            // composition needed.
            if let Some(decided) = certain_match(self, relation, t, pred)? {
                if decided {
                    self.remove_tuple(relation, t)?;
                }
                continue;
            }
            // General path: compose every component covering the slot, blank
            // the tuple out (all fields ⊥) in exactly the local worlds whose
            // values match the predicate.
            let fields = slot_fields(relation, &meta.attrs, t);
            let slot = self.compose_fields(&fields)?;
            let comp = self.component_mut(slot)?;
            let positions: Vec<usize> = fields
                .iter()
                .map(|f| {
                    comp.position(f)
                        .expect("composed component covers the slot")
                })
                .collect();
            let matches: Vec<bool> = comp
                .rows
                .iter()
                .map(|row| {
                    if positions.iter().any(|&p| row.values[p].is_bottom()) {
                        // Absent in this local world: nothing to delete.
                        return Ok(false);
                    }
                    let values: Vec<Value> =
                        positions.iter().map(|&p| row.values[p].clone()).collect();
                    pred.eval(&schema, &Tuple::new(values))
                })
                .collect::<ws_relational::Result<_>>()?;
            for (row, matched) in comp.rows.iter_mut().zip(matches) {
                if matched {
                    for &p in &positions {
                        row.values[p] = Value::Bottom;
                    }
                }
            }
            comp.compress();
        }
        // Re-decompose: blanked slots may now be invalid everywhere, and the
        // composed components usually split back into independent factors.
        normalize::normalize(self)
    }

    fn modify_where(
        &mut self,
        relation: &str,
        pred: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<()> {
        let meta = self.meta(relation)?.clone();
        check_attrs(
            relation,
            &meta.attrs,
            pred.referenced_attrs()
                .into_iter()
                .chain(assignments.iter().map(|(a, _)| a.as_str())),
        )?;
        check_assignments(assignments)?;
        for t in meta.live_tuples() {
            if let Some(decided) = certain_match(self, relation, t, pred)? {
                if !decided {
                    continue;
                }
            }
            // Compose the components of the predicate's and the assignments'
            // fields for this slot (the predicate decides *per local world*
            // whether the assigned fields change, so the two sets must share
            // one component).
            let mut involved: Vec<&str> = pred.referenced_attrs();
            involved.extend(assignments.iter().map(|(a, _)| a.as_str()));
            involved.sort_unstable();
            involved.dedup();
            let fields: Vec<FieldId> = involved
                .iter()
                .map(|a| FieldId::new(relation, t, a))
                .collect();
            let mini_schema = Schema::from_parts(
                Arc::from(relation),
                involved.iter().map(|a| Arc::from(*a)).collect(),
            );
            let slot = self.compose_fields(&fields)?;
            let comp = self.component_mut(slot)?;
            let positions: Vec<usize> = fields
                .iter()
                .map(|f| {
                    comp.position(f)
                        .expect("composed component covers the fields")
                })
                .collect();
            let assigned_positions: Vec<(usize, &Value)> = assignments
                .iter()
                .map(|(attr, value)| {
                    let idx = involved
                        .iter()
                        .position(|a| a == attr)
                        .expect("assignment attr is involved");
                    (positions[idx], value)
                })
                .collect();
            let matches: Vec<bool> = comp
                .rows
                .iter()
                .map(|row| {
                    if positions.iter().any(|&p| row.values[p].is_bottom()) {
                        // The tuple is absent in this local world.
                        return Ok(false);
                    }
                    let values: Vec<Value> =
                        positions.iter().map(|&p| row.values[p].clone()).collect();
                    pred.eval(&mini_schema, &Tuple::new(values))
                })
                .collect::<ws_relational::Result<_>>()?;
            for (row, matched) in comp.rows.iter_mut().zip(matches) {
                if matched {
                    for &(p, value) in &assigned_positions {
                        row.values[p] = value.clone();
                    }
                }
            }
            comp.compress();
        }
        normalize::normalize(self)
    }

    fn apply_condition(&mut self, constraints: &[Dependency]) -> Result<f64> {
        crate::chase::chase(self, constraints)
    }
}

/// If every attribute `pred` mentions is certain for slot `t`, evaluate the
/// predicate once and return the verdict; `None` means at least one involved
/// field is uncertain (or encodes a possible absence) and the caller must
/// take the per-local-world path.
fn certain_match(wsd: &Wsd, relation: &str, t: usize, pred: &Predicate) -> Result<Option<bool>> {
    let mut attrs: Vec<&str> = pred.referenced_attrs();
    attrs.sort_unstable();
    attrs.dedup();
    let mut values: Vec<(Arc<str>, Value)> = Vec::with_capacity(attrs.len());
    for a in &attrs {
        let field = FieldId::new(relation, t, a);
        match wsd.certain_value(&field)? {
            Some(v) if v.is_bottom() => return Ok(Some(false)), // absent everywhere
            Some(v) => values.push((Arc::from(*a), v)),
            None => return Ok(None),
        }
    }
    // A field outside the predicate may still make the tuple absent in some
    // worlds; that is fine for both delete (absent tuples cannot match) and
    // modify (changes to absent tuples are invisible).
    let mini_schema = Schema::from_parts(
        Arc::from(relation),
        values.iter().map(|(a, _)| a.clone()).collect(),
    );
    let tuple = Tuple::new(values.into_iter().map(|(_, v)| v).collect());
    Ok(Some(pred.eval(&mini_schema, &tuple)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsd::example_census_wsd;
    use ws_relational::{CmpOp, Database};

    /// Oracle: apply the update to every enumerated world separately.
    fn oracle_worlds(wsd: &Wsd, updates: &[UpdateExpr]) -> Vec<(Database, f64)> {
        let mut worlds =
            crate::worldset::WorldSet::from_weighted_worlds(wsd.enumerate_worlds(1 << 20).unwrap());
        for u in updates {
            apply_update(&mut worlds, u).unwrap();
        }
        worlds.worlds().to_vec()
    }

    fn same_world_set(wsd: &Wsd, oracle: Vec<(Database, f64)>) -> bool {
        let ours = wsd.rep().unwrap();
        let theirs = crate::worldset::WorldSet::from_weighted_worlds(oracle);
        ours.same_worlds(&theirs) && ours.same_distribution(&theirs, 1e-9)
    }

    #[test]
    fn certain_insert_reaches_every_world() {
        let mut wsd = example_census_wsd();
        let u = UpdateExpr::insert(
            "R",
            Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
        );
        let oracle = oracle_worlds(&example_census_wsd(), std::slice::from_ref(&u));
        apply_update(&mut wsd, &u).unwrap();
        wsd.validate().unwrap();
        assert!(same_world_set(&wsd, oracle));
    }

    #[test]
    fn possible_insert_splits_every_world() {
        let mut wsd = example_census_wsd();
        let before = wsd.world_count();
        let u = UpdateExpr::insert_possible(
            "R",
            Tuple::from_iter([Value::int(999), Value::text("New"), Value::int(1)]),
            0.25,
        );
        let oracle = oracle_worlds(&example_census_wsd(), std::slice::from_ref(&u));
        apply_update(&mut wsd, &u).unwrap();
        wsd.validate().unwrap();
        assert_eq!(wsd.world_count(), before * 2);
        assert!(same_world_set(&wsd, oracle));
        // Degenerate probabilities take the short paths: p = 0 leaves the
        // world-set untouched, p = 1 is a certain insert.
        let mut wsd = example_census_wsd();
        apply_update(
            &mut wsd,
            &UpdateExpr::insert_possible("R", Tuple::from_iter([1i64, 2, 3]), 0.0),
        )
        .unwrap();
        assert_eq!(wsd.world_count(), 24);
        apply_update(
            &mut wsd,
            &UpdateExpr::insert_possible("R", Tuple::from_iter([1i64, 2, 3]), 1.0),
        )
        .unwrap();
        assert_eq!(wsd.world_count(), 24);
        assert_eq!(wsd.meta("R").unwrap().tuple_count, 3);
    }

    #[test]
    fn delete_blanks_matching_tuples_per_world() {
        let mut wsd = example_census_wsd();
        // Delete the married persons — M is uncertain, so this must split on
        // the marital components.
        let u = UpdateExpr::delete("R", Predicate::eq_const("M", 1i64));
        let oracle = oracle_worlds(&example_census_wsd(), std::slice::from_ref(&u));
        apply_update(&mut wsd, &u).unwrap();
        wsd.validate().unwrap();
        assert!(same_world_set(&wsd, oracle));
    }

    #[test]
    fn delete_with_certain_predicate_takes_the_fast_path() {
        let mut wsd = example_census_wsd();
        let u = UpdateExpr::delete("R", Predicate::eq_const("N", "Smith"));
        let oracle = oracle_worlds(&example_census_wsd(), std::slice::from_ref(&u));
        apply_update(&mut wsd, &u).unwrap();
        wsd.validate().unwrap();
        assert!(same_world_set(&wsd, oracle));
        let meta = wsd.meta("R").unwrap();
        assert_eq!(meta.live_tuples().count(), 1, "Smith's slot is gone");
    }

    #[test]
    fn modify_rewrites_exactly_the_matching_worlds() {
        let mut wsd = example_census_wsd();
        // Everyone with SSN 785 gets married: correlates M with the SSN
        // component.
        let u = UpdateExpr::modify(
            "R",
            Predicate::eq_const("S", 785i64),
            vec![("M".to_string(), Value::int(1))],
        );
        let oracle = oracle_worlds(&example_census_wsd(), std::slice::from_ref(&u));
        apply_update(&mut wsd, &u).unwrap();
        wsd.validate().unwrap();
        assert!(same_world_set(&wsd, oracle));
    }

    #[test]
    fn conditioning_reports_the_satisfying_mass() {
        let mut wsd = example_census_wsd();
        let dep = Dependency::Egd(ws_relational::EqualityGeneratingDependency::implies(
            "R",
            "S",
            785i64,
            "M",
            CmpOp::Eq,
            1i64,
        ));
        let expected =
            crate::conditional::satisfaction_probability(&wsd, std::slice::from_ref(&dep)).unwrap();
        let mass = apply_update(&mut wsd, &UpdateExpr::condition(vec![dep])).unwrap();
        assert!((mass - expected).abs() < 1e-9);
        // Conditioning on ⊤ afterwards is a mass-1 no-op.
        let before = wsd.rep().unwrap();
        let mass = apply_update(&mut wsd, &UpdateExpr::condition(vec![])).unwrap();
        assert_eq!(mass, 1.0);
        assert!(before.same_worlds(&wsd.rep().unwrap()));
    }

    #[test]
    fn invalid_updates_are_rejected_before_mutation() {
        let mut wsd = example_census_wsd();
        assert!(apply_update(
            &mut wsd,
            &UpdateExpr::insert("NOPE", Tuple::from_iter([1i64]))
        )
        .is_err());
        assert!(
            apply_update(&mut wsd, &UpdateExpr::insert("R", Tuple::from_iter([1i64]))).is_err()
        );
        assert!(apply_update(
            &mut wsd,
            &UpdateExpr::insert_possible("R", Tuple::from_iter([1i64, 2, 3]), 1.5)
        )
        .is_err());
        assert!(apply_update(
            &mut wsd,
            &UpdateExpr::delete("R", Predicate::eq_const("Z", 1i64))
        )
        .is_err());
        assert!(apply_update(
            &mut wsd,
            &UpdateExpr::modify(
                "R",
                Predicate::eq_const("M", 1i64),
                vec![("M".to_string(), Value::Bottom)]
            )
        )
        .is_err());
        // Nothing above changed the WSD.
        wsd.validate().unwrap();
        assert_eq!(wsd.world_count(), 24);
    }

    #[test]
    fn update_displays_read_like_sql() {
        let u = UpdateExpr::insert("R", Tuple::from_iter([1i64, 2]));
        assert_eq!(u.to_string(), "INSERT INTO R VALUES (1, 2)");
        assert_eq!(u.relations(), vec!["R"]);
        let u = UpdateExpr::insert_possible("R", Tuple::from_iter([1i64]), 0.5);
        assert!(u.to_string().contains("PROB 0.5"));
        let u = UpdateExpr::delete("R", Predicate::eq_const("A", 1i64));
        assert!(u.to_string().starts_with("DELETE FROM R WHERE"));
        let u = UpdateExpr::modify(
            "R",
            Predicate::eq_const("A", 1i64),
            vec![("B".to_string(), Value::int(2))],
        );
        assert!(u.to_string().contains("SET B = 2"));
        assert_eq!(UpdateExpr::condition(vec![]).to_string(), "CONDITION ON ⊤");
        let dep = Dependency::Fd(ws_relational::FunctionalDependency::new(
            "R",
            vec!["A"],
            vec!["B"],
        ));
        let u = UpdateExpr::condition(vec![dep]);
        assert!(u.to_string().contains("A → B"));
        assert_eq!(u.relations(), vec!["R"]);
    }
}
