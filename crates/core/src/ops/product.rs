//! The product `T := R × S` on WSDs (Figure 9 / Figure 14).
//!
//! The result relation has `|R|max · |S|max` tuple slots; slot `t_{ij}` pairs
//! tuple `i` of `R` with tuple `j` of `S`.  Each component holding a field of
//! `R.t_i` is extended with one copy of that column per `S` tuple slot (and
//! symmetrically for `S`), so the result stays perfectly correlated with both
//! inputs.  If either input tuple is absent (`⊥`) in a world, the copied `⊥`
//! makes the paired result tuple absent as well.

use crate::error::{Result, WsError};
use crate::field::FieldId;
use crate::wsd::Wsd;

/// Tuple-slot pairing used by the product: the result slot of `(i, j)` given
/// `|S|max` slots on the right.
pub fn paired_slot(i: usize, j: usize, right_count: usize) -> usize {
    i * right_count + j
}

/// `T := R × S`.
pub fn product(wsd: &mut Wsd, left: &str, right: &str, dst: &str) -> Result<()> {
    if wsd.contains_relation(dst) {
        return Err(WsError::invalid(format!(
            "result relation `{dst}` already exists"
        )));
    }
    let left_meta = wsd.meta(left)?.clone();
    let right_meta = wsd.meta(right)?.clone();
    for a in &left_meta.attrs {
        if right_meta.attrs.contains(a) {
            return Err(WsError::invalid(format!(
                "product operands share attribute `{a}`; rename first"
            )));
        }
    }
    let attrs: Vec<&str> = left_meta
        .attrs
        .iter()
        .chain(right_meta.attrs.iter())
        .map(|a| a.as_ref())
        .collect();
    let dst_count = left_meta.tuple_count * right_meta.tuple_count;
    wsd.register_relation(dst, &attrs, dst_count)?;

    for i in 0..left_meta.tuple_count {
        for j in 0..right_meta.tuple_count {
            let tid = paired_slot(i, j, right_meta.tuple_count);
            let left_dead = left_meta.removed.contains(&i);
            let right_dead = right_meta.removed.contains(&j);
            if left_dead || right_dead {
                wsd.remove_tuple(dst, tid)?;
                continue;
            }
            for a in &left_meta.attrs {
                let src = FieldId::new(left, i, a.as_ref());
                let dst_field = FieldId::new(dst, tid, a.as_ref());
                wsd.ext_field(&src, dst_field)?;
            }
            for a in &right_meta.attrs {
                let src = FieldId::new(right, j, a.as_ref());
                let dst_field = FieldId::new(dst, tid, a.as_ref());
                wsd.ext_field(&src, dst_field)?;
            }
        }
    }
    Ok(())
}
