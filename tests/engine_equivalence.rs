//! Cross-backend equivalence of the unified query engine.
//!
//! Randomly generated (well-typed) relational-algebra plans are evaluated
//! through the shared `optimize → execute` pipeline on every backend — WSD,
//! UWSDT, U-relation, explicit world-set, and the single-world database —
//! and the sets of possible answer tuples are compared against the explicit
//! world-enumeration oracle, with the optimizer both on and off.

use std::collections::BTreeSet;

use maybms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{plan_has_difference, random_wsd, Generator};

/// Oracle: the possible answer tuples by explicit world enumeration, outside
/// the engine entirely.
fn oracle_possible(wsd: &Wsd, query: &RaExpr) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for (db, _) in wsd.enumerate_worlds(1 << 20).unwrap() {
        let answer = maybms::relational::evaluate_set(&db, query).unwrap();
        out.extend(answer.rows().iter().cloned());
    }
    out
}

fn tuple_set(rows: &[Tuple]) -> BTreeSet<Tuple> {
    rows.iter().cloned().collect()
}

fn configs() -> [(&'static str, EngineConfig); 2] {
    [
        ("optimized", EngineConfig::default()),
        ("naive", EngineConfig::naive()),
    ]
}

#[test]
fn all_backends_agree_with_the_world_enumeration_oracle() {
    let mut rng = StdRng::seed_from_u64(0xE9517A1E);
    let mut generator = Generator::new(0x5EED5);
    let mut difference_plans = 0usize;
    for round in 0..25 {
        let wsd = random_wsd(&mut rng);
        let allow_difference = round % 3 == 0;
        let plan = generator.expr(rng.gen_range(1..=3usize), allow_difference);
        let query = &plan.expr;
        let has_difference = plan_has_difference(query);
        difference_plans += has_difference as usize;
        let oracle = oracle_possible(&wsd, query);

        for (label, config) in configs() {
            // WSD backend.
            let mut wsd_backend = wsd.clone();
            let out = evaluate_query_with(&mut wsd_backend, query, "OUT", config).unwrap();
            let wsd_rows = maybms::core::prelude::possible(&wsd_backend, &out)
                .unwrap_or_else(|e| panic!("[{label}] WSD possible() failed for {query}: {e:?}"));
            assert_eq!(
                tuple_set(wsd_rows.rows()),
                oracle,
                "[{label}] WSD disagrees with the oracle for {query}"
            );

            // UWSDT backend.
            let mut uwsdt = maybms::uwsdt::from_wsd(&wsd).unwrap();
            let out = evaluate_query_with(&mut uwsdt, query, "OUT", config)
                .unwrap_or_else(|e| panic!("[{label}] UWSDT evaluation failed for {query}: {e:?}"));
            let uwsdt_rows = maybms::uwsdt::ops::possible_tuples(&uwsdt, &out).unwrap();
            assert_eq!(
                tuple_set(&uwsdt_rows),
                oracle,
                "[{label}] UWSDT disagrees with the oracle for {query}"
            );

            // U-relation backend (positive algebra only).
            let mut udb = maybms::urel::from_wsd(&wsd).unwrap();
            let urel_result = evaluate_query_with(&mut udb, query, "OUT", config);
            if has_difference {
                assert!(
                    urel_result.is_err(),
                    "[{label}] U-relations must reject the non-positive {query}"
                );
            } else {
                let out = urel_result.unwrap();
                let urel_rows = maybms::urel::ops::possible_tuples(&udb, &out).unwrap();
                assert_eq!(
                    tuple_set(&urel_rows),
                    oracle,
                    "[{label}] U-relations disagree with the oracle for {query}"
                );
            }

            // Explicit world-set backend — driven directly so this config's
            // optimizer setting applies (query_worlds always optimizes).
            let mut ws_backend = wsd.rep().unwrap();
            evaluate_query_with(&mut ws_backend, query, "OUT", config).unwrap();
            let ws_rows = maybms::baselines::possible_tuples(&ws_backend, "OUT").unwrap();
            assert_eq!(
                tuple_set(&ws_rows),
                oracle,
                "[{label}] explicit worlds disagree with the oracle for {query}"
            );

            // Single-world backend: engine result equals the reference
            // evaluator in each individual world.
            let (first_world, _) = &wsd.enumerate_worlds(1 << 20).unwrap()[0];
            let mut db = first_world.clone();
            let out = evaluate_query_with(&mut db, query, "OUT", config).unwrap();
            let mut engine_result = db.relation(&out).unwrap().clone();
            engine_result.dedup();
            let reference = maybms::relational::evaluate_set(first_world, query).unwrap();
            assert!(
                reference.set_eq(&engine_result),
                "[{label}] single-world engine disagrees with the evaluator for {query}"
            );
        }
    }
    assert!(
        difference_plans > 0,
        "the generator never produced a difference"
    );
}
