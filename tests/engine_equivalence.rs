//! Cross-backend equivalence of the unified query engine.
//!
//! Randomly generated (well-typed) relational-algebra plans are evaluated
//! through the shared `optimize → execute` pipeline on every backend — WSD,
//! UWSDT, U-relation, explicit world-set, and the single-world database —
//! and the sets of possible answer tuples are compared against the explicit
//! world-enumeration oracle, with the optimizer both on and off.

use std::collections::BTreeSet;

use maybms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{plan_has_difference, random_wsd, Generator};

/// Oracle: the possible answer tuples by explicit world enumeration, outside
/// the engine entirely.
fn oracle_possible(wsd: &Wsd, query: &RaExpr) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for (db, _) in wsd.enumerate_worlds(1 << 20).unwrap() {
        let answer = maybms::relational::evaluate_set(&db, query).unwrap();
        out.extend(answer.rows().iter().cloned());
    }
    out
}

fn tuple_set(rows: &[Tuple]) -> BTreeSet<Tuple> {
    rows.iter().cloned().collect()
}

fn configs() -> [(&'static str, EngineConfig); 2] {
    [
        ("optimized", EngineConfig::default()),
        ("naive", EngineConfig::naive()),
    ]
}

#[test]
fn all_backends_agree_with_the_world_enumeration_oracle() {
    let mut rng = StdRng::seed_from_u64(0xE9517A1E);
    let mut generator = Generator::new(0x5EED5);
    let mut difference_plans = 0usize;
    for round in 0..25 {
        let wsd = random_wsd(&mut rng);
        let allow_difference = round % 3 == 0;
        let plan = generator.expr(rng.gen_range(1..=3usize), allow_difference);
        let query = &plan.expr;
        let has_difference = plan_has_difference(query);
        difference_plans += has_difference as usize;
        let oracle = oracle_possible(&wsd, query);

        for (label, config) in configs() {
            // WSD backend.
            let mut wsd_backend = wsd.clone();
            let out = evaluate_query_with(&mut wsd_backend, query, "OUT", config).unwrap();
            let wsd_rows = maybms::core::prelude::possible(&wsd_backend, &out)
                .unwrap_or_else(|e| panic!("[{label}] WSD possible() failed for {query}: {e:?}"));
            assert_eq!(
                tuple_set(wsd_rows.rows()),
                oracle,
                "[{label}] WSD disagrees with the oracle for {query}"
            );

            // UWSDT backend.
            let mut uwsdt = maybms::uwsdt::from_wsd(&wsd).unwrap();
            let out = evaluate_query_with(&mut uwsdt, query, "OUT", config)
                .unwrap_or_else(|e| panic!("[{label}] UWSDT evaluation failed for {query}: {e:?}"));
            let uwsdt_rows = maybms::uwsdt::ops::possible_tuples(&uwsdt, &out).unwrap();
            assert_eq!(
                tuple_set(&uwsdt_rows),
                oracle,
                "[{label}] UWSDT disagrees with the oracle for {query}"
            );

            // U-relation backend (positive algebra only).
            let mut udb = maybms::urel::from_wsd(&wsd).unwrap();
            let urel_result = evaluate_query_with(&mut udb, query, "OUT", config);
            if has_difference {
                assert!(
                    urel_result.is_err(),
                    "[{label}] U-relations must reject the non-positive {query}"
                );
            } else {
                let out = urel_result.unwrap();
                let urel_rows = maybms::urel::ops::possible_tuples(&udb, &out).unwrap();
                assert_eq!(
                    tuple_set(&urel_rows),
                    oracle,
                    "[{label}] U-relations disagree with the oracle for {query}"
                );
            }

            // Explicit world-set backend — driven directly so this config's
            // optimizer setting applies (query_worlds always optimizes).
            let mut ws_backend = wsd.rep().unwrap();
            evaluate_query_with(&mut ws_backend, query, "OUT", config).unwrap();
            let ws_rows = maybms::baselines::possible_tuples(&ws_backend, "OUT").unwrap();
            assert_eq!(
                tuple_set(&ws_rows),
                oracle,
                "[{label}] explicit worlds disagree with the oracle for {query}"
            );

            // Single-world backend: engine result equals the reference
            // evaluator in each individual world.
            let (first_world, _) = &wsd.enumerate_worlds(1 << 20).unwrap()[0];
            let mut db = first_world.clone();
            let out = evaluate_query_with(&mut db, query, "OUT", config).unwrap();
            let mut engine_result = db.relation(&out).unwrap().clone();
            engine_result.dedup();
            let reference = maybms::relational::evaluate_set(first_world, query).unwrap();
            assert!(
                reference.set_eq(&engine_result),
                "[{label}] single-world engine disagrees with the evaluator for {query}"
            );
        }
    }
    assert!(
        difference_plans > 0,
        "the generator never produced a difference"
    );
}

/// A single-world database with `n` rows in `R` (plus a small join partner
/// `S`), for exercising the columnar executor's morsel boundaries.
fn batch_boundary_db(n: usize) -> Database {
    let mut r = Relation::new(Schema::new("R", &["A", "B", "C"]).unwrap());
    for i in 0..n {
        r.push_values([i as i64, (i % 7) as i64, (i % 3) as i64])
            .unwrap();
    }
    let mut s = Relation::new(Schema::new("S", &["K", "D"]).unwrap());
    for k in 0..7i64 {
        s.push_values([k, k * 10]).unwrap();
    }
    let mut db = Database::new();
    db.insert_relation(r);
    db.insert_relation(s);
    db
}

/// Plans covering every columnar kernel: σ-chains (selective, all-filtering,
/// attribute-attribute), projections, product, the equi-join shape, union
/// and difference.
fn batch_boundary_plans() -> Vec<RaExpr> {
    vec![
        RaExpr::rel("R"),
        RaExpr::rel("R").select(Predicate::eq_const("B", 3i64)),
        // Filters every row out — empty selection vectors in every morsel.
        RaExpr::rel("R").select(Predicate::eq_const("A", -1i64)),
        RaExpr::rel("R")
            .select(Predicate::cmp_const("B", CmpOp::Ge, 2i64))
            .select(Predicate::cmp_attr("B", CmpOp::Gt, "C")),
        RaExpr::rel("R").project(vec!["B", "A"]),
        RaExpr::rel("R")
            .select(Predicate::and(vec![
                Predicate::eq_const("C", 1i64),
                Predicate::or(vec![
                    Predicate::eq_const("B", 1i64),
                    Predicate::eq_const("B", 4i64),
                ]),
            ]))
            .project(vec!["C"]),
        // The equi-join shape: recognized as a hash join when the engine's
        // join recognition is on, product-then-select when it is off.
        RaExpr::rel("R")
            .product(RaExpr::rel("S"))
            .select(Predicate::cmp_attr("B", CmpOp::Eq, "K")),
        RaExpr::rel("R")
            .project(vec!["B"])
            .union(RaExpr::rel("S").rename("K", "B").project(vec!["B"])),
        RaExpr::rel("R")
            .project(vec!["B"])
            .difference(RaExpr::rel("S").rename("K", "B").project(vec!["B"])),
    ]
}

#[test]
fn columnar_and_row_paths_are_bit_identical_at_batch_boundaries() {
    // The columnar executor hands out 1024-row morsels
    // (`ws_relational::cursor::NATIVE_BATCH_ROWS`): exercise the empty
    // relation, a single row, the sizes straddling one morsel, and a
    // multi-morsel relation.
    assert_eq!(maybms::relational::cursor::NATIVE_BATCH_ROWS, 1024);
    for n in [0usize, 1, 1023, 1024, 1025, 2500] {
        let db = batch_boundary_db(n);
        for query in &batch_boundary_plans() {
            for optimize in [false, true] {
                // Anchor: row-at-a-time operators, serial.
                let mut anchor_cfg = if optimize {
                    EngineConfig::default()
                } else {
                    EngineConfig::naive()
                };
                anchor_cfg.columnar = false;
                let mut anchor_db = db.clone();
                let out = evaluate_query_with(&mut anchor_db, query, "OUT", anchor_cfg).unwrap();
                let anchor = anchor_db.relation(&out).unwrap().rows().to_vec();

                for columnar in [false, true] {
                    for threads in [1usize, 2, 4] {
                        let mut config = anchor_cfg;
                        config.columnar = columnar;
                        config.threads = threads;
                        let mut exec_db = db.clone();
                        let out = evaluate_query_with(&mut exec_db, query, "OUT", config).unwrap();
                        assert_eq!(
                            exec_db.relation(&out).unwrap().rows(),
                            &anchor[..],
                            "n={n} optimize={optimize} columnar={columnar} \
                             threads={threads}: rows (or order) differ for {query}"
                        );
                    }
                }
            }
        }
    }
}
