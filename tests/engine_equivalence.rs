//! Cross-backend equivalence of the unified query engine.
//!
//! Randomly generated (well-typed) relational-algebra plans are evaluated
//! through the shared `optimize → execute` pipeline on every backend — WSD,
//! UWSDT, U-relation, explicit world-set, and the single-world database —
//! and the sets of possible answer tuples are compared against the explicit
//! world-enumeration oracle, with the optimizer both on and off.

use std::collections::BTreeSet;

use maybms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated expression together with its (ordered) output attributes.
#[derive(Clone, Debug)]
struct GenExpr {
    expr: RaExpr,
    attrs: Vec<String>,
}

struct Generator {
    rng: StdRng,
    rename_counter: usize,
}

impl Generator {
    fn new(seed: u64) -> Self {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            rename_counter: 0,
        }
    }

    /// A random comparison operator.
    fn op(&mut self) -> CmpOp {
        match self.rng.gen_range(0..6) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    /// A random (possibly composite) predicate over the given attributes.
    fn predicate(&mut self, attrs: &[String], depth: usize) -> Predicate {
        if depth > 0 && self.rng.gen_bool(0.3) {
            let parts = (0..self.rng.gen_range(1..=2usize))
                .map(|_| self.predicate(attrs, depth - 1))
                .collect::<Vec<_>>();
            return match self.rng.gen_range(0..3) {
                0 => Predicate::and(parts),
                1 => Predicate::or(parts),
                _ => Predicate::not(self.predicate(attrs, depth - 1)),
            };
        }
        let attr = attrs[self.rng.gen_range(0..attrs.len())].clone();
        if attrs.len() > 1 && self.rng.gen_bool(0.3) {
            let other = attrs[self.rng.gen_range(0..attrs.len())].clone();
            Predicate::cmp_attr(attr, self.op(), other)
        } else {
            Predicate::cmp_const(attr, self.op(), self.rng.gen_range(0..4i64))
        }
    }

    /// A random well-typed plan over base relations `R[A, B]` and `S[C]`.
    fn expr(&mut self, depth: usize, allow_difference: bool) -> GenExpr {
        if depth == 0 {
            return if self.rng.gen_bool(0.7) {
                GenExpr {
                    expr: RaExpr::rel("R"),
                    attrs: vec!["A".to_string(), "B".to_string()],
                }
            } else {
                GenExpr {
                    expr: RaExpr::rel("S"),
                    attrs: vec!["C".to_string()],
                }
            };
        }
        match self.rng.gen_range(0..10) {
            // Selection.
            0 | 1 => {
                let input = self.expr(depth - 1, allow_difference);
                let pred = self.predicate(&input.attrs, 1);
                GenExpr {
                    expr: input.expr.select(pred),
                    attrs: input.attrs,
                }
            }
            // Projection onto a random non-empty prefix-shuffled subset.
            2 | 3 => {
                let input = self.expr(depth - 1, allow_difference);
                let keep = self.rng.gen_range(1..=input.attrs.len());
                let mut attrs = input.attrs.clone();
                for i in (1..attrs.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    attrs.swap(i, j);
                }
                attrs.truncate(keep);
                GenExpr {
                    expr: input.expr.project(attrs.clone()),
                    attrs,
                }
            }
            // Renaming.
            4 => {
                let input = self.expr(depth - 1, allow_difference);
                let idx = self.rng.gen_range(0..input.attrs.len());
                let from = input.attrs[idx].clone();
                self.rename_counter += 1;
                let to = format!("{from}_r{}", self.rename_counter);
                let mut attrs = input.attrs.clone();
                attrs[idx] = to.clone();
                GenExpr {
                    expr: input.expr.rename(from, to),
                    attrs,
                }
            }
            // Product (with clash-avoiding renames), sometimes as a θ-join.
            5 | 6 => {
                let left = self.expr(depth - 1, allow_difference);
                let mut right = self.expr(depth - 1, allow_difference);
                for (idx, attr) in right.attrs.clone().into_iter().enumerate() {
                    if left.attrs.contains(&attr) {
                        self.rename_counter += 1;
                        let to = format!("{attr}_p{}", self.rename_counter);
                        right.expr = right.expr.rename(attr, to.clone());
                        right.attrs[idx] = to;
                    }
                }
                let mut attrs = left.attrs.clone();
                attrs.extend(right.attrs.iter().cloned());
                let mut expr = left.expr.product(right.expr);
                if self.rng.gen_bool(0.5) {
                    let la = left.attrs[self.rng.gen_range(0..left.attrs.len())].clone();
                    let ra = right.attrs[self.rng.gen_range(0..right.attrs.len())].clone();
                    expr = expr.select(Predicate::cmp_attr(la, CmpOp::Eq, ra));
                }
                GenExpr { expr, attrs }
            }
            // Union of two selections of a common input (union-compatible by
            // construction).
            7 | 8 => {
                let input = self.expr(depth - 1, allow_difference);
                let p1 = self.predicate(&input.attrs, 0);
                let p2 = self.predicate(&input.attrs, 0);
                GenExpr {
                    expr: input.expr.clone().select(p1).union(input.expr.select(p2)),
                    attrs: input.attrs,
                }
            }
            // Difference of two selections of a common input.
            _ => {
                let input = self.expr(depth - 1, allow_difference);
                if !allow_difference {
                    return input;
                }
                let p1 = self.predicate(&input.attrs, 0);
                let p2 = self.predicate(&input.attrs, 0);
                GenExpr {
                    expr: input
                        .expr
                        .clone()
                        .select(p1)
                        .difference(input.expr.select(p2)),
                    attrs: input.attrs,
                }
            }
        }
    }
}

/// A small random WSD over `R[A, B]` and `S[C]` with or-set noise.
fn random_wsd(rng: &mut StdRng) -> Wsd {
    let mut wsd = Wsd::new();
    let r_tuples = rng.gen_range(2..=3usize);
    let s_tuples = rng.gen_range(1..=2usize);
    wsd.register_relation("R", &["A", "B"], r_tuples).unwrap();
    wsd.register_relation("S", &["C"], s_tuples).unwrap();
    let mut fields: Vec<FieldId> = Vec::new();
    for t in 0..r_tuples {
        fields.push(FieldId::new("R", t, "A"));
        fields.push(FieldId::new("R", t, "B"));
    }
    for t in 0..s_tuples {
        fields.push(FieldId::new("S", t, "C"));
    }
    for field in fields {
        if rng.gen_bool(0.35) {
            let n = rng.gen_range(2..=3usize);
            let mut alternatives: BTreeSet<i64> = BTreeSet::new();
            while alternatives.len() < n {
                alternatives.insert(rng.gen_range(0..4i64));
            }
            wsd.set_uniform(field, alternatives.into_iter().map(Value::int).collect())
                .unwrap();
        } else {
            wsd.set_certain(field, Value::int(rng.gen_range(0..4i64)))
                .unwrap();
        }
    }
    wsd.validate().unwrap();
    wsd
}

/// Oracle: the possible answer tuples by explicit world enumeration, outside
/// the engine entirely.
fn oracle_possible(wsd: &Wsd, query: &RaExpr) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for (db, _) in wsd.enumerate_worlds(1 << 20).unwrap() {
        let answer = maybms::relational::evaluate_set(&db, query).unwrap();
        out.extend(answer.rows().iter().cloned());
    }
    out
}

fn tuple_set(rows: &[Tuple]) -> BTreeSet<Tuple> {
    rows.iter().cloned().collect()
}

fn configs() -> [(&'static str, EngineConfig); 2] {
    [
        ("optimized", EngineConfig::default()),
        ("naive", EngineConfig::naive()),
    ]
}

#[test]
fn all_backends_agree_with_the_world_enumeration_oracle() {
    let mut rng = StdRng::seed_from_u64(0xE9517A1E);
    let mut generator = Generator::new(0x5EED5);
    let mut difference_plans = 0usize;
    for round in 0..25 {
        let wsd = random_wsd(&mut rng);
        let allow_difference = round % 3 == 0;
        let plan = generator.expr(rng.gen_range(1..=3usize), allow_difference);
        let query = &plan.expr;
        let has_difference = plan_has_difference(query);
        difference_plans += has_difference as usize;
        let oracle = oracle_possible(&wsd, query);

        for (label, config) in configs() {
            // WSD backend.
            let mut wsd_backend = wsd.clone();
            let out = evaluate_query_with(&mut wsd_backend, query, "OUT", config).unwrap();
            let wsd_rows = maybms::core::prelude::possible(&wsd_backend, &out)
                .unwrap_or_else(|e| panic!("[{label}] WSD possible() failed for {query}: {e:?}"));
            assert_eq!(
                tuple_set(wsd_rows.rows()),
                oracle,
                "[{label}] WSD disagrees with the oracle for {query}"
            );

            // UWSDT backend.
            let mut uwsdt = maybms::uwsdt::from_wsd(&wsd).unwrap();
            let out = evaluate_query_with(&mut uwsdt, query, "OUT", config)
                .unwrap_or_else(|e| panic!("[{label}] UWSDT evaluation failed for {query}: {e:?}"));
            let uwsdt_rows = maybms::uwsdt::ops::possible_tuples(&uwsdt, &out).unwrap();
            assert_eq!(
                tuple_set(&uwsdt_rows),
                oracle,
                "[{label}] UWSDT disagrees with the oracle for {query}"
            );

            // U-relation backend (positive algebra only).
            let mut udb = maybms::urel::from_wsd(&wsd).unwrap();
            let urel_result = evaluate_query_with(&mut udb, query, "OUT", config);
            if has_difference {
                assert!(
                    urel_result.is_err(),
                    "[{label}] U-relations must reject the non-positive {query}"
                );
            } else {
                let out = urel_result.unwrap();
                let urel_rows = maybms::urel::ops::possible_tuples(&udb, &out).unwrap();
                assert_eq!(
                    tuple_set(&urel_rows),
                    oracle,
                    "[{label}] U-relations disagree with the oracle for {query}"
                );
            }

            // Explicit world-set backend — driven directly so this config's
            // optimizer setting applies (query_worlds always optimizes).
            let mut ws_backend = wsd.rep().unwrap();
            evaluate_query_with(&mut ws_backend, query, "OUT", config).unwrap();
            let ws_rows = maybms::baselines::possible_tuples(&ws_backend, "OUT").unwrap();
            assert_eq!(
                tuple_set(&ws_rows),
                oracle,
                "[{label}] explicit worlds disagree with the oracle for {query}"
            );

            // Single-world backend: engine result equals the reference
            // evaluator in each individual world.
            let (first_world, _) = &wsd.enumerate_worlds(1 << 20).unwrap()[0];
            let mut db = first_world.clone();
            let out = evaluate_query_with(&mut db, query, "OUT", config).unwrap();
            let mut engine_result = db.relation(&out).unwrap().clone();
            engine_result.dedup();
            let reference = maybms::relational::evaluate_set(first_world, query).unwrap();
            assert!(
                reference.set_eq(&engine_result),
                "[{label}] single-world engine disagrees with the evaluator for {query}"
            );
        }
    }
    assert!(
        difference_plans > 0,
        "the generator never produced a difference"
    );
}

fn plan_has_difference(expr: &RaExpr) -> bool {
    match expr {
        RaExpr::Rel(_) => false,
        RaExpr::Select { input, .. }
        | RaExpr::Project { input, .. }
        | RaExpr::Rename { input, .. } => plan_has_difference(input),
        RaExpr::Product { left, right } | RaExpr::Union { left, right } => {
            plan_has_difference(left) || plan_has_difference(right)
        }
        RaExpr::Difference { .. } => true,
    }
}
