//! U-relations vs. WSDs: the two representations must describe the same
//! world-set, give the same possible query answers and the same tuple
//! confidences on positive relational algebra.

use maybms::prelude::*;
use maybms::urel;
use proptest::prelude::*;

/// Strategy: a small or-set relation R[A, B] with weighted alternatives.
fn orset_rows() -> impl Strategy<Value = Vec<Vec<Vec<i64>>>> {
    let field = proptest::collection::btree_set(0i64..4, 1..=3)
        .prop_map(|s| s.into_iter().collect::<Vec<i64>>());
    let row = proptest::collection::vec(field, 2);
    proptest::collection::vec(row, 1..=3)
}

fn wsd_from(rows: &[Vec<Vec<i64>>]) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B"], rows.len()).unwrap();
    for (t, row) in rows.iter().enumerate() {
        for (i, attr) in ["A", "B"].iter().enumerate() {
            let values: Vec<Value> = row[i].iter().map(|v| Value::int(*v)).collect();
            wsd.set_uniform(FieldId::new("R", t, *attr), values)
                .unwrap();
        }
    }
    wsd
}

fn positive_queries() -> Vec<RaExpr> {
    vec![
        RaExpr::rel("R").select(Predicate::eq_const("A", 1i64)),
        RaExpr::rel("R").project(vec!["A"]),
        RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Eq, "B")),
        RaExpr::rel("R")
            .select(Predicate::cmp_const("A", CmpOp::Gt, 0i64))
            .project(vec!["B"])
            .union(RaExpr::rel("R").project(vec!["B"])),
        RaExpr::rel("R")
            .project(vec!["A"])
            .rename("A", "X")
            .product(RaExpr::rel("R").project(vec!["B"]).rename("B", "Y"))
            .select(Predicate::cmp_attr("X", CmpOp::Ne, "Y")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn u_relations_represent_the_same_world_set(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let udb = urel::from_wsd(&wsd).unwrap();
        prop_assert_eq!(udb.world_count(), wsd.world_count());
        let wsd_worlds = wsd.enumerate_worlds(1 << 16).unwrap();
        let u_worlds = udb.enumerate_worlds(1 << 16).unwrap();
        prop_assert_eq!(wsd_worlds.len(), u_worlds.len());
        // Every WSD world appears in the U-relation enumeration with the same
        // total probability.
        for (db, p) in &wsd_worlds {
            let mass: f64 = u_worlds
                .iter()
                .filter(|(u, _)| u.relation("R").unwrap().set_eq(db.relation("R").unwrap()))
                .map(|(_, q)| q)
                .sum();
            let expected: f64 = wsd_worlds
                .iter()
                .filter(|(w, _)| w.relation("R").unwrap().set_eq(db.relation("R").unwrap()))
                .map(|(_, q)| q)
                .sum();
            prop_assert!((mass - expected).abs() < 1e-9, "{} vs {} (p={})", mass, expected, p);
        }
    }

    #[test]
    fn positive_queries_agree_between_wsd_and_u_relations(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let udb = urel::from_wsd(&wsd).unwrap();
        for query in positive_queries() {
            // WSD evaluation.
            let mut wsd_q = wsd.clone();
            maybms::relational::evaluate_query(&mut wsd_q, &query, "Q").unwrap();
            let wsd_answers = possible_with_confidence(&wsd_q, "Q").unwrap();

            // U-relation evaluation.
            let mut udb_q = udb.clone();
            maybms::relational::evaluate_query(&mut udb_q, &query, "Q").unwrap();
            let urel_answers = urel::possible_with_confidence(&udb_q, "Q").unwrap();

            prop_assert_eq!(
                wsd_answers.len(),
                urel_answers.len(),
                "different possible-answer sets for {}",
                query
            );
            for (tuple, confidence) in &wsd_answers {
                let other = urel_answers
                    .iter()
                    .find(|(t, _)| t == tuple)
                    .map(|(_, c)| *c);
                prop_assert!(other.is_some(), "{} missing from the U-relation answer", tuple);
                prop_assert!(
                    (other.unwrap() - confidence).abs() < 1e-9,
                    "conf({}) differs: {} vs {}",
                    tuple,
                    confidence,
                    other.unwrap()
                );
            }
        }
    }

    #[test]
    fn monte_carlo_confidence_is_close_to_exact(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let udb = urel::from_wsd(&wsd).unwrap();
        for (tuple, exact) in urel::possible_with_confidence(&udb, "R").unwrap() {
            let estimate = urel::approx_conf(&udb, "R", &tuple, 4000, 11).unwrap();
            prop_assert!(
                (estimate - exact).abs() < 0.05,
                "MC estimate {} too far from {}",
                estimate,
                exact
            );
        }
    }
}

#[test]
fn census_example_q5_style_join_agrees() {
    // A join of two projections of the running example, evaluated on both
    // representations (non-property smoke test with a fixed seed).
    let wsd = maybms::core::wsd::example_census_wsd();
    let udb = urel::from_wsd(&wsd).unwrap();
    let query = RaExpr::rel("R")
        .select(Predicate::eq_const("M", 1i64))
        .project(vec!["S"])
        .rename("S", "S1")
        .product(RaExpr::rel("R").project(vec!["S"]).rename("S", "S2"))
        .select(Predicate::cmp_attr("S1", CmpOp::Ne, "S2"));

    let mut wsd_q = wsd.clone();
    maybms::relational::evaluate_query(&mut wsd_q, &query, "Q").unwrap();
    let wsd_answers = possible_with_confidence(&wsd_q, "Q").unwrap();

    let mut udb_q = udb.clone();
    maybms::relational::evaluate_query(&mut udb_q, &query, "Q").unwrap();
    let urel_answers = urel::possible_with_confidence(&udb_q, "Q").unwrap();

    assert_eq!(wsd_answers.len(), urel_answers.len());
    for (tuple, confidence) in wsd_answers {
        let other = urel_answers
            .iter()
            .find(|(t, _)| *t == tuple)
            .map(|(_, c)| *c)
            .unwrap();
        assert!((other - confidence).abs() < 1e-9);
    }
}

#[test]
fn difference_queries_are_rejected_on_u_relations() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let mut udb = urel::from_wsd(&wsd).unwrap();
    let query = RaExpr::rel("R").difference(RaExpr::rel("R"));
    assert!(maybms::relational::evaluate_query(&mut udb, &query, "Q").is_err());
}
