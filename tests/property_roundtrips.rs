//! Property-based tests (proptest) of the representation-system invariants of
//! DESIGN.md §5: inline/inline⁻¹ round trips, decomposition soundness, WSDT
//! and UWSDT round trips, chase conditioning, and probability conservation.

use maybms::prelude::*;
use proptest::prelude::*;

/// Strategy: an or-set description of a small relation R[A, B] —
/// per field a non-empty list of 1–3 distinct values drawn from 0..4.
fn orset_rows() -> impl Strategy<Value = Vec<Vec<Vec<i64>>>> {
    let field = proptest::collection::btree_set(0i64..4, 1..=3)
        .prop_map(|s| s.into_iter().collect::<Vec<i64>>());
    let row = proptest::collection::vec(field, 2);
    proptest::collection::vec(row, 1..=3)
}

/// Build a WSD from the strategy output.
fn wsd_from(rows: &[Vec<Vec<i64>>]) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B"], rows.len()).unwrap();
    for (t, row) in rows.iter().enumerate() {
        for (i, attr) in ["A", "B"].iter().enumerate() {
            let values: Vec<Value> = row[i].iter().map(|v| Value::int(*v)).collect();
            wsd.set_uniform(FieldId::new("R", t, *attr), values)
                .unwrap();
        }
    }
    wsd
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn inline_round_trip(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let worlds = wsd.rep().unwrap();
        let wsr = WorldSetRelation::from_world_set(&worlds).unwrap();
        let back = wsr.to_world_set().unwrap();
        prop_assert!(worlds.same_worlds(&back));
        prop_assert!(worlds.same_distribution(&back, 1e-9));
    }

    #[test]
    fn one_wsd_and_normalization_preserve_worlds(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let worlds = wsd.rep().unwrap();
        let wsr = WorldSetRelation::from_world_set(&worlds).unwrap();
        let mut one = wsr.to_1wsd().unwrap();
        prop_assert_eq!(one.component_count(), 1);
        prop_assert!(worlds.same_worlds(&one.rep().unwrap()));
        // Maximal decomposition of the 1-WSD still represents the same set.
        normalize(&mut one).unwrap();
        one.validate().unwrap();
        let after = one.rep().unwrap();
        prop_assert!(worlds.same_worlds(&after));
        prop_assert!(worlds.same_distribution(&after, 1e-6));
    }

    #[test]
    fn wsdt_and_uwsdt_round_trips(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let worlds = wsd.rep().unwrap();
        let wsdt = Wsdt::from_wsd(&wsd).unwrap();
        let back = wsdt.to_wsd().unwrap();
        prop_assert!(worlds.same_worlds(&back.rep().unwrap()));
        let uwsdt = from_wsdt(&wsdt).unwrap();
        uwsdt.validate().unwrap();
        let uw = WorldSet::from_weighted_worlds(uwsdt.enumerate_worlds(1_000_000).unwrap());
        prop_assert!(worlds.same_worlds(&uw));
        prop_assert!(worlds.same_distribution(&uw, 1e-9));
    }

    #[test]
    fn component_probabilities_always_sum_to_one_after_operations(rows in orset_rows()) {
        let mut wsd = wsd_from(&rows);
        maybms::relational::evaluate_query(
            &mut wsd,
            &RaExpr::rel("R").select(Predicate::eq_const("A", 1i64)).project(vec!["B"]),
            "OUT",
        ).unwrap();
        wsd.validate().unwrap();
        for (_, comp) in wsd.components() {
            prop_assert!((comp.total_probability() - 1.0).abs() < 1e-6);
        }
        // Total world probability stays 1.
        let worlds = wsd.rep().unwrap();
        prop_assert!((worlds.total_probability() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chase_is_a_conditioning_operation(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let worlds = wsd.rep().unwrap();
        let dep = Dependency::Egd(EqualityGeneratingDependency::implies(
            "R", "A", 1i64, "B", CmpOp::Ne, 0i64,
        ));
        let oracle = ws_baselines::chase_worlds(&worlds, std::slice::from_ref(&dep));
        let mut chased = wsd.clone();
        let ours = chase(&mut chased, std::slice::from_ref(&dep));
        match (oracle, ours) {
            (Err(WsError::Inconsistent), Err(WsError::Inconsistent)) => {}
            (Ok(expected), Ok(mass)) => {
                let actual = chased.rep().unwrap();
                prop_assert!(expected.same_worlds(&actual));
                prop_assert!(expected.same_distribution(&actual, 1e-9));
                // The reported surviving mass is P(ψ): the (un-renormalized)
                // probability of the worlds that satisfy the dependency.
                let oracle_mass: f64 = worlds
                    .worlds()
                    .iter()
                    .filter(|(db, _)| ws_baselines::explicit::world_satisfies(db, &dep).unwrap())
                    .map(|(_, p)| p)
                    .sum();
                prop_assert!((mass - oracle_mass).abs() < 1e-9,
                    "chase mass {mass} vs oracle {oracle_mass}");
            }
            (a, b) => prop_assert!(false, "consistency mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn confidences_are_probabilities_and_sum_over_disjoint_tuples(rows in orset_rows()) {
        let wsd = wsd_from(&rows);
        let view = TupleLevelView::new(&wsd, "R").unwrap();
        let possible = view.possible_with_confidence().unwrap();
        let worlds = wsd.rep().unwrap();
        for (tuple, confidence) in &possible {
            prop_assert!(*confidence > 0.0 - 1e-12 && *confidence <= 1.0 + 1e-9);
            let oracle = ws_baselines::confidence(&worlds, "R", tuple).unwrap();
            prop_assert!((confidence - oracle).abs() < 1e-9);
        }
    }

    #[test]
    fn decompose_component_is_sound(values in proptest::collection::vec((0i64..3, 0i64..3, 0i64..3), 1..6)) {
        // Build a component over three fields from arbitrary joint rows.
        let fields = vec![
            FieldId::new("R", 0, "A"),
            FieldId::new("R", 0, "B"),
            FieldId::new("R", 0, "C"),
        ];
        let mut comp = Component::new(fields);
        let distinct: std::collections::BTreeSet<_> = values.iter().collect();
        let p = 1.0 / distinct.len() as f64;
        for (a, b, c) in &distinct {
            comp.push_row(vec![Value::int(*a), Value::int(*b), Value::int(*c)], p).unwrap();
        }
        let parts = maybms::core::normalize::decompose_component(&comp);
        // Recompose and compare with the compressed original.
        let mut recomposed = parts[0].clone();
        for part in &parts[1..] {
            recomposed = recomposed.compose(part);
        }
        let mut original = comp.clone();
        original.compress();
        prop_assert_eq!(recomposed.len(), original.len());
        for row in &original.rows {
            let found = recomposed.rows.iter().find(|r| {
                original.fields.iter().enumerate().all(|(i, f)| {
                    r.values[recomposed.fields.iter().position(|g| g == f).unwrap()] == row.values[i]
                })
            });
            prop_assert!(found.is_some());
            prop_assert!((found.unwrap().prob - row.prob).abs() < 1e-9);
        }
    }
}
