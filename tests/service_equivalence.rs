//! The concurrent differential oracle of the ws-server subsystem: readers
//! pinning MVCC snapshots while writer threads race through the
//! group-commit committer must never observe anything other than a **serial
//! prefix** of the committed update sequence — bit-identically, on all five
//! backends, at 1 and 4 worker threads.
//!
//! Three properties are proven here:
//!
//! 1. *Snapshot = serial prefix.* Every snapshot any reader pins carries a
//!    sequence number `s`, and its answers (possible tuples + exact
//!    confidences, compared by `f64::to_bits`) equal an in-memory replay of
//!    the first `s` committed updates, in commit (WAL) order.
//! 2. *Group commit is an interleaving.* The committed history is a
//!    permutation of the submitted updates that preserves each writer's own
//!    submission order.
//! 3. *Batches are atomic under crashes.* Cutting the WAL at any byte
//!    inside a group-commit batch frame recovers the state at the previous
//!    batch boundary — a strict subset of a batch is never visible.
//!
//! The wire protocol gets the same treatment end to end: a TCP server and
//! concurrent clients must agree with a local session replaying the same
//! updates.

use std::sync::Arc;
use std::time::Duration;

use maybms::prelude::*;
use maybms::{AnyBackend, Session, UpdateExpr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ws_server::{Client, ConcurrentStore};
use ws_storage::wal::{self, WAL_FILE};
use ws_storage::SyncPolicy;

mod common;
use common::{all_backends, random_update, random_wsd, GenExpr, Generator};

fn boxed(vfs: &MemVfs) -> Box<dyn Vfs> {
    Box::new(vfs.clone())
}

/// Two base-relation probes plus two random difference-free plans.
fn probe_queries(generator: &mut Generator, rng: &mut StdRng) -> Vec<RaExpr> {
    let mut queries = vec![RaExpr::rel("R"), RaExpr::rel("S")];
    for _ in 0..2 {
        let GenExpr { expr, .. } = generator.expr(rng.gen_range(1..=2usize), false);
        queries.push(expr);
    }
    queries
}

/// Sorted possible answers + exact confidence bit patterns per probe query.
fn probe(backend: AnyBackend, config: EngineConfig, queries: &[RaExpr]) -> Vec<Vec<(Tuple, u64)>> {
    let mut session = Session::with_config(backend, config);
    queries
        .iter()
        .map(|query| {
            let prepared = session.prepare(query).expect("probe query typechecks");
            let mut rows: Vec<(Tuple, u64)> = session
                .confidence(&prepared)
                .expect("probe query evaluates")
                .into_iter()
                .map(|(t, c)| (t, c.to_bits()))
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// The in-memory state after serially applying a prefix of the history.
fn reference_state(backend: &AnyBackend, prefix: &[UpdateExpr]) -> AnyBackend {
    let mut state = backend.clone();
    for update in prefix {
        let _ = maybms::apply_update(&mut state, update);
    }
    state
}

/// `sub` appears within `all` as a (not necessarily contiguous)
/// subsequence.
fn is_subsequence(sub: &[UpdateExpr], all: &[UpdateExpr]) -> bool {
    let mut it = all.iter();
    sub.iter().all(|u| it.any(|v| v == u))
}

#[test]
fn every_pinned_snapshot_is_a_serial_prefix_on_all_backends() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 3;
    let mut rng = StdRng::seed_from_u64(0x5E71CE);
    let mut generator = Generator::new(0x5EEDB);
    for round in 0..2 {
        let wsd = random_wsd(&mut rng);
        let queries = probe_queries(&mut generator, &mut rng);
        // Certain-only updates keep all five backends in the matrix and
        // every probe well-defined at every prefix.
        let plans: Vec<Vec<UpdateExpr>> = (0..WRITERS)
            .map(|_| {
                (0..PER_WRITER)
                    .map(|_| random_update(&mut generator, &mut rng, false, false))
                    .collect()
            })
            .collect();

        for (name, backend) in all_backends(&wsd) {
            let label = format!("round {round}/{name}");
            let vfs = MemVfs::new();
            let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create_recording(
                boxed(&vfs),
                backend.clone(),
                SyncPolicy::GroupCommit {
                    max_batch: 4,
                    max_wait: Duration::from_millis(1),
                },
            )
            .unwrap();

            // Writers race their private slices through the committer while
            // readers keep pinning whatever is published.
            let mut threads = Vec::new();
            for writer in plans.clone() {
                let store = store.clone();
                threads.push(std::thread::spawn(move || {
                    for update in writer {
                        store.update(update).unwrap();
                    }
                }));
            }
            let mut readers = Vec::new();
            for _ in 0..2 {
                let store = store.clone();
                readers.push(std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    loop {
                        let snap = store.snapshot();
                        let done = snap.seq == (WRITERS * PER_WRITER) as u64;
                        seen.push(snap);
                        if done {
                            return seen;
                        }
                        std::thread::yield_now();
                    }
                }));
            }
            for t in threads {
                t.join().unwrap();
            }
            let mut observed: Vec<Arc<ws_server::StoreSnapshot<AnyBackend>>> = readers
                .into_iter()
                .flat_map(|r| r.join().unwrap())
                .collect();
            observed.push(store.snapshot());
            let history = store.history();
            store.close().unwrap();

            // Property 2: the history interleaves the writers.
            assert_eq!(history.len(), WRITERS * PER_WRITER, "[{label}]");
            for writer in &plans {
                assert!(
                    is_subsequence(writer, &history),
                    "[{label}] a writer's submission order was reordered"
                );
            }

            // Property 1: each distinct observed snapshot answers exactly
            // like the serial replay of its prefix — at 1 and 4 worker
            // threads, bit-identically.
            observed.sort_by_key(|s| s.seq);
            observed.dedup_by_key(|s| s.seq);
            for snap in observed {
                let reference = reference_state(&backend, &history[..snap.seq as usize]);
                let t1 = EngineConfig {
                    threads: 1,
                    ..EngineConfig::default()
                };
                let t4 = EngineConfig {
                    threads: 4,
                    ..EngineConfig::default()
                };
                let want = probe(reference, t1, &queries);
                assert_eq!(
                    probe(snap.backend.clone(), t1, &queries),
                    want,
                    "[{label}] snapshot at seq {} is not the serial prefix",
                    snap.seq
                );
                assert_eq!(
                    probe(snap.backend.clone(), t4, &queries),
                    want,
                    "[{label}] snapshot at seq {} diverges at 4 threads",
                    snap.seq
                );
            }
        }
    }
}

#[test]
fn a_torn_group_commit_batch_recovers_to_the_batch_boundary() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    let mut generator = Generator::new(0x5EEDC);
    let wsd = random_wsd(&mut rng);
    let queries = probe_queries(&mut generator, &mut rng);
    let updates: Vec<UpdateExpr> = (0..8)
        .map(|_| random_update(&mut generator, &mut rng, false, false))
        .collect();

    for (name, backend) in all_backends(&wsd) {
        let vfs = MemVfs::new();
        let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create(
            boxed(&vfs),
            backend.clone(),
            SyncPolicy::GroupCommit {
                max_batch: 4,
                max_wait: Duration::from_millis(10),
            },
        )
        .unwrap();
        // Race all updates so the committer forms real multi-update batches.
        let mut threads = Vec::new();
        for update in updates.clone() {
            let store = store.clone();
            threads.push(std::thread::spawn(move || store.update(update).unwrap()));
        }
        for t in threads {
            t.join().unwrap();
        }
        store.close().unwrap();

        let full = vfs.bytes(WAL_FILE).unwrap();
        let scanned = wal::scan(&full).unwrap();
        assert_eq!(scanned.update_count(), updates.len(), "[{name}]");
        let last = scanned.records.last().expect("at least one record");
        let last_start = *scanned.offsets.last().unwrap();

        // The state at the last batch boundary: everything except the final
        // record's updates.
        let committed_before_last: Vec<UpdateExpr> = scanned
            .records
            .iter()
            .take(scanned.records.len() - 1)
            .flat_map(|r| r.updates.iter().cloned())
            .collect();
        let boundary = reference_state(&backend, &committed_before_last);
        let config = EngineConfig::default();
        let want = probe(boundary, config, &queries);

        // Cut strictly inside the final record's frame — the first and last
        // interior byte plus a sampled stride in between: the torn batch
        // must vanish whole at every one of them.
        let mut cuts: Vec<usize> = ((last_start + 1)..scanned.valid_len).step_by(13).collect();
        cuts.push(scanned.valid_len - 1);
        cuts.dedup();
        for cut in cuts {
            let crashed = vfs.fork();
            {
                let mut handle = crashed.clone();
                Vfs::truncate(&mut handle, WAL_FILE, cut as u64).unwrap();
            }
            let recovered = maybms::Durable::<AnyBackend>::open(boxed(&crashed)).unwrap();
            assert_eq!(
                recovered.stats().recovered_records,
                committed_before_last.len() as u64,
                "[{name}] cut at {cut}: a partial batch replayed ({} updates in the torn record)",
                last.updates.len(),
            );
            assert_eq!(
                probe(recovered.into_inner(), config, &queries),
                want,
                "[{name}] cut at {cut}: recovery is not the batch boundary"
            );
        }
    }
}

#[test]
fn the_wire_protocol_round_trips_the_session_verbs_concurrently() {
    let mut rng = StdRng::seed_from_u64(0x713E);
    let mut generator = Generator::new(0x5EEDD);
    let wsd = random_wsd(&mut rng);
    let updates: Vec<UpdateExpr> = (0..6)
        .map(|_| random_update(&mut generator, &mut rng, false, false))
        .collect();

    let backend = AnyBackend::from(wsd.clone());
    let vfs = MemVfs::new();
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create_recording(
        boxed(&vfs),
        backend.clone(),
        SyncPolicy::GroupCommit {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        },
    )
    .unwrap();
    let handle = ws_server::spawn("127.0.0.1:0", store.clone()).unwrap();
    let addr = handle.addr();

    // Three clients apply updates concurrently over TCP.
    let mut writers = Vec::new();
    for chunk in updates.chunks(2) {
        let chunk = chunk.to_vec();
        writers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for update in &chunk {
                client.apply(update).unwrap();
            }
            client.close().unwrap();
        }));
    }
    for w in writers {
        w.join().unwrap();
    }

    // One client queries the settled state; a local session over the serial
    // replay must agree bit-identically.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.seq(), updates.len() as u64);
    let plan = client.prepare(maybms::q("R")).unwrap();
    let mut remote_rows = client.execute(&plan).unwrap();
    remote_rows.sort();
    let mut remote_conf: Vec<(Tuple, u64)> = client
        .confidence(&plan)
        .unwrap()
        .into_iter()
        .map(|(t, c)| (t, c.to_bits()))
        .collect();
    remote_conf.sort();

    let reference = reference_state(&backend, &store.history());
    let mut session = Session::over(reference);
    let prepared = session.prepare(maybms::q("R")).unwrap();
    let mut local_rows: Vec<Tuple> = session.execute(&prepared).unwrap().collect();
    local_rows.sort();
    assert_eq!(remote_rows, local_rows, "possible tuples diverge over TCP");
    let mut local_conf: Vec<(Tuple, u64)> = session
        .confidence(&prepared)
        .unwrap()
        .into_iter()
        .map(|(t, c)| (t, c.to_bits()))
        .collect();
    local_conf.sort();
    assert_eq!(remote_conf, local_conf, "confidences diverge over TCP");

    // Service counters made it into the remote summary.
    let summary = client.stats().unwrap();
    assert!(
        summary.contains("commit-batches=") && summary.contains("wire-bytes-in="),
        "service counters missing from {summary:?}"
    );
    let generation = client.checkpoint().unwrap();
    assert!(generation >= 1);
    client.shutdown_server().unwrap();
    handle.shutdown().unwrap();
    store.close().unwrap();
}
