//! The differential crash-recovery oracle: random update sequences applied
//! through a **durable** session (write-ahead logged onto a fault-injecting
//! in-memory medium), with a simulated crash after every prefix of WAL
//! records — plus torn mid-record tails — and recovery checked against the
//! uninterrupted in-memory run of the same prefix.
//!
//! For every backend, every crash point, with the optimizer on and off at 1
//! and 4 worker threads, the recovered state must answer queries
//! *bit-identically* to the in-memory reference: the same possible tuples,
//! the same exact confidences (compared by `f64::to_bits`), the same
//! reported conditioning masses, and the same `Inconsistent` outcomes at
//! the same step.
//!
//! A proptest half covers the codec beneath it all: for random world-sets,
//! `decode(encode(x))` re-encodes to the identical bytes on all five
//! representations, and the decoded state answers like the original.

use maybms::prelude::*;
use maybms::{q, AnyBackend, Durable, Persist, Session, UpdateExpr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ws_storage::wal::{self, WAL_FILE};

mod common;
use common::{all_backends, random_update, random_wsd, GenExpr, Generator};

fn boxed(vfs: &MemVfs) -> Box<dyn Vfs> {
    Box::new(vfs.clone())
}

/// The probe queries of one round: the two base relations plus two random
/// difference-free plans (so U-relations stay comparable).
fn probe_queries(generator: &mut Generator, rng: &mut StdRng) -> Vec<RaExpr> {
    let mut queries = vec![RaExpr::rel("R"), RaExpr::rel("S")];
    for _ in 0..2 {
        let GenExpr { expr, .. } = generator.expr(rng.gen_range(1..=2usize), false);
        queries.push(expr);
    }
    queries
}

/// Sorted possible answers + exact confidences of every probe query, under
/// one engine configuration.  Confidences are kept as raw bits so equality
/// is bit-identity, not an epsilon.
fn probe(backend: AnyBackend, config: EngineConfig, queries: &[RaExpr]) -> Vec<Vec<(Tuple, u64)>> {
    let mut session = Session::with_config(backend, config);
    queries
        .iter()
        .map(|query| {
            let prepared = session.prepare(query).expect("probe query typechecks");
            let mut rows: Vec<(Tuple, u64)> = session
                .confidence(&prepared)
                .expect("probe query evaluates")
                .into_iter()
                .map(|(t, c)| (t, c.to_bits()))
                .collect();
            rows.sort();
            rows
        })
        .collect()
}

/// The four engine configurations of the acceptance matrix.
fn configs() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for (label, base) in [
        ("optimized", EngineConfig::default()),
        ("naive", EngineConfig::naive()),
    ] {
        for threads in [1usize, 4] {
            out.push((
                format!("{label}/t{threads}"),
                EngineConfig { threads, ..base },
            ));
        }
    }
    out
}

/// Run one update sequence through a durable session and an in-memory
/// oracle session side by side, asserting identical per-step outcomes.
/// Returns the medium holding the full WAL.
fn run_side_by_side(label: &str, backend: &AnyBackend, updates: &[UpdateExpr]) -> MemVfs {
    let vfs = MemVfs::new();
    let mut durable = Session::create_durable_on(boxed(&vfs), backend.clone()).unwrap();
    let mut oracle = Session::over(backend.clone());
    for update in updates {
        match (durable.apply(update), oracle.apply(update)) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "[{label}] {update}: durable mass {a} vs in-memory {b}"
            ),
            (Err(a), Err(b)) => {
                // Failures must be the *same* deterministic failure — an
                // inconsistent conditioning step on both sides, or the same
                // backend diagnosis verbatim.
                assert_eq!(
                    a.is_inconsistent(),
                    b.is_inconsistent(),
                    "[{label}] {update}: inconsistency verdicts disagree"
                );
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "[{label}] {update}: error diagnoses disagree"
                );
            }
            (a, b) => panic!(
                "[{label}] {update}: durable says {:?}, in-memory says {:?}",
                a.map(|_| "ok").map_err(|e| e.to_string()),
                b.map(|_| "ok").map_err(|e| e.to_string()),
            ),
        }
    }
    assert_eq!(durable.stats().wal_records, updates.len() as u64);
    durable.close().unwrap();
    vfs
}

/// The in-memory state after applying a prefix of the sequence, failures
/// reproduced in place (an inconsistent conditioning step leaves its
/// deterministic partial state behind, exactly like live and like replay).
fn reference_state(backend: &AnyBackend, prefix: &[UpdateExpr]) -> AnyBackend {
    let mut state = backend.clone();
    for update in prefix {
        let _ = maybms::apply_update(&mut state, update);
    }
    state
}

/// Crash the medium at `cut` WAL bytes, recover, and compare against the
/// reference prefix state under every engine configuration.
fn crash_and_compare(
    label: &str,
    vfs: &MemVfs,
    cut: usize,
    backend: &AnyBackend,
    prefix: &[UpdateExpr],
    queries: &[RaExpr],
) {
    let image = vfs.fork();
    {
        let mut handle = image.clone();
        Vfs::truncate(&mut handle, WAL_FILE, cut as u64).unwrap();
    }
    let recovered = Durable::<AnyBackend>::open(Box::new(image))
        .unwrap_or_else(|e| panic!("[{label}] recovery at cut {cut} failed: {e}"));
    assert_eq!(
        recovered.stats().recovered_records,
        prefix.len() as u64,
        "[{label}] cut {cut} must replay exactly the logged prefix"
    );
    let recovered = recovered.into_inner();
    let reference = reference_state(backend, prefix);
    for (config_label, config) in configs() {
        let got = probe(recovered.clone(), config, queries);
        let want = probe(reference.clone(), config, queries);
        assert_eq!(
            got,
            want,
            "[{label}/{config_label}] answers diverge after crash at {} of {} update(s)",
            prefix.len(),
            vfs.bytes(WAL_FILE).map(|b| b.len()).unwrap_or(0),
        );
    }
}

#[test]
fn recovery_is_bit_identical_at_every_wal_record_boundary() {
    let mut rng = StdRng::seed_from_u64(0xD0_5AFE);
    let mut generator = Generator::new(0x5EED9);
    let mut inconsistent_sequences = 0usize;
    let mut conditioned_sequences = 0usize;
    for round in 0..10 {
        let wsd = random_wsd(&mut rng);
        let queries = probe_queries(&mut generator, &mut rng);
        // Update-only sequence; queries run at the crash points. Fractional
        // inserts are capped so the explicit-worlds backend stays small.
        let n_updates = rng.gen_range(3..=5usize);
        let mut fractional = 0usize;
        let updates: Vec<UpdateExpr> = (0..n_updates)
            .map(|_| {
                let u = random_update(&mut generator, &mut rng, fractional < 2, true);
                if matches!(&u, UpdateExpr::InsertPossible { prob, .. } if *prob > 0.0 && *prob < 1.0)
                {
                    fractional += 1;
                }
                u
            })
            .collect();
        let has_fractional = fractional > 0;
        conditioned_sequences += updates
            .iter()
            .any(|u| matches!(u, UpdateExpr::Condition { .. }))
            as usize;

        for (name, backend) in all_backends(&wsd) {
            if name == "database" && has_fractional {
                // A single world cannot split; it gets certain-only rounds.
                continue;
            }
            let label = format!("round {round}/{name}");
            let vfs = run_side_by_side(&label, &backend, &updates);
            let full = vfs.bytes(WAL_FILE).unwrap();
            let scanned = wal::scan(&full).unwrap();
            assert_eq!(scanned.records.len(), updates.len());
            inconsistent_sequences += {
                let mut probe_state = backend.clone();
                updates
                    .iter()
                    .any(|u| maybms::apply_update(&mut probe_state, u).is_err())
                    as usize
            };

            // Crash after every record boundary (0 records .. all records).
            for i in 0..=updates.len() {
                let cut = if i < updates.len() {
                    scanned.offsets[i]
                } else {
                    scanned.valid_len
                };
                crash_and_compare(&label, &vfs, cut, &backend, &updates[..i], &queries);
                // And mid-record: the torn tail must truncate back to the
                // same prefix.
                if i < updates.len() {
                    crash_and_compare(&label, &vfs, cut + 3, &backend, &updates[..i], &queries);
                }
            }
        }
    }
    assert!(
        conditioned_sequences > 2,
        "the generator produced too few conditioning steps"
    );
    assert!(
        inconsistent_sequences > 0,
        "no sequence exercised the inconsistent outcome"
    );
}

#[test]
fn checkpoints_move_the_recovery_base_without_changing_answers() {
    let mut rng = StdRng::seed_from_u64(0xC0C0A);
    let mut generator = Generator::new(0x5EEDA);
    for _ in 0..6 {
        let wsd = random_wsd(&mut rng);
        let queries = probe_queries(&mut generator, &mut rng);
        let before: Vec<UpdateExpr> = (0..2)
            .map(|_| random_update(&mut generator, &mut rng, false, false))
            .collect();
        let after: Vec<UpdateExpr> = (0..2)
            .map(|_| random_update(&mut generator, &mut rng, false, false))
            .collect();
        for (name, backend) in all_backends(&wsd) {
            let vfs = MemVfs::new();
            let mut durable = Session::create_durable_on(boxed(&vfs), backend.clone()).unwrap();
            for u in &before {
                durable.apply(u).unwrap();
            }
            // Leave a live scratch result registered, then checkpoint: the
            // snapshot must hold base relations only.
            let p = durable.prepare(q("R")).unwrap();
            let _ = durable.materialize(&p).unwrap();
            let generation = durable.checkpoint().unwrap();
            assert_eq!(generation, 1, "[{name}] first checkpoint");
            assert_eq!(durable.stats().wal_records, 0);
            for u in &after {
                durable.apply(u).unwrap();
            }
            durable.close().unwrap();

            let recovered = Durable::<AnyBackend>::open(boxed(&vfs)).unwrap();
            assert_eq!(recovered.generation(), 1);
            assert_eq!(
                recovered.stats().recovered_records,
                after.len() as u64,
                "[{name}] only the post-checkpoint tail replays"
            );
            let mut reference = backend.clone();
            for u in before.iter().chain(&after) {
                maybms::apply_update(&mut reference, u).unwrap();
            }
            let config = EngineConfig::default();
            assert_eq!(
                probe(recovered.into_inner(), config, &queries),
                probe(reference, config, &queries),
                "[{name}] checkpointed recovery diverges"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Property: on every backend, the snapshot codec round-trips exactly —
    // re-encoding the decoded state reproduces the identical bytes, and the
    // decoded state answers queries identically to the original.
    #[test]
    fn codec_roundtrips_every_backend(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DEC);
        let wsd = random_wsd(&mut rng);
        let queries = vec![RaExpr::rel("R"), RaExpr::rel("S")];
        for (name, backend) in all_backends(&wsd) {
            let bytes = backend.encode_to_vec();
            let decoded = AnyBackend::decode_from_slice(&bytes)
                .unwrap_or_else(|e| panic!("[{name}] decode failed: {e}"));
            prop_assert_eq!(
                decoded.encode_to_vec(),
                bytes,
                "[{}] decode(encode(x)) must re-encode identically",
                name
            );
            let config = EngineConfig::default();
            prop_assert_eq!(
                probe(decoded, config, &queries),
                probe(backend, config, &queries),
                "[{}] decoded state answers differently",
                name
            );
        }
    }

    // Property: a WAL tail torn at *any* byte position recovers to some
    // record-boundary prefix — never an error, never a half-applied record.
    #[test]
    fn torn_tails_always_recover_to_a_record_boundary(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7047);
        let mut generator = Generator::new(seed ^ 0x5EEDB);
        let wsd = random_wsd(&mut rng);
        let backend = AnyBackend::from(wsd);
        let updates: Vec<UpdateExpr> = (0..3)
            .map(|_| random_update(&mut generator, &mut rng, true, false))
            .collect();
        let vfs = run_side_by_side("torn", &backend, &updates);
        let full = vfs.bytes(WAL_FILE).unwrap();
        let scanned = wal::scan(&full).unwrap();
        let cut = rng.gen_range(wal::WAL_HEADER_LEN..=full.len());
        let image = vfs.fork();
        {
            let mut handle = image.clone();
            Vfs::truncate(&mut handle, WAL_FILE, cut as u64).unwrap();
        }
        let recovered = Durable::<AnyBackend>::open(Box::new(image)).unwrap();
        let replayed = recovered.stats().recovered_records as usize;
        prop_assert!(replayed <= updates.len());
        // The replayed count is exactly the number of whole records below
        // the cut.
        let whole = scanned
            .offsets
            .iter()
            .enumerate()
            .take_while(|(i, &off)| {
                let end = scanned
                    .offsets
                    .get(i + 1)
                    .copied()
                    .unwrap_or(scanned.valid_len);
                end <= cut && off < cut
            })
            .count();
        prop_assert_eq!(replayed, whole, "cut at {} of {}", cut, full.len());
    }
}

/// Satellite of the ws-server PR: a reader that pins a snapshot and then
/// sits through checkpoint churn must keep its image even after keep-2
/// pruning has removed that generation's file from disk — MVCC pinning is
/// `Arc` liveness, not file liveness.
#[test]
fn pinned_readers_survive_checkpoint_churn_past_keep_2_pruning() {
    use std::time::Duration;
    use ws_server::ConcurrentStore;
    use ws_storage::snapshot::snapshot_name;
    use ws_storage::SyncPolicy;

    const CHURN: usize = 4;
    let mut rng = StdRng::seed_from_u64(0xC8A9);
    let mut generator = Generator::new(0x5EEDE);
    let wsd = random_wsd(&mut rng);
    let queries = probe_queries(&mut generator, &mut rng);
    let updates: Vec<UpdateExpr> = (0..CHURN)
        .map(|_| random_update(&mut generator, &mut rng, false, false))
        .collect();

    for (name, backend) in all_backends(&wsd) {
        let vfs = MemVfs::new();
        let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create_recording(
            boxed(&vfs),
            backend.clone(),
            SyncPolicy::GroupCommit {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
            },
        )
        .unwrap();

        // Pin one snapshot per generation while churning through
        // update+checkpoint cycles.
        let mut pinned = vec![store.snapshot()];
        for update in &updates {
            store.update(update.clone()).unwrap();
            store.checkpoint().unwrap();
            pinned.push(store.snapshot());
        }
        let history = store.history();
        store.close().unwrap();

        // Keep-2 pruning has removed the early generations from disk…
        let files = {
            let mut handle = vfs.clone();
            Vfs::list(&mut handle).unwrap()
        };
        assert!(
            !files.contains(&snapshot_name(0)) && !files.contains(&snapshot_name(1)),
            "[{name}] early snapshot generations should be pruned, files: {files:?}"
        );
        assert!(
            files.contains(&snapshot_name(CHURN as u64)),
            "[{name}] the newest generation must exist"
        );

        // …yet every pinned image still answers exactly as the serial
        // prefix it was pinned at, bit-identically.
        let config = EngineConfig::default();
        for snap in pinned {
            assert_eq!(
                snap.generation, snap.seq,
                "[{name}] one checkpoint per update in this schedule"
            );
            let reference = reference_state(&backend, &history[..snap.seq as usize]);
            assert_eq!(
                probe(snap.backend.clone(), config, &queries),
                probe(reference, config, &queries),
                "[{name}] the image pinned at generation {} drifted",
                snap.generation
            );
        }
    }
}
