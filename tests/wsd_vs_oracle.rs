//! Integration tests: WSD query evaluation, chase and confidence computation
//! against the explicit world-enumeration oracle, on randomly generated
//! world-sets.
//!
//! These are the cross-crate counterparts of Theorem 1 (query correctness),
//! Theorem 3 (chase correctness) and the §6 confidence semantics: whatever
//! the decomposition-level algorithms compute must coincide with evaluating
//! per world and recombining.

use maybms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ws_baselines::explicit;

/// Build a random WSD over R[A, B, C] with `tuples` tuple slots: every field
/// independently gets 1–3 possible small integer values, and a few fields may
/// be `⊥` in some local worlds (tuples absent from some worlds).
fn random_wsd(rng: &mut StdRng, tuples: usize) -> Wsd {
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], tuples)
        .unwrap();
    for t in 0..tuples {
        for attr in ["A", "B", "C"] {
            let n = rng.gen_range(1..=3usize);
            let mut values: Vec<Value> = Vec::new();
            for _ in 0..n {
                let v = rng.gen_range(0..4i64);
                let candidate = if attr == "C" && rng.gen_bool(0.15) {
                    Value::Bottom
                } else {
                    Value::int(v)
                };
                if !values.contains(&candidate) {
                    values.push(candidate);
                }
            }
            wsd.set_uniform(FieldId::new("R", t, attr), values).unwrap();
        }
    }
    wsd
}

/// A pool of queries exercising every operator.
fn query_pool() -> Vec<RaExpr> {
    vec![
        RaExpr::rel("R").select(Predicate::eq_const("A", 1i64)),
        RaExpr::rel("R").select(Predicate::cmp_const("B", CmpOp::Gt, 1i64)),
        RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Eq, "B")),
        RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Lt, "C")),
        RaExpr::rel("R").project(vec!["A"]),
        RaExpr::rel("R")
            .select(Predicate::eq_const("C", 2i64))
            .project(vec!["B", "A"]),
        RaExpr::rel("R").select(Predicate::and(vec![
            Predicate::cmp_const("A", CmpOp::Ge, 1i64),
            Predicate::cmp_const("B", CmpOp::Le, 2i64),
        ])),
        RaExpr::rel("R").select(Predicate::or(vec![
            Predicate::eq_const("A", 0i64),
            Predicate::eq_const("B", 3i64),
        ])),
        RaExpr::rel("R").select(Predicate::not(Predicate::eq_const("A", 2i64))),
        RaExpr::rel("R")
            .select(Predicate::eq_const("A", 1i64))
            .union(RaExpr::rel("R").select(Predicate::eq_const("B", 2i64))),
        RaExpr::rel("R").difference(RaExpr::rel("R").select(Predicate::eq_const("C", 1i64))),
        RaExpr::rel("R").rename("A", "A2"),
        RaExpr::rel("R")
            .project(vec!["A"])
            .rename("A", "X")
            .product(RaExpr::rel("R").project(vec!["B"])),
    ]
}

fn distributions_match(a: &[(Relation, f64)], b: &[(Relation, f64)]) -> bool {
    a.len() == b.len()
        && a.iter().all(|(ra, pa)| {
            b.iter()
                .find(|(rb, _)| ra.set_eq(rb))
                .is_some_and(|(_, pb)| (pa - pb).abs() < 1e-9)
        })
}

#[test]
fn queries_on_random_wsds_match_the_per_world_oracle() {
    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..12 {
        let wsd = random_wsd(&mut rng, 2 + round % 3);
        let worlds = wsd.rep().unwrap();
        for query in query_pool() {
            let oracle = explicit::query_distribution(&worlds, &query).unwrap();
            let mut evaluated = wsd.clone();
            maybms::relational::evaluate_query(&mut evaluated, &query, "OUT").unwrap();
            evaluated.validate().unwrap();
            let ours = evaluated.rep_relation("OUT", 1_000_000).unwrap();
            assert!(
                distributions_match(&oracle, &ours),
                "round {round}: {query} disagrees with the oracle"
            );
        }
    }
}

#[test]
fn chase_on_random_wsds_matches_world_filtering() {
    let mut rng = StdRng::seed_from_u64(77);
    let dependencies = vec![
        Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["B"])),
        Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "A",
            1i64,
            "C",
            CmpOp::Ne,
            2i64,
        )),
    ];
    let mut checked = 0;
    for _ in 0..15 {
        let wsd = random_wsd(&mut rng, 2);
        let worlds = wsd.rep().unwrap();
        let oracle = explicit::chase_worlds(&worlds, &dependencies);
        let mut chased = wsd.clone();
        let result = chase(&mut chased, &dependencies);
        match (oracle, result) {
            (Err(WsError::Inconsistent), Err(WsError::Inconsistent)) => {}
            (Ok(expected), Ok(_mass)) => {
                let actual = chased.rep().unwrap();
                assert!(expected.same_worlds(&actual));
                assert!(expected.same_distribution(&actual, 1e-9));
                checked += 1;
            }
            (oracle, ours) => {
                panic!("oracle and chase disagree on consistency: oracle={oracle:?} ours={ours:?}")
            }
        }
    }
    assert!(checked >= 5, "too few consistent scenarios were exercised");
}

#[test]
fn confidence_and_possible_match_the_oracle_on_random_wsds() {
    let mut rng = StdRng::seed_from_u64(5150);
    for _ in 0..10 {
        let wsd = random_wsd(&mut rng, 3);
        let worlds = wsd.rep().unwrap();
        let possible_oracle = explicit::possible_tuples(&worlds, "R").unwrap();
        let view = TupleLevelView::new(&wsd, "R").unwrap();
        let possible_ours = view.possible().unwrap();
        assert_eq!(possible_ours.row_set().len(), possible_oracle.len());
        for tuple in &possible_oracle {
            assert!(possible_ours.contains(tuple));
            let expected = explicit::confidence(&worlds, "R", tuple).unwrap();
            let actual = view.conf(tuple).unwrap();
            assert!(
                (expected - actual).abs() < 1e-9,
                "conf({tuple}) = {actual}, oracle = {expected}"
            );
        }
    }
}

#[test]
fn normalization_never_changes_the_represented_world_set() {
    let mut rng = StdRng::seed_from_u64(909);
    for _ in 0..10 {
        let mut wsd = random_wsd(&mut rng, 3);
        // Randomly compose a few components to de-normalize the WSD.
        let fields: Vec<FieldId> = ["A", "B", "C"]
            .iter()
            .flat_map(|a| (0..3).map(move |t| FieldId::new("R", t, *a)))
            .collect();
        let i = rng.gen_range(0..fields.len());
        let j = rng.gen_range(0..fields.len());
        wsd.compose_fields(&[fields[i].clone(), fields[j].clone()])
            .unwrap();
        let before = wsd.rep().unwrap();
        normalize(&mut wsd).unwrap();
        wsd.validate().unwrap();
        let after = wsd.rep().unwrap();
        assert!(before.same_worlds(&after));
        assert!(before.same_distribution(&after, 1e-9));
    }
}

#[test]
fn query_results_stay_correlated_with_their_inputs() {
    // The §4 motivating example: σ_{A=1}(R) ∪ σ_{B=2}(R) must be computed
    // against the same worlds as R itself, not an independent copy.
    let mut rng = StdRng::seed_from_u64(31337);
    let wsd = random_wsd(&mut rng, 2);
    let mut evaluated = wsd.clone();
    maybms::relational::evaluate_query(
        &mut evaluated,
        &RaExpr::rel("R").select(Predicate::eq_const("A", 1i64)),
        "S1",
    )
    .unwrap();
    maybms::relational::evaluate_query(
        &mut evaluated,
        &RaExpr::rel("R").select(Predicate::eq_const("B", 2i64)),
        "S2",
    )
    .unwrap();
    // In every world, S1 and S2 are exactly the per-world selections of R.
    for (db, _) in evaluated.enumerate_worlds(1_000_000).unwrap() {
        let r = db.relation("R").unwrap();
        let s1 = db.relation("S1").unwrap();
        let s2 = db.relation("S2").unwrap();
        for t in r.rows() {
            assert_eq!(t[0] == Value::int(1), s1.contains(t));
            assert_eq!(t[1] == Value::int(2), s2.contains(t));
        }
        for t in s1.rows() {
            assert!(r.contains(t));
        }
        for t in s2.rows() {
            assert!(r.contains(t));
        }
    }
}
