//! The tiered-confidence equivalence suite: on every backend, for every
//! strategy, [`Session::confidence`] must produce **bit-identical** numbers.
//!
//! The inputs are *dyadic* world-sets — every probability is one of
//! 1/4, 1/2, 3/4 or 1 (two mantissa bits), with small joint spaces — so every
//! exact algorithm (safe-plan extensional evaluation, the d-tree compiler,
//! each backend's native enumeration) computes sums and products of exactly
//! representable `f64`s with no rounding anywhere.  Equality is therefore
//! checked with `f64::to_bits`, not a tolerance: the tiers are proven to be
//! the *same function*, across all five representations, with the optimizer
//! on and off, at one and four threads.

mod common;

use std::collections::BTreeSet;

use common::{all_backends, Generator};
use maybms::prelude::*;
use maybms::{AnyBackend, ConfidenceStrategy, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random WSD over `R[A, B]` and `S[C]` whose or-set fields have 2 or
/// 4 uniform alternatives — all probabilities dyadic, joint space ≤ 4^5.
fn dyadic_wsd(rng: &mut StdRng) -> Wsd {
    let mut wsd = Wsd::new();
    let r_tuples = rng.gen_range(2..=3usize);
    let s_tuples = rng.gen_range(1..=2usize);
    wsd.register_relation("R", &["A", "B"], r_tuples).unwrap();
    wsd.register_relation("S", &["C"], s_tuples).unwrap();
    let mut fields: Vec<FieldId> = Vec::new();
    for t in 0..r_tuples {
        fields.push(FieldId::new("R", t, "A"));
        fields.push(FieldId::new("R", t, "B"));
    }
    for t in 0..s_tuples {
        fields.push(FieldId::new("S", t, "C"));
    }
    let mut or_fields = 0usize;
    for field in fields {
        if or_fields < 5 && rng.gen_bool(0.4) {
            or_fields += 1;
            // 2 or 4 uniform alternatives: probabilities 1/2 or 1/4.
            let n = if rng.gen_bool(0.75) { 2 } else { 4 };
            let mut alternatives: BTreeSet<i64> = BTreeSet::new();
            while alternatives.len() < n {
                alternatives.insert(rng.gen_range(0..8i64));
            }
            wsd.set_uniform(field, alternatives.into_iter().map(Value::int).collect())
                .unwrap();
        } else {
            wsd.set_certain(field, Value::int(rng.gen_range(0..8i64)))
                .unwrap();
        }
    }
    wsd.validate().unwrap();
    wsd
}

/// Confidence rows of `query` under one configuration, with the strategy's
/// tier counters.
fn conf_rows(
    backend: AnyBackend,
    query: &RaExpr,
    strategy: ConfidenceStrategy,
    threads: usize,
    optimize: bool,
) -> (Vec<(Tuple, f64)>, SessionStats) {
    let config = EngineConfig {
        optimize,
        ..EngineConfig::with_threads(threads)
    };
    let mut session = Session::with_config(backend, config);
    session.set_confidence_strategy(strategy);
    let prepared = session.prepare(query.clone()).unwrap();
    let rows = session.confidence(&prepared).unwrap();
    (rows, session.stats())
}

fn assert_bit_identical(
    expected: &[(Tuple, f64)],
    got: &[(Tuple, f64)],
    context: &dyn std::fmt::Display,
) {
    assert_eq!(
        expected.len(),
        got.len(),
        "[{context}] possible-tuple sets differ"
    );
    for ((te, ce), (tg, cg)) in expected.iter().zip(got) {
        assert_eq!(te, tg, "[{context}] tuple order differs");
        assert_eq!(
            ce.to_bits(),
            cg.to_bits(),
            "[{context}] conf({te}) = {cg}, exact {ce}"
        );
    }
}

/// The tentpole proof: random positive plans on dyadic world-sets — for
/// every backend × strategy × thread count × optimizer setting, the tiered
/// confidences are bit-identical to the native exact enumeration.
#[test]
fn tiers_are_bit_identical_to_exact_enumeration_on_dyadic_inputs() {
    let strategies = [ConfidenceStrategy::Tiered, ConfidenceStrategy::CompiledOnly];
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xD1AD_0000 + seed);
        let wsd = dyadic_wsd(&mut rng);
        let mut generator = Generator::new(0xBEEF_0000 + seed);
        let gen = generator.expr(2, false);
        for (name, backend) in all_backends(&wsd) {
            for threads in [1usize, 4] {
                for optimize in [true, false] {
                    let context = format!(
                        "seed {seed} backend {name} threads {threads} optimize {optimize} \
                         plan {}",
                        gen.expr
                    );
                    let (exact, exact_stats) = conf_rows(
                        backend.clone(),
                        &gen.expr,
                        ConfidenceStrategy::ExactOnly,
                        threads,
                        optimize,
                    );
                    assert_eq!(exact_stats.conf_exact, 1, "[{context}] ExactOnly tier");
                    for strategy in strategies {
                        let (rows, stats) =
                            conf_rows(backend.clone(), &gen.expr, strategy, threads, optimize);
                        assert_bit_identical(&exact, &rows, &context);
                        assert_eq!(
                            stats.conf_safe + stats.conf_compiled + stats.conf_exact,
                            1,
                            "[{context}] exactly one tier must fire"
                        );
                        if strategy == ConfidenceStrategy::CompiledOnly {
                            assert_eq!(stats.conf_safe, 0, "[{context}] CompiledOnly used safe");
                        }
                    }
                }
            }
        }
    }
}

/// Plans with difference have no DNF lineage: every strategy must agree by
/// falling back to the native exact path.
#[test]
fn difference_plans_fall_back_to_the_native_exact_path() {
    let mut rng = StdRng::seed_from_u64(0xD1FF_0001);
    let wsd = dyadic_wsd(&mut rng);
    let query = RaExpr::rel("R")
        .select(Predicate::cmp_const("A", CmpOp::Le, 3i64))
        .difference(RaExpr::rel("R").select(Predicate::cmp_const("B", CmpOp::Ge, 2i64)));
    for (name, backend) in all_backends(&wsd) {
        if name == "urel" {
            // U-relations reject difference outright (it is not a positive
            // operator there); the tier question does not arise.
            continue;
        }
        let (exact, _) = conf_rows(
            backend.clone(),
            &query,
            ConfidenceStrategy::ExactOnly,
            1,
            true,
        );
        let (rows, stats) = conf_rows(backend, &query, ConfidenceStrategy::Tiered, 1, true);
        assert_bit_identical(&exact, &rows, &format!("difference on {name}"));
        assert_eq!(
            stats.conf_exact, 1,
            "[{name}] difference must use the exact tier"
        );
        assert_eq!(stats.conf_safe + stats.conf_compiled, 0);
    }
}

/// A hierarchical (safe) plan on a tuple-independent U-relation: the safe
/// tier must fire and agree bit-for-bit with the d-tree compiler and the
/// native enumeration.
#[test]
fn safe_tier_fires_on_hierarchical_plans() {
    let mut udb = UDatabase::new();
    let mut rel = URelation::new(Schema::new("T", &["A", "B"]).unwrap());
    for i in 0..12i64 {
        let var = format!("x{i}");
        udb.world_table_mut()
            .add_variable(&var, vec![0.25, 0.75])
            .unwrap();
        rel.push(Tuple::from_iter([i, i % 3]), WsDescriptor::bind(&var, 1))
            .unwrap();
    }
    udb.insert_relation(rel);
    let query = RaExpr::rel("T")
        .select(Predicate::cmp_const("A", CmpOp::Lt, 9i64))
        .project(vec!["B"]);
    let backend = AnyBackend::from(udb);
    let (exact, _) = conf_rows(
        backend.clone(),
        &query,
        ConfidenceStrategy::ExactOnly,
        1,
        true,
    );
    let (tiered, stats) = conf_rows(backend.clone(), &query, ConfidenceStrategy::Tiered, 1, true);
    assert_eq!(
        stats.conf_safe, 1,
        "hierarchical plan must hit the safe tier"
    );
    assert_bit_identical(&exact, &tiered, &"safe tier");
    let (compiled, stats) = conf_rows(backend, &query, ConfidenceStrategy::CompiledOnly, 1, true);
    assert_eq!(stats.conf_compiled, 1);
    assert_bit_identical(&exact, &compiled, &"compiled tier");
}

/// A self-join is not hierarchical: the tiered strategy must skip the safe
/// tier and answer through the d-tree compiler, still bit-identical.
#[test]
fn unsafe_plans_compile_lineage_instead() {
    let mut udb = UDatabase::new();
    let mut rel = URelation::new(Schema::new("T", &["A", "B"]).unwrap());
    for (i, (a, b)) in [(1i64, 1i64), (1, 2), (2, 1), (2, 2)]
        .into_iter()
        .enumerate()
    {
        let var = format!("x{i}");
        udb.world_table_mut()
            .add_variable(&var, vec![0.5, 0.5])
            .unwrap();
        rel.push(Tuple::from_iter([a, b]), WsDescriptor::bind(&var, 1))
            .unwrap();
    }
    udb.insert_relation(rel);
    // π_A(T) ⋈ π_B-renamed(T): the same relation twice — not hierarchical.
    let query = RaExpr::rel("T")
        .project(vec!["A"])
        .product(RaExpr::rel("T").project(vec!["B"]).rename("B", "B2"))
        .select(Predicate::cmp_attr("A", CmpOp::Eq, "B2"));
    let backend = AnyBackend::from(udb);
    let (exact, _) = conf_rows(
        backend.clone(),
        &query,
        ConfidenceStrategy::ExactOnly,
        1,
        true,
    );
    let (tiered, stats) = conf_rows(backend, &query, ConfidenceStrategy::Tiered, 1, true);
    assert_eq!(
        stats.conf_compiled, 1,
        "self-join must decline the safe tier and compile"
    );
    assert_bit_identical(&exact, &tiered, &"compiled tier on self-join");
}

/// The Monte-Carlo tier is untouched by the strategy: estimates stay within
/// ε of the exact confidences and the approx counter records the call.
#[test]
fn approx_stays_within_epsilon_of_every_exact_tier() {
    let mut rng = StdRng::seed_from_u64(0xA11C_0007);
    let wsd = dyadic_wsd(&mut rng);
    let query = RaExpr::rel("R").project(vec!["B"]);
    let config = ApproxConfig::new(0.05, 0.01);
    for (name, backend) in all_backends(&wsd) {
        let (exact, _) = conf_rows(backend.clone(), &query, ConfidenceStrategy::Tiered, 1, true);
        let mut session = Session::over(backend);
        let prepared = session.prepare(query.clone()).unwrap();
        let approx = session.confidence_approx(&prepared, &config).unwrap();
        assert_eq!(session.stats().conf_approx, 1);
        assert_eq!(exact.len(), approx.len(), "[{name}] possible sets differ");
        // The Monte-Carlo evaluators order tuples their own way; compare as
        // maps.
        let estimates: std::collections::BTreeMap<Tuple, f64> = approx.into_iter().collect();
        for (tuple, ce) in &exact {
            let ca = estimates
                .get(tuple)
                .unwrap_or_else(|| panic!("[{name}] {tuple} missing from approx"));
            assert!(
                (ce - ca).abs() <= config.epsilon,
                "[{name}] approx conf({tuple}) = {ca}, exact {ce}"
            );
        }
    }
}
