//! The worked examples of the paper, reproduced number for number:
//! the introduction's 32/24-world census forms, Example 3's world
//! probability, Figures 4–8, Example 11's confidences and Figure 22's
//! renormalized component.

use maybms::prelude::*;

/// The or-set relation of the introduction (Figure 1's two survey forms).
fn intro_or_relation() -> OrSetRelation {
    let schema = Schema::new("R", &["S", "N", "M"]).unwrap();
    let mut rel = OrSetRelation::new(schema);
    rel.push(vec![
        OrSet::of(vec![185i64, 785]),
        OrSet::certain("Smith"),
        OrSet::of(vec![1i64, 2]),
    ])
    .unwrap();
    rel.push(vec![
        OrSet::of(vec![185i64, 186]),
        OrSet::certain("Brown"),
        OrSet::of(vec![1i64, 2, 3, 4]),
    ])
    .unwrap();
    rel
}

#[test]
fn introduction_32_worlds_and_24_after_cleaning() {
    let rel = intro_or_relation();
    assert_eq!(rel.world_count(), 2 * 2 * 2 * 4);
    let mut wsd = rel.to_wsd().unwrap();
    // "all social security numbers are unique" = the FD S → N, M.
    chase(
        &mut wsd,
        &[Dependency::Fd(FunctionalDependency::new(
            "R",
            vec!["S"],
            vec!["N", "M"],
        ))],
    )
    .unwrap();
    assert_eq!(wsd.rep().unwrap().len(), 24);
    // Figure 3's component shape after normalization: {t1.S, t2.S} together,
    // the other fields in singleton components (5 components total).
    normalize(&mut wsd).unwrap();
    assert_eq!(wsd.component_count(), 5);
    let slot_s1 = wsd.slot_of(&FieldId::new("R", 0, "S")).unwrap();
    let slot_s2 = wsd.slot_of(&FieldId::new("R", 1, "S")).unwrap();
    assert_eq!(slot_s1, slot_s2);
    assert_eq!(wsd.component(slot_s1).unwrap().len(), 3);
}

#[test]
fn example3_world_probability_is_0_015() {
    // Choosing (185,186) for the SSNs, Smith/Brown, M=2 for both tuples has
    // probability 0.2 · 1 · 0.3 · 1 · 0.25 = 0.015 in the Figure 4 WSD.
    let wsd = maybms::core::wsd::example_census_wsd();
    let worlds = wsd.rep().unwrap();
    let mut target = Database::new();
    let mut r = Relation::new(Schema::new("R", &["S", "N", "M"]).unwrap());
    r.push(Tuple::from_iter([
        Value::int(185),
        Value::text("Smith"),
        Value::int(2),
    ]))
    .unwrap();
    r.push(Tuple::from_iter([
        Value::int(186),
        Value::text("Brown"),
        Value::int(2),
    ]))
    .unwrap();
    target.insert_relation(r);
    assert!((worlds.probability_of(&target) - 0.015).abs() < 1e-9);
    assert!((worlds.total_probability() - 1.0).abs() < 1e-9);
    assert_eq!(worlds.len(), 24);
}

#[test]
fn figure5_wsdt_has_two_certain_names_and_four_placeholders() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let wsdt = Wsdt::from_wsd(&wsd).unwrap();
    assert_eq!(wsdt.placeholder_count(), 4);
    assert_eq!(wsdt.component_count(), 3);
    let template = &wsdt.templates["R"];
    assert_eq!(template.rows()[0][1], Value::text("Smith"));
    assert_eq!(template.rows()[1][1], Value::text("Brown"));
}

#[test]
fn figure6_and_7_tuple_independent_database_as_a_wsd() {
    let ti = maybms::baselines::figure6_database();
    let wsd = ti.to_wsd().unwrap();
    // Figure 7: three components, one per independent tuple.
    assert_eq!(wsd.component_count(), 3);
    let worlds = wsd.rep().unwrap();
    assert_eq!(worlds.len(), 8);
    // Probabilities of D1 and D3 from Figure 6 (b).
    let mut d1 = Database::new();
    let mut s = Relation::new(Schema::new("S", &["A", "B"]).unwrap());
    s.push(Tuple::from_iter([Value::text("m"), Value::int(1)]))
        .unwrap();
    s.push(Tuple::from_iter([Value::text("n"), Value::int(1)]))
        .unwrap();
    let mut t = Relation::new(Schema::new("T", &["C", "D"]).unwrap());
    t.push(Tuple::from_iter([Value::int(1), Value::text("p")]))
        .unwrap();
    d1.insert_relation(s);
    d1.insert_relation(t.clone());
    assert!((worlds.probability_of(&d1) - 0.24).abs() < 1e-9);

    let mut d3 = Database::new();
    let mut s3 = Relation::new(Schema::new("S", &["A", "B"]).unwrap());
    s3.push(Tuple::from_iter([Value::text("n"), Value::int(1)]))
        .unwrap();
    d3.insert_relation(s3);
    d3.insert_relation(t);
    assert!((worlds.probability_of(&d3) - 0.06).abs() < 1e-9);
}

#[test]
fn figure8_uwsdt_shape() {
    // The UWSDT of Figure 8: t2.M is certain (3), SSNs share component C1,
    // t1.M has its own component C2; C has 8 entries, W has 5.
    let mut wsd = maybms::core::wsd::example_census_wsd();
    // Restrict t2.M to the single value 3 as in Example 6.
    let slot = wsd.slot_of(&FieldId::new("R", 1, "M")).unwrap();
    let comp = wsd.component_mut(slot).unwrap();
    comp.rows.retain(|r| r.values[0] == Value::int(3));
    comp.renormalize().unwrap();
    let uwsdt = from_wsd(&wsd).unwrap();
    let stats = stats_for(&uwsdt, "R").unwrap();
    assert_eq!(stats.placeholders, 3); // t1.S, t2.S, t1.M
    assert_eq!(stats.components, 2); // C1 (SSN pair) and C2 (t1.M)
    assert_eq!(stats.components_multi, 1);
    assert_eq!(stats.c_size, 3 + 3 + 2);
    let template = uwsdt.template("R").unwrap();
    assert_eq!(template.rows()[1][2], Value::int(3));
}

#[test]
fn example11_projection_confidences() {
    let mut wsd = maybms::core::wsd::example_census_wsd();
    maybms::relational::evaluate_query(&mut wsd, &RaExpr::rel("R").project(vec!["S"]), "Q")
        .unwrap();
    let answers = possible_with_confidence(&wsd, "Q").unwrap();
    let lookup = |v: i64| -> f64 {
        answers
            .iter()
            .find(|(t, _)| t[0] == Value::int(v))
            .map(|(_, c)| *c)
            .unwrap()
    };
    assert!((lookup(185) - 0.6).abs() < 1e-9);
    assert!((lookup(186) - 0.6).abs() < 1e-9);
    assert!((lookup(785) - 0.8).abs() < 1e-9);
}

#[test]
fn figure22_chase_renormalizes_to_the_paper_values() {
    let mut wsd = maybms::core::wsd::example_census_wsd();
    chase(
        &mut wsd,
        &[Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "S",
            785i64,
            "M",
            CmpOp::Eq,
            1i64,
        ))],
    )
    .unwrap();
    let comp = wsd.component_of(&FieldId::new("R", 0, "S")).unwrap();
    assert_eq!(comp.len(), 4);
    let mut probs: Vec<f64> = comp.rows.iter().map(|r| r.prob).collect();
    probs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let expected = [0.06 / 0.76, 0.14 / 0.76, 0.28 / 0.76, 0.28 / 0.76];
    let mut expected = expected.to_vec();
    expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (p, e) in probs.iter().zip(expected) {
        assert!((p - e).abs() < 1e-9);
    }
}

#[test]
fn figure10_to_13_selection_examples() {
    // Build Fig. 10's eight worlds via a WSD and check the σ_{A=B} result of
    // Fig. 13: five distinct result worlds with sizes 3, 2, 2, 2, 1.
    let mut wsd = Wsd::new();
    wsd.register_relation("R", &["A", "B", "C"], 3).unwrap();
    wsd.set_uniform(
        FieldId::new("R", 0, "A"),
        vec![Value::int(1), Value::int(2)],
    )
    .unwrap();
    let mut c2 = Component::new(vec![
        FieldId::new("R", 0, "B"),
        FieldId::new("R", 0, "C"),
        FieldId::new("R", 1, "B"),
    ]);
    c2.push_row(vec![Value::int(1), Value::int(0), Value::int(3)], 0.5)
        .unwrap();
    c2.push_row(vec![Value::int(2), Value::int(7), Value::int(4)], 0.5)
        .unwrap();
    wsd.add_component(c2).unwrap();
    wsd.set_uniform(
        FieldId::new("R", 1, "A"),
        vec![Value::int(4), Value::int(5)],
    )
    .unwrap();
    wsd.set_certain(FieldId::new("R", 1, "C"), Value::int(0))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 2, "A"), Value::int(6))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 2, "B"), Value::int(6))
        .unwrap();
    wsd.set_certain(FieldId::new("R", 2, "C"), Value::int(7))
        .unwrap();
    assert_eq!(wsd.rep().unwrap().len(), 8);

    maybms::relational::evaluate_query(
        &mut wsd,
        &RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Eq, "B")),
        "P",
    )
    .unwrap();
    let result_worlds = wsd.rep_relation("P", 100_000).unwrap();
    assert_eq!(result_worlds.len(), 5);
    let mut sizes: Vec<usize> = result_worlds.iter().map(|(r, _)| r.len()).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 2, 2, 2, 3]);
}
