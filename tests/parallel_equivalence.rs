//! Parallel-executor identity and (ε, δ)-approximation accuracy.
//!
//! Two properties of the PR-2 parallel subsystem, checked on the same random
//! well-typed plans as `tests/engine_equivalence.rs`:
//!
//! 1. **Thread-count identity** — for threads ∈ {2, 4, 8}, every backend's
//!    result is identical to `threads = 1`: bit-identical rows *and row
//!    order* for the single-world `Database` backend (whose operators
//!    actually fan out), and identical possible-tuple sets plus world counts
//!    for the world-set backends driven through the same executor.
//! 2. **Approximation accuracy** — the Monte-Carlo confidence estimators
//!    land within ε of the exact §6 algorithm, on tuple-independent WSDs
//!    (every field its own component) and on small-component WSDs
//!    (components spanning tuples, as in the paper's running example).

use std::collections::BTreeSet;

use maybms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{random_wsd, Generator};

fn thread_counts() -> [usize; 3] {
    [2, 4, 8]
}

#[test]
fn parallel_executor_output_is_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(0x9A51);
    let mut generator = Generator::new(0x7EAD5);
    for round in 0..15 {
        let wsd = random_wsd(&mut rng);
        let plan = generator.expr(rng.gen_range(1..=3usize), round % 3 == 0);
        let query = &plan.expr;

        // Single-world backend: rows and row order must be bit-identical.
        let (world, _) = wsd.enumerate_worlds(1 << 20).unwrap().remove(0);
        let mut serial_db = world.clone();
        let out =
            evaluate_query_with(&mut serial_db, query, "OUT", EngineConfig::default()).unwrap();
        let serial_rows = serial_db.relation(&out).unwrap().rows().to_vec();

        // WSD backend: possible tuples and world count as the serial anchor.
        let mut serial_wsd = wsd.clone();
        evaluate_query_with(&mut serial_wsd, query, "OUT", EngineConfig::default()).unwrap();
        let serial_possible = maybms::core::confidence::possible(&serial_wsd, "OUT")
            .unwrap()
            .row_set();
        let serial_worlds = serial_wsd.world_count();

        for threads in thread_counts() {
            let config = EngineConfig::with_threads(threads);

            let mut db = world.clone();
            let out = evaluate_query_with(&mut db, query, "OUT", config).unwrap();
            assert_eq!(
                db.relation(&out).unwrap().rows(),
                &serial_rows[..],
                "[{threads} threads] Database rows (or order) changed for {query}"
            );

            let mut wsd_backend = wsd.clone();
            evaluate_query_with(&mut wsd_backend, query, "OUT", config).unwrap();
            assert_eq!(
                maybms::core::confidence::possible(&wsd_backend, "OUT")
                    .unwrap()
                    .row_set(),
                serial_possible,
                "[{threads} threads] WSD possible tuples changed for {query}"
            );
            assert_eq!(wsd_backend.world_count(), serial_worlds);
        }
    }
}

#[test]
fn database_fan_out_is_identical_across_threads_at_morsel_boundaries() {
    // The columnar executor fans contiguous 1024-row morsels out to the
    // worker pool; relations sized right at the boundary (and an
    // all-filtering selection, whose morsels all come back empty) must
    // produce bit-identical rows at every thread count, with the columnar
    // path both on and off.
    let morsel = maybms::relational::cursor::NATIVE_BATCH_ROWS;
    for n in [0usize, 1, morsel - 1, morsel, morsel + 1, 2 * morsel + 452] {
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        for i in 0..n {
            r.push_values([i as i64, (i % 11) as i64]).unwrap();
        }
        let mut db = Database::new();
        db.insert_relation(r);

        let queries = [
            RaExpr::rel("R").select(Predicate::cmp_const("B", CmpOp::Lt, 4i64)),
            RaExpr::rel("R").select(Predicate::eq_const("B", 99i64)),
            RaExpr::rel("R")
                .select(Predicate::cmp_attr("A", CmpOp::Gt, "B"))
                .project(vec!["B"]),
        ];
        for query in &queries {
            for columnar in [true, false] {
                let serial_cfg = EngineConfig {
                    columnar,
                    ..EngineConfig::default()
                };
                let mut serial_db = db.clone();
                let out = evaluate_query_with(&mut serial_db, query, "OUT", serial_cfg).unwrap();
                let serial_rows = serial_db.relation(&out).unwrap().rows().to_vec();

                for threads in [2usize, 4] {
                    let mut config = serial_cfg;
                    config.threads = threads;
                    let mut par_db = db.clone();
                    let out = evaluate_query_with(&mut par_db, query, "OUT", config).unwrap();
                    assert_eq!(
                        par_db.relation(&out).unwrap().rows(),
                        &serial_rows[..],
                        "n={n} columnar={columnar} threads={threads}: \
                         rows (or order) changed for {query}"
                    );
                }
            }
        }
    }
}

/// A tuple-independent WSD: every field is its own component, so tuples are
/// pairwise independent (the or-set / tuple-independent baseline shape).
fn tuple_independent_wsd(rng: &mut StdRng) -> Wsd {
    let mut wsd = Wsd::new();
    let tuples = 4usize;
    wsd.register_relation("T", &["A", "B"], tuples).unwrap();
    for t in 0..tuples {
        for attr in ["A", "B"] {
            let field = FieldId::new("T", t, attr);
            if rng.gen_bool(0.5) {
                let n = rng.gen_range(2..=3usize);
                let mut alternatives: BTreeSet<i64> = BTreeSet::new();
                while alternatives.len() < n {
                    alternatives.insert(rng.gen_range(0..5i64));
                }
                wsd.set_uniform(field, alternatives.into_iter().map(Value::int).collect())
                    .unwrap();
            } else {
                wsd.set_certain(field, Value::int(rng.gen_range(0..5i64)))
                    .unwrap();
            }
        }
    }
    wsd.validate().unwrap();
    wsd
}

#[test]
fn approximate_confidence_is_within_epsilon_of_exact() {
    let mut rng = StdRng::seed_from_u64(0xAB5);
    let config = ApproxConfig::new(0.03, 0.01);
    let pool = WorkerPool::new(4);

    // Tuple-independent WSDs (every field independent) …
    let mut cases: Vec<(&str, Wsd)> = (0..3)
        .map(|_| ("tuple-independent", tuple_independent_wsd(&mut rng)))
        .collect();
    // … and small-component WSDs: the paper's running example, whose SSN
    // component spans both tuples, plus random correlated WSDs.
    cases.push(("census example", maybms::core::wsd::example_census_wsd()));

    for (label, wsd) in &cases {
        let relation = wsd.relation_names()[0].to_string();
        let exact = possible_with_confidence(wsd, &relation).unwrap();
        assert!(!exact.is_empty(), "{label}: no possible tuples");
        for (tuple, exact_conf) in &exact {
            for estimate in [
                maybms::core::confidence::approx::conf(wsd, &relation, tuple, &config).unwrap(),
                maybms::core::confidence::approx::conf_with(wsd, &relation, tuple, &config, &pool)
                    .unwrap(),
            ] {
                assert!(
                    (estimate - exact_conf).abs() <= config.epsilon,
                    "{label}: approx conf({tuple}) = {estimate}, exact = {exact_conf}"
                );
            }
        }

        // The U-relational estimator agrees with the U-relational exact
        // evaluator on the same world-set.
        let udb = maybms::urel::from_wsd(wsd).unwrap();
        let exact_u = maybms::urel::possible_with_confidence(&udb, &relation).unwrap();
        let approx_u = maybms::urel::confidence::approx::possible_with_confidence_with(
            &udb, &relation, &config, &pool,
        )
        .unwrap();
        assert_eq!(exact_u.len(), approx_u.len());
        for ((t1, exact_conf), (t2, estimate)) in exact_u.iter().zip(approx_u.iter()) {
            assert_eq!(t1, t2);
            assert!(
                (estimate - exact_conf).abs() <= config.epsilon,
                "{label}: U-rel approx conf({t1}) = {estimate}, exact = {exact_conf}"
            );
        }
    }
}

#[test]
fn approximate_confidence_is_thread_count_invariant_end_to_end() {
    // One correlated query answer, estimated at every thread count: the
    // (ε, δ) sampler must return the identical estimate.
    let mut wsd = maybms::core::wsd::example_census_wsd();
    maybms::relational::evaluate_query(&mut wsd, &RaExpr::rel("R").project(vec!["S"]), "Q")
        .unwrap();
    let config = ApproxConfig::default();
    let serial =
        maybms::core::confidence::approx::possible_with_confidence(&wsd, "Q", &config).unwrap();
    for threads in thread_counts() {
        let pool = WorkerPool::new(threads);
        let parallel = maybms::core::confidence::approx::possible_with_confidence_with(
            &wsd, "Q", &config, &pool,
        )
        .unwrap();
        assert_eq!(parallel, serial, "estimate drifted at {threads} threads");
    }
}
