//! The old per-crate `evaluate_query` free functions survive as deprecated
//! shims over the unified engine; this suite — the only place allowed to
//! call them — pins the shims to the new `Session` path so migration stays
//! safe until they are removed.
#![allow(deprecated)]

use maybms::prelude::*;
use maybms::{q, Session};

fn census_query() -> RaExpr {
    RaExpr::rel("R")
        .select(Predicate::eq_const("M", 1i64))
        .project(vec!["S"])
}

fn session_rows(backend: impl Into<AnyBackend>) -> Vec<Tuple> {
    let mut session = Session::over(backend);
    let prepared = session
        .prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]))
        .unwrap();
    let mut rows: Vec<Tuple> = session.execute(&prepared).unwrap().collect();
    rows.sort();
    rows
}

#[test]
fn wsd_shim_matches_the_session_path() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let mut shimmed = wsd.clone();
    let out = maybms::core::ops::evaluate_query(&mut shimmed, &census_query(), "Q").unwrap();
    let mut shim_rows = possible(&shimmed, &out).unwrap().rows().to_vec();
    shim_rows.sort();
    assert_eq!(shim_rows, session_rows(wsd));
}

#[test]
fn uwsdt_shim_matches_the_session_path() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let uwsdt = maybms::uwsdt::from_wsd(&wsd).unwrap();
    let mut shimmed = uwsdt.clone();
    let out = maybms::uwsdt::evaluate_query(&mut shimmed, &census_query(), "Q").unwrap();
    let mut shim_rows = maybms::uwsdt::ops::possible_tuples(&shimmed, &out).unwrap();
    shim_rows.sort();
    assert_eq!(shim_rows, session_rows(uwsdt));
}

#[test]
fn urel_shim_matches_the_session_path() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let udb = maybms::urel::from_wsd(&wsd).unwrap();
    let mut shimmed = udb.clone();
    let out = maybms::urel::evaluate_query(&mut shimmed, &census_query(), "Q").unwrap();
    let mut shim_rows = maybms::urel::ops::possible_tuples(&shimmed, &out).unwrap();
    shim_rows.sort();
    assert_eq!(shim_rows, session_rows(udb));
}

#[test]
fn conditional_condition_shim_matches_the_session_path() {
    let constraint = Dependency::Egd(EqualityGeneratingDependency::implies(
        "R",
        "S",
        785i64,
        "M",
        CmpOp::Eq,
        1i64,
    ));
    // Old calling convention: the free function mutating the WSD in place.
    let mut shimmed = maybms::core::wsd::example_census_wsd();
    let shim_mass =
        maybms::core::conditional::condition(&mut shimmed, std::slice::from_ref(&constraint))
            .unwrap();
    // New calling convention: the session's conditioning verb.
    let mut session = Session::new(maybms::core::wsd::example_census_wsd());
    let session_mass = session
        .condition(std::slice::from_ref(&constraint))
        .unwrap();
    assert!((shim_mass - session_mass).abs() < 1e-12);
    let conditioned = session.into_backend();
    assert!(shimmed
        .rep()
        .unwrap()
        .same_worlds(&conditioned.rep().unwrap()));
    assert!(shimmed
        .rep()
        .unwrap()
        .same_distribution(&conditioned.rep().unwrap(), 1e-9));
}
