//! Integration tests: the UWSDT engine against the WSD engine and the
//! per-world oracle.
//!
//! UWSDTs are "just" a uniform, RDBMS-friendly encoding of WSDTs (§3/§5), so
//! loading the same incomplete database into both representations and running
//! the same queries/cleaning steps must describe the same set of possible
//! worlds with the same probabilities.

use maybms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ws_baselines::explicit;

/// A random or-set database over R[A, B, C]: base values plus uncertain
/// fields, loadable into both representations.
fn random_or_database(rng: &mut StdRng, tuples: usize) -> (Relation, Vec<OrField>) {
    let schema = Schema::new("R", &["A", "B", "C"]).unwrap();
    let mut base = Relation::new(schema);
    for _ in 0..tuples {
        base.push_values([
            rng.gen_range(0..3i64),
            rng.gen_range(0..3i64),
            rng.gen_range(0..3i64),
        ])
        .unwrap();
    }
    let mut noise = Vec::new();
    for t in 0..tuples {
        for attr in ["A", "B", "C"] {
            if rng.gen_bool(0.3) {
                let pos = base.schema().position(attr).unwrap();
                let original = base.rows()[t][pos].as_int().unwrap();
                let mut values = vec![Value::int(original)];
                let extra = rng.gen_range(1..=2);
                for _ in 0..extra {
                    let v = Value::int(rng.gen_range(0..4i64));
                    if !values.contains(&v) {
                        values.push(v);
                    }
                }
                if values.len() > 1 {
                    noise.push(OrField::uniform(t, attr, values));
                }
            }
        }
    }
    (base, noise)
}

/// Load the or-set database into a WSD.
fn load_wsd(base: &Relation, noise: &[OrField]) -> Wsd {
    let mut wsd = Wsd::new();
    let attrs: Vec<&str> = base.schema().attrs().iter().map(|a| a.as_ref()).collect();
    wsd.register_relation("R", &attrs, base.len()).unwrap();
    for (t, row) in base.rows().iter().enumerate() {
        for (i, attr) in attrs.iter().enumerate() {
            let field = FieldId::new("R", t, *attr);
            match noise.iter().find(|f| f.tuple == t && f.attr == *attr) {
                Some(or_field) => wsd
                    .set_alternatives(field, or_field.alternatives.clone())
                    .unwrap(),
                None => wsd.set_certain(field, row[i].clone()).unwrap(),
            }
        }
    }
    wsd
}

fn world_set_of_uwsdt(uwsdt: &Uwsdt) -> WorldSet {
    WorldSet::from_weighted_worlds(uwsdt.enumerate_worlds(1_000_000).unwrap())
}

#[test]
fn loading_the_same_data_yields_the_same_world_set() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..8 {
        let (base, noise) = random_or_database(&mut rng, 3);
        let wsd = load_wsd(&base, &noise);
        let uwsdt = from_or_relation(&base, &noise).unwrap();
        uwsdt.validate().unwrap();
        let expected = wsd.rep().unwrap();
        let actual = world_set_of_uwsdt(&uwsdt);
        assert!(expected.same_worlds(&actual));
        assert!(expected.same_distribution(&actual, 1e-9));
    }
}

#[test]
fn queries_agree_between_uwsdt_wsd_and_oracle() {
    let mut rng = StdRng::seed_from_u64(42);
    let queries = vec![
        RaExpr::rel("R").select(Predicate::eq_const("A", 1i64)),
        RaExpr::rel("R").select(Predicate::and(vec![
            Predicate::cmp_const("A", CmpOp::Ge, 1i64),
            Predicate::cmp_const("B", CmpOp::Le, 1i64),
        ])),
        RaExpr::rel("R").select(Predicate::or(vec![
            Predicate::eq_const("A", 0i64),
            Predicate::eq_const("C", 2i64),
        ])),
        RaExpr::rel("R").select(Predicate::cmp_attr("A", CmpOp::Eq, "B")),
        RaExpr::rel("R")
            .select(Predicate::eq_const("B", 1i64))
            .project(vec!["A", "C"]),
        RaExpr::rel("R").project(vec!["C"]),
        RaExpr::rel("R").rename("A", "A1"),
        RaExpr::rel("R")
            .select(Predicate::eq_const("A", 1i64))
            .union(RaExpr::rel("R").select(Predicate::eq_const("B", 1i64))),
        RaExpr::rel("R").difference(RaExpr::rel("R").select(Predicate::eq_const("C", 0i64))),
    ];
    for round in 0..6 {
        let (base, noise) = random_or_database(&mut rng, 3);
        let wsd = load_wsd(&base, &noise);
        let worlds = wsd.rep().unwrap();
        for query in &queries {
            // Oracle distribution over result relations.
            let oracle = explicit::query_distribution(&worlds, query).unwrap();
            // UWSDT evaluation.
            let mut uwsdt = from_or_relation(&base, &noise).unwrap();
            maybms::relational::evaluate_query(&mut uwsdt, query, "OUT").unwrap();
            let uwsdt_worlds = uwsdt.enumerate_worlds(1_000_000).unwrap();
            // Group the result relation by world.
            let mut ours: Vec<(Relation, f64)> = Vec::new();
            for (db, p) in uwsdt_worlds {
                let mut rel = db.relation("OUT").unwrap().clone();
                rel.dedup();
                match ours.iter_mut().find(|(r, _)| r.set_eq(&rel)) {
                    Some((_, q)) => *q += p,
                    None => ours.push((rel, p)),
                }
            }
            assert_eq!(oracle.len(), ours.len(), "round {round}: {query}");
            for (rel, p) in &oracle {
                let found = ours
                    .iter()
                    .find(|(r, _)| {
                        r.row_set()
                            == rel
                                .row_set()
                                .into_iter()
                                .collect::<std::collections::BTreeSet<_>>()
                    })
                    .unwrap_or_else(|| panic!("round {round}: {query} missing a result world"));
                assert!(
                    (found.1 - p).abs() < 1e-9,
                    "round {round}: {query} probability mismatch"
                );
            }
        }
    }
}

#[test]
fn join_on_uwsdt_agrees_with_the_oracle() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..5 {
        let (base_r, noise_r) = random_or_database(&mut rng, 3);
        // A second relation S[X, Y] sharing the value domain.
        let schema = Schema::new("S", &["X", "Y"]).unwrap();
        let mut base_s = Relation::new(schema);
        for _ in 0..2 {
            base_s
                .push_values([rng.gen_range(0..3i64), rng.gen_range(0..3i64)])
                .unwrap();
        }
        let noise_s = vec![OrField::uniform(
            0,
            "X",
            vec![Value::int(0), Value::int(1), Value::int(2)],
        )];

        // WSD with both relations (for the oracle world-set).
        let mut wsd = load_wsd(&base_r, &noise_r);
        let attrs: Vec<&str> = base_s.schema().attrs().iter().map(|a| a.as_ref()).collect();
        wsd.register_relation("S", &attrs, base_s.len()).unwrap();
        for (t, row) in base_s.rows().iter().enumerate() {
            for (i, attr) in attrs.iter().enumerate() {
                let field = FieldId::new("S", t, *attr);
                match noise_s.iter().find(|f| f.tuple == t && f.attr == *attr) {
                    Some(or_field) => wsd
                        .set_alternatives(field, or_field.alternatives.clone())
                        .unwrap(),
                    None => wsd.set_certain(field, row[i].clone()).unwrap(),
                }
            }
        }
        let worlds = wsd.rep().unwrap();
        let query =
            RaExpr::rel("R").join(RaExpr::rel("S"), Predicate::cmp_attr("A", CmpOp::Eq, "X"));
        let oracle = explicit::query_distribution(&worlds, &query).unwrap();

        // UWSDT with both relations.
        let mut uwsdt = from_or_relation(&base_r, &noise_r).unwrap();
        let s_uwsdt = from_or_relation(&base_s, &noise_s).unwrap();
        uwsdt
            .add_template(s_uwsdt.template("S").unwrap().clone())
            .unwrap();
        for field in s_uwsdt.placeholders_of("S") {
            let values: Vec<(Value, f64)> = {
                let vals = s_uwsdt.placeholder_values(&field).unwrap();
                let worlds = s_uwsdt
                    .component_worlds(s_uwsdt.component_of(&field).unwrap())
                    .unwrap();
                worlds
                    .iter()
                    .filter_map(|w| vals.get(&w.lwid).map(|v| (v.clone(), w.prob)))
                    .collect()
            };
            uwsdt.add_placeholder(field, values).unwrap();
        }
        maybms::relational::evaluate_query(&mut uwsdt, &query, "J").unwrap();
        let mut ours: Vec<(Relation, f64)> = Vec::new();
        for (db, p) in uwsdt.enumerate_worlds(1_000_000).unwrap() {
            let mut rel = db.relation("J").unwrap().clone();
            rel.dedup();
            match ours.iter_mut().find(|(r, _)| r.set_eq(&rel)) {
                Some((_, q)) => *q += p,
                None => ours.push((rel, p)),
            }
        }
        assert_eq!(oracle.len(), ours.len());
        for (rel, p) in &oracle {
            let found = ours.iter().find(|(r, _)| r.set_eq(rel)).unwrap();
            assert!((found.1 - p).abs() < 1e-9);
        }
    }
}

#[test]
fn chase_agrees_between_representations() {
    let mut rng = StdRng::seed_from_u64(99);
    let dependencies = vec![
        Dependency::Egd(EqualityGeneratingDependency::implies(
            "R",
            "A",
            1i64,
            "B",
            CmpOp::Ne,
            2i64,
        )),
        Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["C"])),
    ];
    let mut consistent_rounds = 0;
    for _ in 0..10 {
        let (base, noise) = random_or_database(&mut rng, 3);
        let mut wsd = load_wsd(&base, &noise);
        let mut uwsdt = from_or_relation(&base, &noise).unwrap();
        let wsd_result = chase(&mut wsd, &dependencies);
        let uwsdt_result = maybms::uwsdt::chase::chase(&mut uwsdt, &dependencies);
        match (wsd_result, uwsdt_result) {
            (Err(WsError::Inconsistent), Err(UwsdtError::Inconsistent)) => {}
            (Ok(wsd_mass), Ok(uwsdt_mass)) => {
                assert!(
                    (wsd_mass - uwsdt_mass).abs() < 1e-9,
                    "chases report different surviving masses: {wsd_mass} vs {uwsdt_mass}"
                );
                let expected = wsd.rep().unwrap();
                let actual = world_set_of_uwsdt(&uwsdt);
                assert!(expected.same_worlds(&actual));
                assert!(expected.same_distribution(&actual, 1e-9));
                consistent_rounds += 1;
            }
            (a, b) => panic!("representations disagree on consistency: {a:?} vs {b:?}"),
        }
    }
    assert!(consistent_rounds >= 3);
}

#[test]
fn uwsdt_statistics_reflect_the_loaded_noise() {
    let mut rng = StdRng::seed_from_u64(5);
    let (base, noise) = random_or_database(&mut rng, 4);
    let uwsdt = from_or_relation(&base, &noise).unwrap();
    let stats = stats_for(&uwsdt, "R").unwrap();
    assert_eq!(stats.template_rows, 4);
    assert_eq!(stats.placeholders, noise.len());
    assert_eq!(stats.components, noise.len());
    assert_eq!(
        stats.c_size,
        noise.iter().map(|f| f.alternatives.len()).sum::<usize>()
    );
}
