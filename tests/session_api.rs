//! Properties of the `maybms::Session` front door.
//!
//! * Every random well-typed plan round-trips through the fluent builder:
//!   rebuilding it combinator by combinator and lowering gives the same plan
//!   modulo normalization.
//! * Prepared re-execution is **bit-identical** to fresh evaluation: on all
//!   five backends, at 1 and 4 worker threads, `prepare` + `execute` twice
//!   (the second prepare a guaranteed plan-cache hit) streams exactly the
//!   rows two independent engine evaluations produce — same tuples, same
//!   order.
//! * Errors keep their plan context across the dynamic backend.

use maybms::prelude::*;
use maybms::{q, AnyBackend, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{all_backends, random_wsd, rebuild_with_builder, session_possible, Generator};

#[test]
fn every_generated_plan_round_trips_through_the_builder() {
    let mut rng = StdRng::seed_from_u64(0xB01D);
    let mut generator = Generator::new(0x0B01);
    for round in 0..200 {
        let plan = generator.expr(rng.gen_range(0..=3usize), true).expr;
        let rebuilt = rebuild_with_builder(&plan).lower();
        // The builder adds no structure of its own…
        assert_eq!(rebuilt, plan, "round {round}: builder changed the tree");
        // …and the normalized (cache-key) forms agree as well.
        assert_eq!(
            maybms::relational::normalize_plan(&rebuilt),
            maybms::relational::normalize_plan(&plan),
            "round {round}: normalization disagrees"
        );
    }
}

/// Fresh evaluation through the engine, with the backend-appropriate
/// possible-tuple extraction — the pre-session calling convention.
fn fresh_possible(backend: &mut AnyBackend, query: &RaExpr, threads: usize) -> Vec<Tuple> {
    let out = evaluate_query_with(
        backend,
        query,
        "FRESH_OUT",
        EngineConfig::with_threads(threads),
    )
    .unwrap();
    match backend {
        AnyBackend::Db(db) => {
            let mut rel = db.relation(&out).unwrap().clone();
            rel.dedup();
            rel.rows().to_vec()
        }
        AnyBackend::Wsd(wsd) => possible(wsd, &out).unwrap().rows().to_vec(),
        AnyBackend::Uwsdt(uwsdt) => maybms::uwsdt::ops::possible_tuples(uwsdt, &out).unwrap(),
        AnyBackend::Urel(udb) => maybms::urel::ops::possible_tuples(udb, &out).unwrap(),
        AnyBackend::Worlds(ws) => maybms::baselines::possible_tuples(ws, &out).unwrap(),
    }
}

#[test]
fn prepared_reexecution_is_bit_identical_to_fresh_evaluation() {
    let mut rng = StdRng::seed_from_u64(0x5E5510);
    let mut generator = Generator::new(0xCAC4E);
    for round in 0..8 {
        let wsd = random_wsd(&mut rng);
        // U-relations reject difference; keep the plans positive so all five
        // backends run them.
        let plan = generator.expr(rng.gen_range(1..=3usize), false).expr;
        for threads in [1usize, 4] {
            for (name, backend) in all_backends(&wsd) {
                // Two *fresh* evaluations on two copies of the backend.
                let fresh_a = fresh_possible(&mut backend.clone(), &plan, threads);
                let fresh_b = fresh_possible(&mut backend.clone(), &plan, threads);
                assert_eq!(
                    fresh_a, fresh_b,
                    "[{name} t={threads}] round {round}: fresh evaluation is not deterministic \
                     for {plan}"
                );

                // One session: prepare, execute, re-prepare (cache hit),
                // re-execute.
                let mut session =
                    Session::with_config(backend, EngineConfig::with_threads(threads));
                let p1 = session.prepare(rebuild_with_builder(&plan)).unwrap();
                let first: Vec<Tuple> = session.execute(&p1).unwrap().collect();
                let p2 = session.prepare(plan.clone()).unwrap();
                let second: Vec<Tuple> = session.execute(&p2).unwrap().collect();

                let stats = session.stats();
                assert_eq!(
                    stats.cache_hits, 1,
                    "[{name} t={threads}] round {round}: re-preparing {plan} missed the cache"
                );
                assert_eq!(p1.plan(), p2.plan());
                assert_eq!(
                    first, second,
                    "[{name} t={threads}] round {round}: cached re-execution differs for {plan}"
                );
                assert_eq!(
                    first, fresh_a,
                    "[{name} t={threads}] round {round}: session differs from fresh evaluation \
                     for {plan}"
                );
            }
        }
    }
}

#[test]
fn session_rows_agree_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x7EAD);
    let mut generator = Generator::new(0x7EAD5);
    for _ in 0..6 {
        let wsd = random_wsd(&mut rng);
        let plan = generator.expr(rng.gen_range(1..=2usize), false).expr;
        for (name, backend) in all_backends(&wsd) {
            let serial = session_possible(backend.clone(), &plan, 1).unwrap();
            let parallel = session_possible(backend, &plan, 4).unwrap();
            assert_eq!(
                serial, parallel,
                "[{name}] threads change the stream of {plan}"
            );
        }
    }
}

#[test]
fn difference_fails_on_urel_with_plan_context() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let plan = q("R").difference(q("R"));
    let mut session = Session::over(maybms::urel::from_wsd(&wsd).unwrap());
    let prepared = session.prepare(plan).unwrap();
    let err = session.execute(&prepared).unwrap_err();
    assert!(
        err.plan().is_some(),
        "execution errors must carry the plan: {err}"
    );
    assert!(matches!(err.kind(), maybms::ErrorKind::Urel(_)));
}

#[test]
fn confidence_and_streaming_agree_on_the_census_example() {
    let wsd = maybms::core::wsd::example_census_wsd();
    let query = q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]);
    let mut reference: Option<Vec<(Tuple, f64)>> = None;
    for (name, backend) in all_backends(&wsd) {
        if matches!(backend, AnyBackend::Db(_)) {
            continue; // one world carries no distribution
        }
        let mut session = Session::over(backend);
        let prepared = session.prepare(query.clone()).unwrap();
        let streamed: Vec<Tuple> = session.execute(&prepared).unwrap().collect();
        let mut with_conf = session.confidence(&prepared).unwrap();
        with_conf.sort_by(|a, b| a.0.cmp(&b.0));
        let mut streamed_sorted = streamed;
        streamed_sorted.sort();
        assert_eq!(
            streamed_sorted,
            with_conf.iter().map(|(t, _)| t.clone()).collect::<Vec<_>>(),
            "[{name}] confidence() and execute() disagree on the possible tuples"
        );
        match &reference {
            None => reference = Some(with_conf),
            Some(expected) => {
                assert_eq!(expected.len(), with_conf.len(), "[{name}] arity mismatch");
                for ((t1, c1), (t2, c2)) in expected.iter().zip(&with_conf) {
                    assert_eq!(t1, t2, "[{name}] tuples differ");
                    assert!(
                        (c1 - c2).abs() < 1e-9,
                        "[{name}] confidence differs on {t1}: {c1} vs {c2}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Update-driven plan-cache invalidation.
// ---------------------------------------------------------------------------

/// An update touching a cached plan's base relation evicts exactly that
/// entry: re-preparing the plan is a cache *miss* (the optimizer runs
/// again), while plans over untouched relations stay cached.
#[test]
fn updates_invalidate_cached_plans_by_touched_relation() {
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let wsd = random_wsd(&mut rng);
    let mut session = Session::over(AnyBackend::from(wsd));

    let over_r = session
        .prepare(q("R").select(Predicate::eq_const("A", 1i64)))
        .unwrap();
    let over_s = session.prepare(q("S")).unwrap();
    assert_eq!(session.stats().plans_prepared, 2);
    assert_eq!(session.cached_plans(), 2);
    assert_eq!(session.cached_fingerprints().len(), 2);

    // An update on S leaves the R plan cached…
    session
        .apply(&maybms::UpdateExpr::insert("S", Tuple::from_iter([7i64])))
        .unwrap();
    assert_eq!(session.stats().plans_invalidated, 1);
    assert!(session
        .cached_fingerprints()
        .contains(&over_r.fingerprint()));
    assert!(!session
        .cached_fingerprints()
        .contains(&over_s.fingerprint()));
    session
        .prepare(q("R").select(Predicate::eq_const("A", 1i64)))
        .unwrap();
    assert_eq!(
        session.stats().cache_hits,
        1,
        "the R plan must still be a cache hit after an S update"
    );

    // …while an update on R forces a re-prepare of the R plan.
    session
        .apply(&maybms::UpdateExpr::delete(
            "R",
            Predicate::eq_const("A", 0i64),
        ))
        .unwrap();
    assert!(!session
        .cached_fingerprints()
        .contains(&over_r.fingerprint()));
    let before = session.stats();
    session
        .prepare(q("R").select(Predicate::eq_const("A", 1i64)))
        .unwrap();
    let after = session.stats();
    assert_eq!(
        (after.plans_prepared, after.cache_hits),
        (before.plans_prepared + 1, before.cache_hits),
        "re-preparing the R plan after an R update must miss the cache"
    );
    assert_eq!(after.updates_applied, 2);
}

/// Conditioning reweights every correlated relation, so it clears the whole
/// plan cache; plans over joins are evicted when either operand is touched.
#[test]
fn conditioning_and_joins_invalidate_conservatively() {
    let mut rng = StdRng::seed_from_u64(0xCAC4F);
    let wsd = random_wsd(&mut rng);
    let mut session = Session::over(AnyBackend::from(wsd));

    let join = session
        .prepare(
            q("R").product(q("S").rename("C", "C2")), // touches R and S
        )
        .unwrap();
    session.prepare(q("S")).unwrap();
    assert_eq!(session.cached_plans(), 2);

    // Updating R evicts the join (it reads R) but not the S-only plan.
    session
        .apply(&maybms::UpdateExpr::insert(
            "R",
            Tuple::from_iter([1i64, 1]),
        ))
        .unwrap();
    assert!(!session.cached_fingerprints().contains(&join.fingerprint()));
    assert_eq!(session.cached_plans(), 1);

    // Conditioning clears everything.
    session.prepare(q("R")).unwrap();
    assert_eq!(session.cached_plans(), 2);
    session.condition(&[]).unwrap();
    assert_eq!(session.cached_plans(), 0);
    assert_eq!(session.stats().plans_invalidated, 3);
    let summary = session.summary();
    assert!(summary.contains("updates-applied=2"));
}

/// The staleness rule of `Session::apply`: scratch results that outlive
/// their cursor on component-sharing backends are dropped by the next
/// update, so update-heavy sessions do not accumulate scratch relations.
#[test]
fn apply_drops_stale_scratch_results() {
    let mut rng = StdRng::seed_from_u64(0xCAC50);
    let wsd = random_wsd(&mut rng);
    let baseline = wsd.relation_names().len();
    let mut session = Session::new(wsd);

    // Streamed results stay registered on the WSD backend (it is not
    // self-contained)…
    let plan = session.prepare(q("R").project(["A"])).unwrap();
    let _rows: Vec<Tuple> = session.execute(&plan).unwrap().collect();
    let materialized = session.materialize(&plan).unwrap();
    assert!(session.backend().contains_relation(&materialized));
    assert!(session.backend().relation_names().len() > baseline);

    // …until an update invalidates them.
    session
        .apply(&maybms::UpdateExpr::insert("S", Tuple::from_iter([3i64])))
        .unwrap();
    assert!(
        !session.backend().contains_relation(&materialized),
        "apply must drop stale materialized results"
    );
    assert_eq!(
        session.backend().relation_names().len(),
        baseline,
        "apply must drop every stale scratch result"
    );
}
