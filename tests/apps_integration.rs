//! Integration tests of the §10 application scenarios: minimal repairs /
//! consistent query answering and the linked medical data, exercised through
//! the public facade and checked against explicit world enumeration.

use maybms::apps::{medical, repairs};
use maybms::prelude::*;

fn dirty_orders() -> Relation {
    let mut rel = Relation::new(Schema::new("Orders", &["OID", "CUSTOMER", "TOTAL"]).unwrap());
    for (oid, customer, total) in [
        (1i64, "ann", 10i64),
        (1, "ann", 12),
        (2, "bea", 20),
        (3, "cid", 30),
        (3, "dan", 31),
        (3, "dan", 32),
        (4, "eve", 40),
    ] {
        rel.push_values([Value::int(oid), Value::text(customer), Value::int(total)])
            .unwrap();
    }
    rel
}

#[test]
fn repair_world_set_matches_explicit_repair_enumeration() {
    let rel = dirty_orders();
    let (wsd, report) = repairs::repair_key_violations(&rel, &["OID"]).unwrap();
    // OID 1 has 2 resolutions, OID 3 has 3, the others are clean.
    assert_eq!(report.conflict_clusters, 2);
    assert_eq!(report.repair_count, 6);
    assert_eq!(wsd.world_count(), 6);

    // Every repair is key-consistent and contains the clean tuples.
    for (world, _) in wsd.enumerate_worlds(100).unwrap() {
        let orders = world.relation("Orders").unwrap();
        assert_eq!(orders.len(), 4);
        let mut oids: Vec<Value> = orders.rows().iter().map(|r| r[0].clone()).collect();
        oids.sort();
        oids.dedup();
        assert_eq!(oids.len(), 4);
        assert!(orders.contains(&Tuple::from_iter([
            Value::int(2),
            Value::text("bea"),
            Value::int(20)
        ])));
    }
}

#[test]
fn consistent_possible_and_support_answers_are_coherent() {
    let rel = dirty_orders();
    let (wsd, _) = repairs::repair_key_violations(&rel, &["OID"]).unwrap();
    let customers = RaExpr::rel("Orders").project(vec!["CUSTOMER"]);
    let consistent = repairs::consistent_answers(&wsd, &customers).unwrap();
    let possible = repairs::possible_answers(&wsd, &customers).unwrap();
    let support = repairs::answers_with_support(&wsd, &customers).unwrap();

    // Consistent ⊆ possible; support 1.0 exactly for consistent answers.
    for t in consistent.rows() {
        assert!(possible.contains(t));
    }
    assert!(consistent.contains(&Tuple::from_iter([Value::text("ann")])));
    assert!(consistent.contains(&Tuple::from_iter([Value::text("bea")])));
    assert!(!consistent.contains(&Tuple::from_iter([Value::text("cid")])));
    assert!(possible.contains(&Tuple::from_iter([Value::text("cid")])));
    for (tuple, share) in &support {
        assert!(*share > 0.0 && *share <= 1.0 + 1e-9);
        let is_consistent = consistent.contains(tuple);
        assert_eq!(
            is_consistent,
            *share >= 1.0 - 1e-9,
            "support/consistency mismatch for {tuple}"
        );
    }

    // cid is kept in exactly 1 of the 3 resolutions of OID 3.
    let cid_share = support
        .iter()
        .find(|(t, _)| *t == Tuple::from_iter([Value::text("cid")]))
        .map(|(_, s)| *s)
        .unwrap();
    assert!((cid_share - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn further_cleaning_composes_with_repairs() {
    // Chasing an additional constraint on the repair world-set keeps it a
    // valid world-set and only removes repairs.
    let rel = dirty_orders();
    let (wsd, _) = repairs::repair_key_violations(&rel, &["OID"]).unwrap();
    let constraint = Dependency::Egd(EqualityGeneratingDependency::implies(
        "Orders",
        "CUSTOMER",
        "dan",
        "TOTAL",
        CmpOp::Eq,
        31i64,
    ));
    let mut cleaned = wsd.clone();
    let survived = chase(&mut cleaned, std::slice::from_ref(&constraint)).unwrap();
    assert!(survived > 0.0 && survived < 1.0);
    assert!(cleaned.world_count() < wsd.world_count());
    for (world, _) in cleaned.enumerate_worlds(100).unwrap() {
        for row in world.relation("Orders").unwrap().rows() {
            if row[1] == Value::text("dan") {
                assert_eq!(row[2], Value::int(31));
            }
        }
    }
}

#[test]
fn medical_scenario_round_trip() {
    let scenario = MedicalScenario::demo();
    let patients = vec![
        PatientRecord::with_candidates(1, ["flu", "migraine"]),
        PatientRecord::unknown(2).observed("amlodipine"),
        PatientRecord::with_candidates(3, ["angina"]),
    ];
    let wsd = scenario.build_wsd(&patients).unwrap();

    // Interdependence: medication is always compatible with the diagnosis.
    for (world, _) in wsd.enumerate_worlds(1 << 16).unwrap() {
        for row in world.relation(medical::PATIENT_RELATION).unwrap().rows() {
            let diagnosis = row[1].as_text().unwrap();
            let medication = row[2].as_text().unwrap().to_string();
            assert!(scenario
                .compatible_medications(diagnosis)
                .contains(&medication));
        }
    }

    // Queries through the generic WSD machinery agree with the helpers.
    let diag = medical::possible_diagnoses(&wsd, 2).unwrap();
    let total: f64 = diag.iter().map(|(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-9);
    let names: Vec<&str> = diag.iter().map(|(d, _)| d.as_str()).collect();
    assert!(names.contains(&"hypertension") && names.contains(&"angina"));

    // Patient 3 can only get angina medication.
    let meds = medical::medications_for(&wsd, "angina").unwrap();
    assert!(!meds.is_empty());
    for (m, _) in &meds {
        assert!(scenario.compatible_medications("angina").contains(m));
    }
}

#[test]
fn repairs_work_through_the_prelude_reexports() {
    // The facade exposes the repair API directly.
    let rel = dirty_orders();
    let (wsd, report) = repair_key_violations(&rel, &["OID"]).unwrap();
    let query = RaExpr::rel("Orders").project(vec!["OID"]);
    let consistent = consistent_answers(&wsd, &query).unwrap();
    let possible = possible_answers(&wsd, &query).unwrap();
    assert_eq!(consistent.len(), 4);
    assert_eq!(possible.len(), 4);
    assert_eq!(report.clean_tuples, 2);
}
