//! End-to-end census workload tests (§9): generation, noise, cleaning and the
//! queries Q1–Q6, checked for semantic correctness on instances small enough
//! to enumerate and for structural properties on larger instances.

use maybms::prelude::*;
use ws_census::{
    all_queries, census_dependencies, census_egds, satisfies_dependencies, RELATION_NAME,
};

#[test]
fn figure25_has_twelve_dependencies_over_the_census_schema() {
    let deps = census_dependencies();
    assert_eq!(deps.len(), 12);
    let schema = ws_census::census_schema();
    for egd in census_egds() {
        for attr in egd.attrs() {
            assert!(schema.contains(attr));
        }
    }
}

#[test]
fn figure29_queries_have_the_documented_shapes() {
    let queries = all_queries();
    assert_eq!(queries.len(), 6);
    let labels: Vec<&str> = queries.iter().map(|(l, _)| *l).collect();
    assert_eq!(labels, vec!["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]);
    // Q5 is the only query touching more than one occurrence of R.
    let q5 = &queries[4].1;
    assert!(q5.node_count() > queries[0].1.node_count());
}

#[test]
fn cleaned_small_census_worlds_satisfy_every_dependency() {
    let scenario = CensusScenario::new(60, 0.002, 17);
    let chased = scenario.chased_uwsdt().unwrap();
    chased.validate().unwrap();
    let worlds = chased.enumerate_worlds(2_000_000).unwrap();
    assert!(!worlds.is_empty());
    let total: f64 = worlds.iter().map(|(_, p)| p).sum();
    assert!((total - 1.0).abs() < 1e-6);
    for (db, _) in &worlds {
        assert!(satisfies_dependencies(db.relation(RELATION_NAME).unwrap()));
    }
    // The clean base world is always among the surviving worlds.
    let base = scenario.base_relation();
    assert!(worlds
        .iter()
        .any(|(db, _)| db.relation(RELATION_NAME).unwrap().set_eq(&base)));
}

#[test]
fn chase_only_removes_inconsistent_worlds() {
    let scenario = CensusScenario::new(50, 0.0015, 23);
    let dirty = scenario.dirty_uwsdt().unwrap();
    let chased = scenario.chased_uwsdt().unwrap();
    let dirty_worlds = dirty.enumerate_worlds(2_000_000).unwrap();
    let chased_worlds = chased.enumerate_worlds(2_000_000).unwrap();
    // Chased worlds ⊆ dirty worlds, and every dropped world was inconsistent.
    assert!(chased_worlds.len() <= dirty_worlds.len());
    let chased_set = WorldSet::from_weighted_worlds(chased_worlds);
    for (db, _) in &dirty_worlds {
        let consistent = satisfies_dependencies(db.relation(RELATION_NAME).unwrap());
        assert_eq!(consistent, chased_set.contains(db));
    }
}

#[test]
fn queries_on_the_chased_uwsdt_match_per_world_evaluation() {
    // Small instance: evaluate Q1–Q6 both on the UWSDT and per world.
    let scenario = CensusScenario::new(40, 0.003, 31);
    let chased = scenario.chased_uwsdt().unwrap();
    let worlds = chased.enumerate_worlds(2_000_000).unwrap();
    for (label, query) in all_queries() {
        let mut evaluated = chased.clone();
        maybms::relational::evaluate_query(&mut evaluated, &query, "OUT").unwrap();
        let result_worlds = evaluated.enumerate_worlds(2_000_000).unwrap();
        assert_eq!(result_worlds.len(), worlds.len(), "{label}");
        for ((db_in, p_in), (db_out, p_out)) in worlds.iter().zip(&result_worlds) {
            assert!((p_in - p_out).abs() < 1e-9, "{label}: probability drift");
            let expected = ws_relational::evaluate_set(db_in, &query).unwrap();
            let mut actual = db_out.relation("OUT").unwrap().clone();
            actual.dedup();
            assert!(
                expected.row_set() == actual.row_set(),
                "{label}: result mismatch in some world"
            );
        }
    }
}

#[test]
fn query_results_stay_close_to_one_world_in_size() {
    // The paper's headline observation (Fig. 27): the representation of each
    // query answer stays close to the size of one world.
    let scenario = CensusScenario::new(2_000, 0.001, 3);
    let mut uwsdt = scenario.chased_uwsdt().unwrap();
    let base_stats = stats_for(&uwsdt, RELATION_NAME).unwrap();
    assert_eq!(base_stats.template_rows, 2_000);
    for (label, query) in all_queries() {
        let out = format!("{label}_OUT");
        maybms::relational::evaluate_query(&mut uwsdt, &query, &out).unwrap();
        let stats = stats_for(&uwsdt, &out).unwrap();
        // The answer never has more placeholders than the input had, and the
        // component table stays tiny relative to the template.
        assert!(stats.placeholders <= base_stats.placeholders, "{label}");
        assert!(
            stats.c_size <= base_stats.c_size * 2,
            "{label}: |C| exploded ({} vs {})",
            stats.c_size,
            base_stats.c_size
        );
        // And the answer is never larger than the full relation (all queries
        // are selective or projective).
        assert!(stats.template_rows <= base_stats.template_rows, "{label}");
    }
}

#[test]
fn one_world_baseline_matches_uwsdt_on_noise_free_data() {
    // With density 0 the UWSDT degenerates to the template = one world, and
    // query answers coincide exactly with ordinary evaluation.
    let scenario = CensusScenario::new(500, 0.0, 11);
    let mut uwsdt = scenario.chased_uwsdt().unwrap();
    assert_eq!(stats_for(&uwsdt, RELATION_NAME).unwrap().placeholders, 0);
    let one_world = scenario.one_world();
    for (label, query) in all_queries() {
        let out = format!("{label}_OUT");
        maybms::relational::evaluate_query(&mut uwsdt, &query, &out).unwrap();
        let expected = ws_relational::evaluate_set(&one_world, &query).unwrap();
        let mut actual = uwsdt.template(&out).unwrap().clone();
        actual.dedup();
        assert_eq!(expected.row_set(), actual.row_set(), "{label}");
    }
}

#[test]
fn noise_density_controls_the_number_of_placeholders() {
    for (density, label) in ws_census::PAPER_DENSITIES
        .iter()
        .zip(ws_census::PAPER_DENSITY_LABELS)
    {
        let scenario = CensusScenario::new(4_000, *density, 7);
        let dirty = scenario.dirty_uwsdt().unwrap();
        let stats = stats_for(&dirty, RELATION_NAME).unwrap();
        let expected = (4_000.0 * 50.0 * density).round() as usize;
        assert_eq!(stats.placeholders, expected, "{label}");
    }
}
