//! The plan rewrites of the optimizer (§5-style selection pushdown and
//! operator merging) must never change query answers — neither on ordinary
//! one-world databases nor when the rewritten plan is evaluated over a
//! world-set representation.

use maybms::prelude::*;
use proptest::prelude::*;
use ws_relational::optimizer;

/// Row contents of two small relations R[A, B] and S[B2, C].
type TwoRelationRows = (Vec<(i64, i64)>, Vec<(i64, i64)>);

/// Strategy: contents of two small relations R[A, B] and S[B2, C].
fn database_rows() -> impl Strategy<Value = TwoRelationRows> {
    let r = proptest::collection::vec((0i64..5, 0i64..5), 0..6);
    let s = proptest::collection::vec((0i64..5, 0i64..5), 0..6);
    (r, s)
}

fn database_from(rows: &TwoRelationRows) -> Database {
    let mut db = Database::new();
    let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
    for (a, b) in &rows.0 {
        r.push(Tuple::from_iter([Value::int(*a), Value::int(*b)]))
            .unwrap();
    }
    let mut s = Relation::new(Schema::new("S", &["B2", "C"]).unwrap());
    for (b, c) in &rows.1 {
        s.push(Tuple::from_iter([Value::int(*b), Value::int(*c)]))
            .unwrap();
    }
    db.insert_relation(r);
    db.insert_relation(s);
    db
}

fn query_suite() -> Vec<RaExpr> {
    vec![
        // Join with pushable local conjuncts.
        RaExpr::rel("R")
            .product(RaExpr::rel("S"))
            .select(Predicate::and(vec![
                Predicate::cmp_attr("B", CmpOp::Eq, "B2"),
                Predicate::cmp_const("A", CmpOp::Gt, 1i64),
                Predicate::cmp_const("C", CmpOp::Lt, 4i64),
            ])),
        // Stacked selections + projections.
        RaExpr::rel("R")
            .select(Predicate::cmp_const("A", CmpOp::Ge, 1i64))
            .select(Predicate::cmp_const("B", CmpOp::Le, 3i64))
            .project(vec!["A", "B"])
            .project(vec!["B"]),
        // Selection over a union of renamed projections.
        RaExpr::rel("R")
            .project(vec!["B"])
            .union(RaExpr::rel("S").rename("B2", "B").project(vec!["B"]))
            .select(Predicate::cmp_const("B", CmpOp::Ne, 2i64)),
        // Selection over a difference.
        RaExpr::rel("R")
            .project(vec!["B"])
            .difference(RaExpr::rel("S").rename("B2", "B").project(vec!["B"]))
            .select(Predicate::cmp_const("B", CmpOp::Gt, 0i64)),
        // Disjunctive predicate (not decomposable into conjuncts).
        RaExpr::rel("R").select(Predicate::or(vec![
            Predicate::eq_const("A", 0i64),
            Predicate::eq_const("B", 4i64),
        ])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn optimized_plans_return_the_same_answers(rows in database_rows()) {
        let db = database_from(&rows);
        for query in query_suite() {
            let plain = ws_relational::evaluate_set(&db, &query).unwrap();
            let plan = optimizer::optimize(&db, &query).unwrap();
            let optimized = ws_relational::evaluate_set(&db, &plan).unwrap();
            prop_assert!(
                plain.set_eq(&optimized),
                "answers differ for {}: {} vs {} (plan {})",
                query, plain, optimized, plan
            );
            // The cost model stays finite and non-negative on every plan (it
            // is a heuristic, so no ordering between the two is asserted on
            // arbitrary — possibly empty — inputs).
            let before = optimizer::estimated_cost(&db, &query).unwrap();
            let after = optimizer::estimated_cost(&db, &plan).unwrap();
            prop_assert!(before.is_finite() && before >= 0.0);
            prop_assert!(after.is_finite() && after >= 0.0);
        }
    }
}

#[test]
fn optimized_plans_agree_on_world_set_representations() {
    // Evaluate original and optimized census queries on a small UWSDT and
    // compare the possible answers — the rewriting must commute with the
    // possible-worlds semantics.
    let scenario = CensusScenario::new(300, 0.002, 0xFEED);
    let world = scenario.one_world();
    let mut uwsdt = scenario.dirty_uwsdt().unwrap();
    for (name, query) in maybms::census::all_queries() {
        let plan = optimizer::optimize(&world, &query).unwrap();
        // The plain arm must bypass the engine's default optimizing pipeline,
        // or both arms would execute the same rewritten plan.
        let out_plain = ws_relational::evaluate_query_with(
            &mut uwsdt,
            &query,
            &format!("{name}_plain"),
            ws_relational::EngineConfig::naive(),
        )
        .unwrap();
        let out_opt =
            ws_relational::evaluate_query(&mut uwsdt, &plan, &format!("{name}_opt")).unwrap();
        let plain = ws_uwsdt::ops::possible_tuples(&uwsdt, &out_plain).unwrap();
        let optimized = ws_uwsdt::ops::possible_tuples(&uwsdt, &out_opt).unwrap();
        let plain_set: std::collections::BTreeSet<_> = plain.into_iter().collect();
        let optimized_set: std::collections::BTreeSet<_> = optimized.into_iter().collect();
        assert_eq!(
            plain_set, optimized_set,
            "possible answers differ for {name}"
        );
    }
}

#[test]
fn one_world_census_queries_are_unchanged_by_optimization() {
    let scenario = CensusScenario::new(1_000, 0.0, 0xBEEF);
    let world = scenario.one_world();
    for (name, query) in maybms::census::all_queries() {
        let plain = ws_relational::evaluate_set(&world, &query).unwrap();
        let optimized = ws_relational::evaluate_optimized(&world, &query).unwrap();
        let mut optimized = optimized;
        optimized.dedup();
        assert!(plain.set_eq(&optimized), "answers differ for {name}");
    }
}
