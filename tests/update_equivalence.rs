//! The differential update oracle: randomized interleaved update/query
//! sequences applied through `Session::{apply, condition}` on every
//! possible-worlds backend, checked step by step against hand-rolled
//! per-world semantics on the explicitly enumerated world list
//! (`tests/common::oracle_apply_update`).
//!
//! Every backend must be *bit-identical* to the oracle: the sorted possible
//! answer tuples of every interleaved query agree, conditioning reports the
//! same surviving mass, and an update sequence that empties the world-set is
//! reported as inconsistent by every backend at the same step — with the
//! optimizer on and off, at 1 and 4 worker threads.

use std::collections::BTreeSet;

use maybms::prelude::*;
use maybms::{q, Session, UpdateExpr};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod common;
use common::{
    all_backends, oracle_apply_update, oracle_possible_query, random_update, random_wsd, Generator,
};

/// One step of an interleaved sequence.
enum Step {
    Update(UpdateExpr),
    Query(RaExpr),
}

/// What the per-world oracle says happens at each step.
enum Expected {
    /// The update applies, surviving with this mass.
    Mass(f64),
    /// Conditioning empties the world-set: the backend must error with an
    /// inconsistency diagnosis and the round stops here.
    Inconsistent,
    /// The query's possible answer tuples.
    Possible(BTreeSet<Tuple>),
}

/// Generate a random interleaved sequence and its oracle verdicts.
fn generate_round(
    rng: &mut StdRng,
    generator: &mut Generator,
    wsd: &Wsd,
) -> (Vec<Step>, Vec<Expected>) {
    let mut worlds = wsd.enumerate_worlds(1 << 20).unwrap();
    let mut steps = Vec::new();
    let mut expected = Vec::new();
    let mut fractional_inserts = 0usize;
    let n_steps = rng.gen_range(3..=6usize);
    for i in 0..n_steps {
        // Interleave: updates and queries in random order, always ending on
        // a query so every round checks post-update state.
        let is_query = i + 1 == n_steps || rng.gen_bool(0.35);
        if is_query {
            // Difference-free so U-relations stay comparable.
            let plan = generator.expr(rng.gen_range(1..=2usize), false);
            expected.push(Expected::Possible(oracle_possible_query(
                &worlds, &plan.expr,
            )));
            steps.push(Step::Query(plan.expr));
            continue;
        }
        // Cap world-doubling fractional inserts so the oracle stays small.
        let allow_fractional = fractional_inserts < 2;
        let update = if rng.gen_bool(0.06) {
            // An unsatisfiable constraint: R's values live in 0..5 and every
            // world keeps at least one R tuple only if nothing was deleted —
            // so first make sure one exists, then demand the impossible.
            let anchor = UpdateExpr::insert("R", Tuple::from_iter([2i64, 2]));
            oracle_apply_update(&mut worlds, &anchor).unwrap();
            steps.push(Step::Update(anchor));
            expected.push(Expected::Mass(1.0));
            UpdateExpr::condition(vec![Dependency::Egd(
                EqualityGeneratingDependency::implies("R", "A", 2i64, "B", CmpOp::Gt, 100i64),
            )])
        } else {
            random_update(generator, rng, allow_fractional, true)
        };
        if matches!(&update, UpdateExpr::InsertPossible { prob, .. } if *prob > 0.0 && *prob < 1.0)
        {
            fractional_inserts += 1;
        }
        match oracle_apply_update(&mut worlds, &update) {
            Some(mass) => expected.push(Expected::Mass(mass)),
            None => {
                expected.push(Expected::Inconsistent);
                steps.push(Step::Update(update));
                return (steps, expected);
            }
        }
        steps.push(Step::Update(update));
    }
    (steps, expected)
}

/// Replay one sequence on one backend session, asserting each step against
/// the oracle verdicts.
fn replay(
    label: &str,
    backend: AnyBackend,
    config: EngineConfig,
    steps: &[Step],
    expected: &[Expected],
) {
    let mut session = Session::with_config(backend, config);
    for (step, verdict) in steps.iter().zip(expected) {
        match (step, verdict) {
            (Step::Update(update), Expected::Mass(mass)) => {
                let reported = session
                    .apply(update)
                    .unwrap_or_else(|e| panic!("[{label}] {update} failed: {e}"));
                assert!(
                    (reported - mass).abs() < 1e-9,
                    "[{label}] {update}: mass {reported} vs oracle {mass}"
                );
            }
            (Step::Update(update), Expected::Inconsistent) => {
                let err = session
                    .apply(update)
                    .expect_err("oracle says the world-set became empty");
                assert!(
                    err.is_inconsistent(),
                    "[{label}] {update}: expected an inconsistency error, got {err}"
                );
                return;
            }
            (Step::Query(query), Expected::Possible(oracle)) => {
                let prepared = session
                    .prepare(query)
                    .unwrap_or_else(|e| panic!("[{label}] prepare {query} failed: {e}"));
                let rows: BTreeSet<Tuple> = session
                    .execute(&prepared)
                    .unwrap_or_else(|e| panic!("[{label}] execute {query} failed: {e}"))
                    .collect();
                assert_eq!(
                    &rows, oracle,
                    "[{label}] possible answers of {query} diverge from the oracle"
                );
            }
            _ => unreachable!("steps and verdicts are generated in lockstep"),
        }
    }
}

#[test]
fn all_backends_agree_with_the_update_oracle() {
    let mut rng = StdRng::seed_from_u64(0x0DDC0FFE);
    let mut generator = Generator::new(0x5EED6);
    let mut conditioned_rounds = 0usize;
    let mut inconsistent_rounds = 0usize;
    // 50 rounds × (optimizer on/off × threads {1, 4}) = 200 replayed
    // interleaved sequences per backend.
    for _ in 0..50 {
        let wsd = random_wsd(&mut rng);
        let (steps, expected) = generate_round(&mut rng, &mut generator, &wsd);
        conditioned_rounds += steps
            .iter()
            .any(|s| matches!(s, Step::Update(UpdateExpr::Condition { .. })))
            as usize;
        inconsistent_rounds +=
            expected.iter().any(|e| matches!(e, Expected::Inconsistent)) as usize;
        for (config_label, base_config) in [
            ("optimized", EngineConfig::default()),
            ("naive", EngineConfig::naive()),
        ] {
            for threads in [1usize, 4] {
                let config = EngineConfig {
                    threads,
                    ..base_config
                };
                for (name, backend) in all_backends(&wsd) {
                    if name == "database" {
                        // The single world cannot represent fractional
                        // inserts or survive multi-world conditioning; it has
                        // its own differential test below.
                        continue;
                    }
                    let label = format!("{name}/{config_label}/t{threads}");
                    replay(&label, backend, config, &steps, &expected);
                }
            }
        }
    }
    assert!(
        conditioned_rounds > 5,
        "the generator produced too few conditioning steps"
    );
    assert!(
        inconsistent_rounds > 0,
        "no round exercised the inconsistent outcome"
    );
}

#[test]
fn the_single_world_backend_agrees_on_certain_updates() {
    let mut rng = StdRng::seed_from_u64(0xDBDBDB);
    let mut generator = Generator::new(0x5EED7);
    for _ in 0..40 {
        let wsd = random_wsd(&mut rng);
        let first_world = wsd.enumerate_worlds(1 << 20).unwrap()[0].0.clone();
        // Its oracle is the degenerate one-world list.
        let mut worlds = vec![(first_world.clone(), 1.0)];
        let mut steps = Vec::new();
        let mut expected = Vec::new();
        for i in 0..4 {
            if i == 3 {
                let plan = generator.expr(2, true);
                expected.push(Expected::Possible(oracle_possible_query(
                    &worlds, &plan.expr,
                )));
                steps.push(Step::Query(plan.expr));
                break;
            }
            let update = random_update(&mut generator, &mut rng, false, true);
            match oracle_apply_update(&mut worlds, &update) {
                Some(mass) => expected.push(Expected::Mass(mass)),
                None => {
                    expected.push(Expected::Inconsistent);
                    steps.push(Step::Update(update));
                    break;
                }
            }
            steps.push(Step::Update(update));
        }
        replay(
            "database",
            AnyBackend::from(first_world),
            EngineConfig::default(),
            &steps,
            &expected,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Property: for any random WSD and any random update, applying the
    // update and then conditioning on the tautology ⊤ changes nothing and
    // reports mass 1 — on every multi-world backend.
    #[test]
    fn apply_then_tautological_condition_is_a_noop(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut generator = Generator::new(seed ^ 0x5EED8);
        let wsd = random_wsd(&mut rng);
        let update = random_update(&mut generator, &mut rng, true, false);
        for (name, backend) in all_backends(&wsd) {
            if name == "database" {
                continue;
            }
            let mut session = Session::over(backend);
            session.apply(&update).unwrap();
            let snapshot = |session: &mut Session<AnyBackend>| {
                ["R", "S"]
                    .iter()
                    .map(|rel| {
                        let p = session.prepare(q(*rel)).unwrap();
                        session.execute(&p).unwrap().collect::<BTreeSet<Tuple>>()
                    })
                    .collect::<Vec<_>>()
            };
            let before = snapshot(&mut session);
            let mass = session.condition(&[]).unwrap();
            prop_assert_eq!(mass, 1.0, "[{}] ⊤ must not remove mass", name);
            let after = snapshot(&mut session);
            prop_assert_eq!(&before, &after, "[{}] conditioning on ⊤ changed {}", name, update);
        }
    }

    // Property: inserting a fresh tuple (certainly or possibly) and then
    // deleting exactly it restores the possible tuples of the relation.
    #[test]
    fn insert_then_delete_round_trips(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x101D);
        let wsd = random_wsd(&mut rng);
        // Values 9/9 are outside the generator's 0..5 domain, so the delete
        // predicate hits exactly the inserted tuple.
        let tuple = Tuple::from_iter([9i64, 9]);
        let pred = Predicate::and(vec![
            Predicate::eq_const("A", 9i64),
            Predicate::eq_const("B", 9i64),
        ]);
        for (name, backend) in all_backends(&wsd) {
            let mut session = Session::over(backend);
            let possible_r = |session: &mut Session<AnyBackend>| {
                let p = session.prepare(q("R")).unwrap();
                session.execute(&p).unwrap().collect::<BTreeSet<Tuple>>()
            };
            let before = possible_r(&mut session);
            let prob = if name == "database" || rng.gen_bool(0.5) {
                1.0
            } else {
                0.5
            };
            session
                .apply(&UpdateExpr::insert_possible("R", tuple.clone(), prob))
                .unwrap();
            prop_assert!(
                possible_r(&mut session).contains(&tuple),
                "[{}] the inserted tuple must be possible",
                name
            );
            session.apply(&UpdateExpr::delete("R", pred.clone())).unwrap();
            let after = possible_r(&mut session);
            prop_assert_eq!(&before, &after, "[{}] insert→delete must round-trip", name);
        }
    }
}
