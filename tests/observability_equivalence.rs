//! Observability must be a *pure* observer: turning it on changes nothing
//! about what the engine computes.
//!
//! Three suites pin that down:
//!
//! * **Bit-identity** — for random world-sets and random plans, a session
//!   with an [`Observer`] attached (slow-query threshold 0, so every code
//!   path that can fire does fire) streams the identical answer tuples and
//!   the identical confidence *bit patterns* as an unobserved session, on
//!   all five backends, single-threaded and with a worker pool.
//! * **Profile consistency** — [`Session::explain_analyze`] reports row
//!   counts that match the materialized results it profiles: the root
//!   operator's `rows_out`, the profile's `rows`, and the confidence step's
//!   inputs/outputs all agree with independently executed queries.
//! * **Histogram algebra** (proptest) — merging folded histograms is
//!   associative and agrees with recording the concatenated samples into
//!   one histogram, so per-thread shards can be folded in any order.

mod common;

use std::sync::Arc;

use common::{all_backends, random_wsd, Generator};
use maybms::obs::{Histogram, HistogramSummary, Observer};
use maybms::prelude::*;
use maybms::{AnyBackend, Session};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Answers and confidence bit patterns of one plan, on one session.
fn probe(
    backend: AnyBackend,
    threads: usize,
    observer: Option<Arc<Observer>>,
    plan: &RaExpr,
) -> (Vec<Tuple>, Vec<(Tuple, u64)>) {
    let mut session = Session::with_config(backend, EngineConfig::with_threads(threads));
    if let Some(observer) = observer {
        observer.set_slow_query_threshold(Some(std::time::Duration::ZERO));
        session.set_observer(observer);
    }
    let prepared = session.prepare(plan.clone()).expect("plan prepares");
    let rows: Vec<Tuple> = session.execute(&prepared).expect("plan runs").collect();
    let confidences = session
        .confidence(&prepared)
        .expect("confidence runs")
        .into_iter()
        .map(|(t, p)| (t, p.to_bits()))
        .collect();
    (rows, confidences)
}

// Observed and unobserved sessions agree bit-for-bit: same tuples in the
// same order, same confidence doubles, on every backend at 1 and 4 threads.
#[test]
fn observation_is_bit_identical_across_backends() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E);
        let wsd = random_wsd(&mut rng);
        let mut generator = Generator::new(seed.wrapping_mul(31) + 7);
        // No difference operator: the U-relational backend rejects it.
        let plans: Vec<RaExpr> = (0..3).map(|_| generator.expr(2, false).expr).collect();
        for plan in &plans {
            for threads in [1usize, 4] {
                for (name, backend) in all_backends(&wsd) {
                    let baseline = probe(backend.clone(), threads, None, plan);
                    let observed = probe(backend, threads, Some(Arc::new(Observer::new())), plan);
                    assert_eq!(
                        baseline, observed,
                        "[{name} threads={threads} seed={seed}] observation changed \
                         the answer of {plan}"
                    );
                }
            }
        }
    }
}

// The observer actually observed something while staying pure: the metrics
// registry is non-empty after an observed query, and a second observed run
// still matches the baseline (the registry is not consulted by the engine).
#[test]
fn observed_sessions_populate_the_registry() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    let wsd = random_wsd(&mut rng);
    let observer = Arc::new(Observer::new());
    let (_, backend) = all_backends(&wsd).remove(1); // the WSD itself
    let (rows, _) = probe(backend, 1, Some(Arc::clone(&observer)), &RaExpr::rel("R"));
    assert!(!rows.is_empty());
    let snapshot = observer.metrics().snapshot();
    let rendered = snapshot.render_prometheus();
    assert!(
        rendered.contains("ws_exec_op_"),
        "no operator timings were recorded:\n{rendered}"
    );
    assert!(
        !observer.slow_queries().is_empty(),
        "threshold 0 must log every query"
    );
}

// explain_analyze's numbers are not decorative: they match independently
// materialized results on every backend.
#[test]
fn profile_row_counts_match_materialized_results() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAA17);
        let wsd = random_wsd(&mut rng);
        let mut generator = Generator::new(seed.wrapping_mul(17) + 3);
        let plan = generator.expr(2, false).expr;
        for (name, backend) in all_backends(&wsd) {
            let mut session = Session::new(backend);
            let prepared = session.prepare(plan.clone()).expect("plan prepares");
            let rows = session.execute(&prepared).expect("plan runs").count() as u64;
            let confidences = session
                .confidence(&prepared)
                .expect("confidence runs")
                .len() as u64;
            let profile = session
                .explain_analyze(&prepared)
                .expect("explain_analyze runs");
            assert_eq!(
                profile.rows, rows,
                "[{name} seed={seed}] profile rows vs materialized rows of {plan}"
            );
            assert_eq!(
                profile.root.rows_out, rows,
                "[{name} seed={seed}] root operator rows_out"
            );
            assert_eq!(
                profile.confidence.rows_in, rows,
                "[{name} seed={seed}] confidence step consumes the answer stream"
            );
            assert_eq!(
                profile.confidence.rows_out, confidences,
                "[{name} seed={seed}] confidence step output count"
            );
            assert_eq!(profile.cache, "hit", "[{name}] the plan was prepared above");
            // The rendered tree mentions the root and the confidence tier.
            let rendered = profile.to_string();
            assert!(rendered.contains("tier="), "{rendered}");
        }
    }
}

/// Record samples into a fresh histogram and fold it.
fn folded(samples: &[u64]) -> HistogramSummary {
    let histogram = Histogram::new();
    for &s in samples {
        histogram.record(s);
    }
    histogram.fold()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Property: merging is associative, commutative, and equal to folding
    // the concatenated samples — the algebra that makes per-thread shards
    // and cross-process scrapes sound in any fold order.
    #[test]
    fn histogram_merge_is_associative(
        samples in proptest::collection::vec(0u64..1 << 40, 0..72)
    ) {
        // Three shards from one sample stream, round-robin — the shape the
        // per-thread histogram shards produce.
        let shard = |k: usize| -> Vec<u64> {
            samples.iter().copied().skip(k).step_by(3).collect()
        };
        let (a, b, c) = (shard(0), shard(1), shard(2));
        let (fa, fb, fc) = (folded(&a), folded(&b), folded(&c));
        let left = fa.merged(&fb).merged(&fc);
        let right = fa.merged(&fb.merged(&fc));
        prop_assert_eq!(&left, &right, "associativity");
        prop_assert_eq!(&fb.merged(&fa), &fa.merged(&fb), "commutativity");

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &folded(&all), "merge == fold of concatenation");

        // The identity element really is the empty summary.
        prop_assert_eq!(&fa.merged(&HistogramSummary::default()), &fa, "identity");
    }
}
