//! Shared fixtures of the engine property tests: the random well-typed plan
//! generator, the random-WSD builder, and the `Session`-era harness — the
//! five-backend constructor and the fluent-builder rebuild used by the
//! cross-backend equivalence, parallel-identity and session-API suites.
//!
//! Each integration-test binary compiles its own copy of this module, so
//! helpers one binary does not use are expected dead code there.
#![allow(dead_code)]

use std::collections::BTreeSet;

use maybms::prelude::*;
use maybms::{AnyBackend, Query, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated expression together with its (ordered) output attributes.
#[derive(Clone, Debug)]
pub struct GenExpr {
    pub expr: RaExpr,
    pub attrs: Vec<String>,
}

pub struct Generator {
    rng: StdRng,
    rename_counter: usize,
}

impl Generator {
    pub fn new(seed: u64) -> Self {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            rename_counter: 0,
        }
    }

    /// A random comparison operator.
    fn op(&mut self) -> CmpOp {
        match self.rng.gen_range(0..6) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    /// A random (possibly composite) predicate over the given attributes.
    pub fn predicate(&mut self, attrs: &[String], depth: usize) -> Predicate {
        if depth > 0 && self.rng.gen_bool(0.3) {
            let parts = (0..self.rng.gen_range(1..=2usize))
                .map(|_| self.predicate(attrs, depth - 1))
                .collect::<Vec<_>>();
            return match self.rng.gen_range(0..3) {
                0 => Predicate::and(parts),
                1 => Predicate::or(parts),
                _ => Predicate::not(self.predicate(attrs, depth - 1)),
            };
        }
        let attr = attrs[self.rng.gen_range(0..attrs.len())].clone();
        if attrs.len() > 1 && self.rng.gen_bool(0.3) {
            let other = attrs[self.rng.gen_range(0..attrs.len())].clone();
            Predicate::cmp_attr(attr, self.op(), other)
        } else {
            Predicate::cmp_const(attr, self.op(), self.rng.gen_range(0..4i64))
        }
    }

    /// A random well-typed plan over base relations `R[A, B]` and `S[C]`.
    pub fn expr(&mut self, depth: usize, allow_difference: bool) -> GenExpr {
        if depth == 0 {
            return if self.rng.gen_bool(0.7) {
                GenExpr {
                    expr: RaExpr::rel("R"),
                    attrs: vec!["A".to_string(), "B".to_string()],
                }
            } else {
                GenExpr {
                    expr: RaExpr::rel("S"),
                    attrs: vec!["C".to_string()],
                }
            };
        }
        match self.rng.gen_range(0..10) {
            // Selection.
            0 | 1 => {
                let input = self.expr(depth - 1, allow_difference);
                let pred = self.predicate(&input.attrs, 1);
                GenExpr {
                    expr: input.expr.select(pred),
                    attrs: input.attrs,
                }
            }
            // Projection onto a random non-empty prefix-shuffled subset.
            2 | 3 => {
                let input = self.expr(depth - 1, allow_difference);
                let keep = self.rng.gen_range(1..=input.attrs.len());
                let mut attrs = input.attrs.clone();
                for i in (1..attrs.len()).rev() {
                    let j = self.rng.gen_range(0..=i);
                    attrs.swap(i, j);
                }
                attrs.truncate(keep);
                GenExpr {
                    expr: input.expr.project(attrs.clone()),
                    attrs,
                }
            }
            // Renaming.
            4 => {
                let input = self.expr(depth - 1, allow_difference);
                let idx = self.rng.gen_range(0..input.attrs.len());
                let from = input.attrs[idx].clone();
                self.rename_counter += 1;
                let to = format!("{from}_r{}", self.rename_counter);
                let mut attrs = input.attrs.clone();
                attrs[idx] = to.clone();
                GenExpr {
                    expr: input.expr.rename(from, to),
                    attrs,
                }
            }
            // Product (with clash-avoiding renames), sometimes as a θ-join.
            5 | 6 => {
                let left = self.expr(depth - 1, allow_difference);
                let mut right = self.expr(depth - 1, allow_difference);
                for (idx, attr) in right.attrs.clone().into_iter().enumerate() {
                    if left.attrs.contains(&attr) {
                        self.rename_counter += 1;
                        let to = format!("{attr}_p{}", self.rename_counter);
                        right.expr = right.expr.rename(attr, to.clone());
                        right.attrs[idx] = to;
                    }
                }
                let mut attrs = left.attrs.clone();
                attrs.extend(right.attrs.iter().cloned());
                let mut expr = left.expr.product(right.expr);
                if self.rng.gen_bool(0.5) {
                    let la = left.attrs[self.rng.gen_range(0..left.attrs.len())].clone();
                    let ra = right.attrs[self.rng.gen_range(0..right.attrs.len())].clone();
                    expr = expr.select(Predicate::cmp_attr(la, CmpOp::Eq, ra));
                }
                GenExpr { expr, attrs }
            }
            // Union of two selections of a common input (union-compatible by
            // construction).
            7 | 8 => {
                let input = self.expr(depth - 1, allow_difference);
                let p1 = self.predicate(&input.attrs, 0);
                let p2 = self.predicate(&input.attrs, 0);
                GenExpr {
                    expr: input.expr.clone().select(p1).union(input.expr.select(p2)),
                    attrs: input.attrs,
                }
            }
            // Difference of two selections of a common input.
            _ => {
                let input = self.expr(depth - 1, allow_difference);
                if !allow_difference {
                    return input;
                }
                let p1 = self.predicate(&input.attrs, 0);
                let p2 = self.predicate(&input.attrs, 0);
                GenExpr {
                    expr: input
                        .expr
                        .clone()
                        .select(p1)
                        .difference(input.expr.select(p2)),
                    attrs: input.attrs,
                }
            }
        }
    }
}

/// A small random WSD over `R[A, B]` and `S[C]` with or-set noise.
pub fn random_wsd(rng: &mut StdRng) -> Wsd {
    let mut wsd = Wsd::new();
    let r_tuples = rng.gen_range(2..=3usize);
    let s_tuples = rng.gen_range(1..=2usize);
    wsd.register_relation("R", &["A", "B"], r_tuples).unwrap();
    wsd.register_relation("S", &["C"], s_tuples).unwrap();
    let mut fields: Vec<FieldId> = Vec::new();
    for t in 0..r_tuples {
        fields.push(FieldId::new("R", t, "A"));
        fields.push(FieldId::new("R", t, "B"));
    }
    for t in 0..s_tuples {
        fields.push(FieldId::new("S", t, "C"));
    }
    for field in fields {
        if rng.gen_bool(0.35) {
            let n = rng.gen_range(2..=3usize);
            let mut alternatives: BTreeSet<i64> = BTreeSet::new();
            while alternatives.len() < n {
                alternatives.insert(rng.gen_range(0..4i64));
            }
            wsd.set_uniform(field, alternatives.into_iter().map(Value::int).collect())
                .unwrap();
        } else {
            wsd.set_certain(field, Value::int(rng.gen_range(0..4i64)))
                .unwrap();
        }
    }
    wsd.validate().unwrap();
    wsd
}

/// The same world-set in all five representations, tagged with the backend
/// name: the first enumerated world as a plain database, the WSD itself,
/// its UWSDT and U-relational conversions, and the explicit world-set.
/// Everything a session can be opened over.
pub fn all_backends(wsd: &Wsd) -> Vec<(&'static str, AnyBackend)> {
    let first_world = wsd.enumerate_worlds(1 << 20).unwrap()[0].0.clone();
    vec![
        ("database", AnyBackend::from(first_world)),
        ("wsd", AnyBackend::from(wsd.clone())),
        (
            "uwsdt",
            AnyBackend::from(maybms::uwsdt::from_wsd(wsd).unwrap()),
        ),
        (
            "urel",
            AnyBackend::from(maybms::urel::from_wsd(wsd).unwrap()),
        ),
        ("worlds", AnyBackend::from(wsd.rep().unwrap())),
    ]
}

/// Rebuild an arbitrary plan through the fluent builder, combinator by
/// combinator — the round-trip half of the builder property test.
pub fn rebuild_with_builder(expr: &RaExpr) -> Query {
    match expr {
        RaExpr::Rel(name) => maybms::q(name.clone()),
        RaExpr::Select { pred, input } => rebuild_with_builder(input).select(pred.clone()),
        RaExpr::Project { attrs, input } => rebuild_with_builder(input).project(attrs.clone()),
        RaExpr::Product { left, right } => {
            rebuild_with_builder(left).product(rebuild_with_builder(right))
        }
        RaExpr::Union { left, right } => {
            rebuild_with_builder(left).union(rebuild_with_builder(right))
        }
        RaExpr::Difference { left, right } => {
            rebuild_with_builder(left).difference(rebuild_with_builder(right))
        }
        RaExpr::Rename { from, to, input } => {
            rebuild_with_builder(input).rename(from.clone(), to.clone())
        }
    }
}

/// Open a session with `threads` workers over a backend and stream one
/// query's possible answer tuples, in the session's canonical order.
pub fn session_possible(
    backend: AnyBackend,
    query: impl maybms::IntoQuery,
    threads: usize,
) -> Result<Vec<Tuple>, maybms::Error> {
    let mut session = Session::with_config(backend, EngineConfig::with_threads(threads));
    let prepared = session.prepare(query)?;
    let rows: Vec<Tuple> = session.execute(&prepared)?.collect();
    Ok(rows)
}

// ---------------------------------------------------------------------------
// The update half of the oracle harness.
// ---------------------------------------------------------------------------

/// A random update over the generator's fixed schema (`R[A, B]`, `S[C]`).
///
/// `allow_fractional` gates possible inserts with `0 < p < 1` (the
/// single-world database backend cannot represent them);
/// `allow_condition` gates conditioning steps (which may legitimately make
/// the world-set inconsistent — the caller compares that outcome too).
pub fn random_update(
    generator: &mut Generator,
    rng: &mut StdRng,
    allow_fractional: bool,
    allow_condition: bool,
) -> UpdateExpr {
    let (relation, attrs): (&str, &[&str]) = if rng.gen_bool(0.6) {
        ("R", &["A", "B"])
    } else {
        ("S", &["C"])
    };
    let fresh_tuple = |rng: &mut StdRng| {
        Tuple::new(
            (0..attrs.len())
                .map(|_| Value::int(rng.gen_range(0..5i64)))
                .collect(),
        )
    };
    let attr_names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
    match rng.gen_range(0..10) {
        0 | 1 => UpdateExpr::insert(relation, fresh_tuple(rng)),
        2 | 3 => {
            let prob = if allow_fractional {
                [0.25, 0.5, 0.75, 1.0][rng.gen_range(0..4usize)]
            } else {
                1.0
            };
            UpdateExpr::insert_possible(relation, fresh_tuple(rng), prob)
        }
        4 | 5 => UpdateExpr::delete(relation, generator.predicate(&attr_names, 1)),
        6..=8 => {
            let n = rng.gen_range(1..=attrs.len());
            let mut assigned: Vec<&str> = attrs.to_vec();
            for i in (1..assigned.len()).rev() {
                let j = rng.gen_range(0..=i);
                assigned.swap(i, j);
            }
            assigned.truncate(n);
            let assignments: Vec<(String, Value)> = assigned
                .into_iter()
                .map(|a| (a.to_string(), Value::int(rng.gen_range(0..5i64))))
                .collect();
            UpdateExpr::modify(relation, generator.predicate(&attr_names, 1), assignments)
        }
        _ if allow_condition => {
            let dep = if rng.gen_bool(0.5) {
                Dependency::Fd(FunctionalDependency::new("R", vec!["A"], vec!["B"]))
            } else {
                Dependency::Egd(EqualityGeneratingDependency::implies(
                    "R",
                    "A",
                    rng.gen_range(0..4i64),
                    "B",
                    if rng.gen_bool(0.5) {
                        CmpOp::Ne
                    } else {
                        CmpOp::Le
                    },
                    rng.gen_range(0..4i64),
                ))
            };
            UpdateExpr::condition(vec![dep])
        }
        _ => UpdateExpr::delete(relation, generator.predicate(&attr_names, 0)),
    }
}

/// Apply one update to an explicitly enumerated world list — the
/// hand-rolled per-world semantics the decomposed `WriteBackend`
/// implementations are tested against.  Returns the surviving mass, or
/// `None` when conditioning eliminates every world (the inconsistent
/// outcome the backends must report as an error).
pub fn oracle_apply_update(worlds: &mut Vec<(Database, f64)>, update: &UpdateExpr) -> Option<f64> {
    match update {
        UpdateExpr::InsertCertain { relation, tuple } => {
            for (db, _) in worlds.iter_mut() {
                let rel = db.relation_mut(relation).unwrap();
                if !rel.contains(tuple) {
                    rel.push(tuple.clone()).unwrap();
                }
            }
            Some(1.0)
        }
        UpdateExpr::InsertPossible {
            relation,
            tuple,
            prob,
        } => {
            let mut split = Vec::with_capacity(worlds.len() * 2);
            for (db, p) in worlds.drain(..) {
                if *prob < 1.0 {
                    split.push((db.clone(), p * (1.0 - prob)));
                }
                if *prob > 0.0 {
                    let mut with = db;
                    let rel = with.relation_mut(relation).unwrap();
                    if !rel.contains(tuple) {
                        rel.push(tuple.clone()).unwrap();
                    }
                    split.push((with, p * prob));
                }
            }
            *worlds = split;
            Some(1.0)
        }
        UpdateExpr::Delete { relation, pred } => {
            for (db, _) in worlds.iter_mut() {
                let rel = db.relation_mut(relation).unwrap();
                let schema = rel.schema().clone();
                rel.retain(|t| !pred.eval(&schema, t).unwrap());
            }
            Some(1.0)
        }
        UpdateExpr::Modify {
            relation,
            pred,
            assignments,
        } => {
            for (db, _) in worlds.iter_mut() {
                let rel = db.relation_mut(relation).unwrap();
                let schema = rel.schema().clone();
                let positions: Vec<usize> = assignments
                    .iter()
                    .map(|(a, _)| schema.position(a).unwrap())
                    .collect();
                let matches: Vec<bool> = rel
                    .rows()
                    .iter()
                    .map(|t| pred.eval(&schema, t).unwrap())
                    .collect();
                for (row, matched) in rel.rows_mut().iter_mut().zip(matches) {
                    if matched {
                        for (pos, (_, value)) in positions.iter().zip(assignments) {
                            row.set(*pos, value.clone());
                        }
                    }
                }
                rel.dedup();
            }
            Some(1.0)
        }
        UpdateExpr::Condition { constraints } => {
            let satisfied = |db: &Database| {
                constraints
                    .iter()
                    .all(|dep| maybms::baselines::explicit::world_satisfies(db, dep).unwrap())
            };
            let total: f64 = worlds.iter().map(|(_, p)| p).sum();
            worlds.retain(|(db, _)| satisfied(db));
            let mass: f64 = worlds.iter().map(|(_, p)| p).sum();
            if worlds.is_empty() || mass <= 0.0 {
                return None;
            }
            for (_, p) in worlds.iter_mut() {
                *p /= mass;
            }
            Some(mass / total)
        }
    }
}

/// The possible tuples of a relation across an explicit world list, sorted.
pub fn oracle_possible_in(worlds: &[(Database, f64)], relation: &str) -> BTreeSet<Tuple> {
    worlds
        .iter()
        .flat_map(|(db, _)| db.relation(relation).unwrap().rows().iter().cloned())
        .collect()
}

/// The possible answer tuples of a query across an explicit world list.
pub fn oracle_possible_query(worlds: &[(Database, f64)], query: &RaExpr) -> BTreeSet<Tuple> {
    worlds
        .iter()
        .flat_map(|(db, _)| {
            maybms::relational::evaluate_set(db, query)
                .unwrap()
                .into_rows()
        })
        .collect()
}

pub fn plan_has_difference(expr: &RaExpr) -> bool {
    match expr {
        RaExpr::Rel(_) => false,
        RaExpr::Select { input, .. }
        | RaExpr::Project { input, .. }
        | RaExpr::Rename { input, .. } => plan_has_difference(input),
        RaExpr::Product { left, right } | RaExpr::Union { left, right } => {
            plan_has_difference(left) || plan_has_difference(right)
        }
        RaExpr::Difference { .. } => true,
    }
}
