//! Probabilistic information extraction, end to end.
//!
//! An extraction tool produced ranked candidate readings for a few scanned
//! form fields (the motivating scenario of §1), plus two tuples whose very
//! existence is uncertain (a tuple-independent probabilistic feed, Figure 6).
//! The example shows how the pieces of the library fit together:
//!
//! 1. load weighted or-set readings into a probabilistic WSD,
//! 2. import a tuple-independent relation (Example 5 / Figure 7),
//! 3. query through a `maybms::Session` — exact and (ε, δ)-approximate
//!    confidences on the same prepared plan (§6),
//! 4. condition on late-arriving knowledge (conditional confidence), and
//! 5. report confidence *bounds* when the extraction weights are only known
//!    up to a margin (interval probabilities).
//!
//! Run with: `cargo run -p maybms --example probabilistic_extraction`

use maybms::prelude::*;
use maybms::{q, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Weighted readings of two scanned census forms (Figure 4).
    // ------------------------------------------------------------------
    let mut wsd = Wsd::new();
    wsd.register_relation("Person", &["S", "N", "M"], 2)?;
    // The two social security numbers are correlated (unique-key cleaning
    // already happened): one joint component with three local worlds.
    let mut ssn = Component::new(vec![
        FieldId::new("Person", 0, "S"),
        FieldId::new("Person", 1, "S"),
    ]);
    ssn.push_row(vec![Value::int(185), Value::int(186)], 0.2)?;
    ssn.push_row(vec![Value::int(785), Value::int(185)], 0.4)?;
    ssn.push_row(vec![Value::int(785), Value::int(186)], 0.4)?;
    wsd.add_component(ssn)?;
    wsd.set_certain(FieldId::new("Person", 0, "N"), Value::text("Smith"))?;
    wsd.set_certain(FieldId::new("Person", 1, "N"), Value::text("Brown"))?;
    wsd.set_alternatives(
        FieldId::new("Person", 0, "M"),
        vec![(Value::int(1), 0.7), (Value::int(2), 0.3)],
    )?;
    wsd.set_alternatives(
        FieldId::new("Person", 1, "M"),
        (1..=4).map(|m| (Value::int(m), 0.25)).collect(),
    )?;
    println!(
        "loaded {} worlds of extracted census data",
        wsd.world_count()
    );

    // ------------------------------------------------------------------
    // 2. A tuple-independent feed (Figure 6) imported as a WSD.
    // ------------------------------------------------------------------
    let feed = maybms::baselines::figure6_database();
    let feed_wsd = feed.to_wsd()?;
    println!(
        "imported a tuple-independent feed representing {} worlds",
        feed_wsd.world_count()
    );

    // ------------------------------------------------------------------
    // 3. Query + confidence through a session: SSNs of single persons.
    //    The same prepared plan answers exactly and (ε, δ)-approximately —
    //    the Monte-Carlo evaluator of §6 never composes components.
    // ------------------------------------------------------------------
    let mut session = Session::new(wsd.clone());
    let singles = session.prepare(
        q("Person")
            .select(Predicate::eq_const("M", 1i64))
            .project(["S"]),
    )?;
    println!("\nπ_S(σ_M=1(Person)) — possible answers and confidences:");
    for (tuple, confidence) in session.confidence(&singles)? {
        println!("  {tuple}  conf = {confidence:.3}");
    }
    let approx = ApproxConfig::new(0.02, 0.01).with_seed(0xC0FFEE);
    println!("the same, (ε=0.02, δ=0.01)-approximated from the plan cache:");
    for (tuple, confidence) in session.confidence_approx(&singles, &approx)? {
        println!("  {tuple}  conf ≈ {confidence:.3}");
    }
    println!("session: {}", session.summary());

    // ------------------------------------------------------------------
    // 4. Conditioning: a reliable source says SSN 785 belongs to a married
    //    person.  How does that change the answer?
    // ------------------------------------------------------------------
    let married = Dependency::Egd(EqualityGeneratingDependency::implies(
        "Person",
        "S",
        785i64,
        "M",
        CmpOp::Eq,
        1i64,
    ));
    let p_constraint = satisfaction_probability(&wsd, std::slice::from_ref(&married))?;
    let smith_married = Tuple::from_iter([Value::int(785), Value::text("Smith"), Value::int(1)]);
    let before = conf(&wsd, "Person", &smith_married)?;
    let after = conditional_conf(
        &wsd,
        "Person",
        &smith_married,
        std::slice::from_ref(&married),
    )?;
    let joint = joint_probability(
        &wsd,
        "Person",
        &smith_married,
        std::slice::from_ref(&married),
    )?;
    println!("\nconditioning on \"785 ⇒ married\":");
    println!("  P(constraint)            = {p_constraint:.3}");
    println!("  conf(Smith married)      = {before:.3}  (unconditional)");
    println!("  conf(Smith married | ψ)  = {after:.3}");
    println!("  P(tuple ∧ ψ)             = {joint:.3}");

    // ------------------------------------------------------------------
    // 5. Interval probabilities: the extractor's weights are ±0.05.  The
    //    session keeps the materialized answer inside the WSD, so the
    //    interval view can be opened right on the session's backend.
    // ------------------------------------------------------------------
    let out = session.materialize(&singles)?;
    let view = IntervalView::with_margin(session.backend(), &out, 0.05)?;
    println!("\nconfidence bounds with ±0.05 weight uncertainty:");
    for (tuple, bounds) in view.possible_with_bounds()? {
        println!("  {tuple}  conf ∈ [{:.3}, {:.3}]", bounds.lo, bounds.hi);
    }

    Ok(())
}
