//! Quickstart: the paper's running census-form example, end to end — through
//! the `maybms::Session` front door.
//!
//! Builds the or-set relation of the introduction (two survey forms with
//! ambiguous entries), cleans it with the SSN-uniqueness constraint, attaches
//! probabilities, opens a session on the probabilistic WSD, and runs one
//! prepared query on all worlds at once — streaming the possible answers and
//! computing tuple confidences — reproducing Figures 1–5, 22 and Example 11
//! of the paper.
//!
//! Run with: `cargo run --example quickstart -p maybms`

use maybms::prelude::*;
use maybms::{q, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --------------------------------------------------------------
    // 1. The two survey forms as an or-set relation (32 worlds).
    // --------------------------------------------------------------
    let schema = Schema::new("R", &["S", "N", "M"])?;
    let mut forms = OrSetRelation::new(schema);
    forms.push(vec![
        OrSet::of(vec![185i64, 785]),
        OrSet::certain("Smith"),
        OrSet::of(vec![1i64, 2]),
    ])?;
    forms.push(vec![
        OrSet::of(vec![185i64, 186]),
        OrSet::certain("Brown"),
        OrSet::of(vec![1i64, 2, 3, 4]),
    ])?;
    println!(
        "or-set relation describes {} possible worlds",
        forms.world_count()
    );

    // --------------------------------------------------------------
    // 2. Convert to a WSD and clean: social security numbers are unique.
    // --------------------------------------------------------------
    let mut wsd = forms.to_wsd()?;
    let ssn_unique = Dependency::Fd(FunctionalDependency::new("R", vec!["S"], vec!["N", "M"]));
    chase(&mut wsd, &[ssn_unique])?;
    normalize(&mut wsd)?;
    println!(
        "after enforcing the key constraint: {} worlds in {} components",
        wsd.rep()?.len(),
        wsd.component_count()
    );

    // --------------------------------------------------------------
    // 3. The probabilistic WSD of Figure 4 (weights from an extraction tool).
    // --------------------------------------------------------------
    let mut prob = maybms::core::wsd::example_census_wsd();
    println!("\nprobabilistic WSD (Figure 4):\n{prob}");

    // New evidence (§8): the person with SSN 785 is married (code 1).
    let married = Dependency::Egd(EqualityGeneratingDependency::implies(
        "R",
        "S",
        785i64,
        "M",
        CmpOp::Eq,
        1i64,
    ));
    chase(&mut prob, &[married])?;
    println!("after chasing S=785 ⇒ M=1 (Figure 22):\n{prob}");

    // --------------------------------------------------------------
    // 4. Open a session and prepare Q = π_S(σ_{M=1}(R)) once.  The builder
    //    typechecks against the WSD's catalog; `prepare` runs the optimizer
    //    a single time and fingerprints the plan.
    // --------------------------------------------------------------
    let mut session = Session::new(prob);
    let query = session.prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["S"]))?;
    println!("prepared {query}");

    // Stream the possible answers (all worlds at once).
    let answers: Vec<Tuple> = session.execute(&query)?.collect();
    println!(
        "possible answers to π_S(σ_M=1(R)): {} tuples",
        answers.len()
    );

    // --------------------------------------------------------------
    // 5. Confidences on the same prepared plan (Example 11 style).  This
    //    re-executes from the plan cache — no second optimizer run.
    // --------------------------------------------------------------
    println!("possible answers with confidences:");
    for (tuple, confidence) in session.confidence(&query)? {
        println!("  S = {}   conf = {confidence:.4}", tuple[0]);
    }
    println!("session: {}", session.summary());

    // --------------------------------------------------------------
    // 6. The same world-set in the uniform (UWSDT) representation.
    // --------------------------------------------------------------
    let uwsdt = from_wsd(session.backend())?;
    let stats = stats_for(&uwsdt, "R")?;
    println!(
        "\nUWSDT: {} template rows, {} placeholders, {} components, |C| = {}",
        stats.template_rows, stats.placeholders, stats.components, stats.c_size
    );
    Ok(())
}
