//! Durability end to end: open a durable session on the census WSD, apply
//! updates through the write-ahead log, kill the process mid-flight (no
//! close, plus a simulated torn WAL tail), recover, and verify the tuple
//! confidences are bit-for-bit unchanged.
//!
//! Run with: `cargo run --example durable_session -p maybms [store-dir]`
//! (the store defaults to `target/durable-session-demo`).

use maybms::prelude::*;
use maybms::{q, Session, UpdateExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/durable-session-demo".to_string());
    let _ = std::fs::remove_dir_all(&dir);

    // --------------------------------------------------------------
    // 1. First run: initialize the store and apply logged updates.
    // --------------------------------------------------------------
    let wsd = maybms::core::wsd::example_census_wsd();
    let mut session = Session::create_durable(&dir, wsd)?;
    println!("store initialized at {dir} (snapshot generation 0)");

    session.apply(&UpdateExpr::insert(
        "R",
        Tuple::from_iter([Value::int(999), Value::text("Davis"), Value::int(2)]),
    ))?;
    let mass = session.condition(&[Dependency::Egd(EqualityGeneratingDependency::implies(
        "R",
        "S",
        785i64,
        "M",
        CmpOp::Eq,
        1i64,
    ))])?;
    println!("conditioned on S=785 ⇒ M=1, surviving mass P(ψ) = {mass:.4}");

    let married = session.prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["N"]))?;
    let before = session.confidence(&married)?;
    println!("\nconfidences before the crash:");
    for (tuple, conf) in &before {
        println!("  {tuple}  conf = {conf:.6}");
    }
    println!("session stats: {}", session.stats());

    // --------------------------------------------------------------
    // 2. Crash: drop the session without closing, then tear the WAL
    //    tail as a power cut mid-append would.
    // --------------------------------------------------------------
    drop(session);
    let wal_path = std::path::Path::new(&dir).join(maybms::storage::wal::WAL_FILE);
    let mut wal_bytes = std::fs::read(&wal_path)?;
    wal_bytes.extend_from_slice(&[0x42, 0x00, 0x13, 0x37]); // a torn, half-written record
    std::fs::write(&wal_path, &wal_bytes)?;
    println!("\n-- crash -- (session dropped, WAL tail torn)");

    // --------------------------------------------------------------
    // 3. Recover: newest snapshot + WAL replay, torn tail truncated.
    // --------------------------------------------------------------
    let mut session = Session::open_durable(&dir)?;
    let durability = session
        .backend()
        .durability()
        .expect("durable sessions report durability stats");
    println!(
        "recovered: replayed {} WAL record(s), truncated {} torn byte(s)",
        durability.recovered_records, durability.torn_bytes_truncated
    );

    let married = session.prepare(q("R").select(Predicate::eq_const("M", 1i64)).project(["N"]))?;
    let after = session.confidence(&married)?;
    println!("\nconfidences after recovery:");
    for (tuple, conf) in &after {
        println!("  {tuple}  conf = {conf:.6}");
    }
    assert_eq!(before.len(), after.len(), "answer sets must agree");
    for ((t1, c1), (t2, c2)) in before.iter().zip(&after) {
        assert_eq!(t1, t2, "answer tuples must agree");
        assert_eq!(
            c1.to_bits(),
            c2.to_bits(),
            "confidence of {t1} must be bit-identical"
        );
    }
    println!("\nall confidences bit-identical across the crash ✓");

    // A checkpoint compacts the log for the next run.
    let generation = session.checkpoint()?;
    println!("checkpointed as snapshot generation {generation}");
    session.close()?;
    Ok(())
}
