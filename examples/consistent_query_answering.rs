//! Consistent query answering over an inconsistent database (§10).
//!
//! An HR feed violates the key `EMP → DEPT, SALARY`.  Instead of picking one
//! repair arbitrarily, the minimal repairs are materialized as a world-set
//! decomposition: certain data stays in one-row components, each conflict
//! cluster becomes one component whose local worlds are the possible
//! resolutions.  Queries — built with the fluent `maybms::q` builder — can
//! then report
//!
//! * the *consistent* answers (true in every repair),
//! * the *possible* answers (true in some repair), and
//! * per-answer support — the fraction of repairs backing it,
//!
//! and the repair world-set remains available for further cleaning: a
//! late-arriving constraint is chased to discard repairs instead of starting
//! over, and a `maybms::Session` keeps answering from the cleaned set.
//!
//! Run with: `cargo run -p maybms --example consistent_query_answering`

use maybms::prelude::*;
use maybms::{q, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // The dirty HR relation: alice and bob have conflicting records.
    // ------------------------------------------------------------------
    let mut emp = Relation::new(Schema::new("Emp", &["EMP", "DEPT", "SALARY"])?);
    for (name, dept, salary) in [
        ("alice", "sales", 1200i64),
        ("alice", "eng", 1200),
        ("bob", "eng", 2000),
        ("bob", "eng", 3000),
        ("carol", "hr", 1500),
        ("dave", "eng", 2600),
    ] {
        emp.push_values([Value::text(name), Value::text(dept), Value::int(salary)])?;
    }

    let (repairs, report) = repair_key_violations(&emp, &["EMP"])?;
    println!(
        "built the repair world-set: {} clean tuples, {} conflict clusters, {} repairs",
        report.clean_tuples, report.conflict_clusters, report.repair_count
    );

    // ------------------------------------------------------------------
    // Who works in engineering?
    // ------------------------------------------------------------------
    let eng = q("Emp")
        .select(Predicate::eq_const("DEPT", "eng"))
        .project(["EMP"])
        .lower();
    let certain = consistent_answers(&repairs, &eng)?;
    let possible = possible_answers(&repairs, &eng)?;
    println!("\nengineers in every repair (consistent answers):");
    for t in certain.rows() {
        println!("  {t}");
    }
    println!("engineers in some repair (possible answers):");
    for t in possible.rows() {
        println!("  {t}");
    }
    println!("per-answer support:");
    for (t, support) in maybms::apps::repairs::answers_with_support(&repairs, &eng)? {
        println!("  {t}  {:.0}% of repairs", support * 100.0);
    }

    // ------------------------------------------------------------------
    // A late constraint: salaries in engineering are at least 2500.
    // Chase it on the repair world-set to discard repairs, then re-ask
    // through a session on the cleaned set.
    // ------------------------------------------------------------------
    let constraint = Dependency::Egd(EqualityGeneratingDependency::implies(
        "Emp",
        "DEPT",
        "eng",
        "SALARY",
        CmpOp::Ge,
        2500i64,
    ));
    let mut cleaned = repairs.clone();
    let surviving = chase(&mut cleaned, std::slice::from_ref(&constraint))?;
    println!(
        "\nafter chasing \"eng salaries ≥ 2500\": {:.0}% of the repairs survive",
        surviving * 100.0
    );
    let mut session = Session::new(cleaned);
    let salaries = session.prepare(
        q("Emp")
            .select(Predicate::eq_const("EMP", "bob"))
            .project(["SALARY"]),
    )?;
    println!("bob's possible salaries afterwards:");
    for (t, support) in session.confidence(&salaries)? {
        println!("  {t}  {:.0}%", support * 100.0);
    }

    // ------------------------------------------------------------------
    // The same machinery drives the medical scenario of §10.
    // ------------------------------------------------------------------
    let scenario = MedicalScenario::demo();
    let patients = vec![
        PatientRecord::with_candidates(1, ["flu", "migraine"]),
        PatientRecord::unknown(2).observed("amlodipine"),
    ];
    let medical = scenario.build_wsd(&patients)?;
    println!("\npossible diagnoses of patient 2 (observed medication: amlodipine):");
    for (diagnosis, p) in maybms::apps::medical::possible_diagnoses(&medical, 2)? {
        println!("  {diagnosis}  p = {p:.2}");
    }

    Ok(())
}
