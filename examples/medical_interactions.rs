//! Medical data with interdependent clusters (§10, "Medical data").
//!
//! Medications, diseases and procedures interact: some medications must not
//! be combined, some procedures are forbidden for some conditions.  Following
//! the paper's suggestion, interdependent values are kept inside one
//! component while independent information stays in separate components, so a
//! patient record with an incompletely specified history is a small set of
//! possible worlds.
//!
//! This example models a patient whose diagnosis and medication are uncertain
//! but correlated (the joint distribution lives in one component), chases a
//! drug-interaction constraint when a second prescription arrives, and asks a
//! `maybms::Session` for the possible treatments with their confidences.
//!
//! Run with: `cargo run --example medical_interactions -p maybms`

use maybms::prelude::*;
use maybms::{q, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --------------------------------------------------------------
    // 1. The patient record: PATIENT[CASE, DIAGNOSIS, DRUG, DOSE].
    //    Diagnosis and drug are correlated: the extraction from the (partly
    //    illegible) chart gives a joint distribution over (diagnosis, drug).
    // --------------------------------------------------------------
    let mut wsd = Wsd::new();
    wsd.register_relation("PATIENT", &["CASE", "DIAGNOSIS", "DRUG", "DOSE"], 2)?;

    // Tuple t1: the current episode.
    wsd.set_certain(FieldId::new("PATIENT", 0, "CASE"), Value::int(1))?;
    let mut episode = Component::new(vec![
        FieldId::new("PATIENT", 0, "DIAGNOSIS"),
        FieldId::new("PATIENT", 0, "DRUG"),
    ]);
    episode.push_row(
        vec![Value::text("hypertension"), Value::text("lisinopril")],
        0.5,
    )?;
    episode.push_row(
        vec![Value::text("hypertension"), Value::text("amlodipine")],
        0.2,
    )?;
    episode.push_row(
        vec![Value::text("migraine"), Value::text("propranolol")],
        0.3,
    )?;
    wsd.add_component(episode)?;
    wsd.set_alternatives(
        FieldId::new("PATIENT", 0, "DOSE"),
        vec![(Value::int(10), 0.6), (Value::int(20), 0.4)],
    )?;

    // Tuple t2: an older episode, fully certain.
    wsd.set_certain(FieldId::new("PATIENT", 1, "CASE"), Value::int(2))?;
    wsd.set_certain(
        FieldId::new("PATIENT", 1, "DIAGNOSIS"),
        Value::text("asthma"),
    )?;
    wsd.set_certain(
        FieldId::new("PATIENT", 1, "DRUG"),
        Value::text("salbutamol"),
    )?;
    wsd.set_certain(FieldId::new("PATIENT", 1, "DOSE"), Value::int(100))?;
    wsd.validate()?;

    println!(
        "patient record describes {} possible worlds",
        wsd.rep()?.len()
    );

    // --------------------------------------------------------------
    // 2. Clinical knowledge arrives: because of the documented asthma,
    //    non-selective beta blockers are contraindicated — the current drug
    //    cannot be propranolol.  Clean the record with an EGD.
    // --------------------------------------------------------------
    let contraindication = Dependency::Egd(EqualityGeneratingDependency::new(
        "PATIENT",
        vec![AttrComparison::new("CASE", CmpOp::Eq, 1i64)],
        AttrComparison::new("DRUG", CmpOp::Ne, "propranolol"),
    ));
    chase(&mut wsd, &[contraindication])?;
    normalize(&mut wsd)?;
    println!(
        "after applying the beta-blocker contraindication: {} worlds remain",
        wsd.rep()?.len()
    );

    // --------------------------------------------------------------
    // 3. What are the possible (diagnosis, drug) treatments now, and how
    //    likely is each?  One session over the cleaned record answers both
    //    this and the follow-up question from prepared plans.
    // --------------------------------------------------------------
    let mut session = Session::new(wsd);
    let treatments = session.prepare(
        q("PATIENT")
            .select(Predicate::eq_const("CASE", 1i64))
            .project(["DIAGNOSIS", "DRUG"]),
    )?;
    println!("\npossible treatments of the current episode:");
    for (tuple, confidence) in session.confidence(&treatments)? {
        println!(
            "  {:<14} {:<12} conf = {confidence:.3}",
            tuple[0].to_string(),
            tuple[1].to_string()
        );
    }

    // --------------------------------------------------------------
    // 4. Commonly asked cross-world question: is the hypertension diagnosis
    //    certain?  (It is, once propranolol/migraine is excluded.)
    // --------------------------------------------------------------
    let diagnosis = session.prepare(
        q("PATIENT")
            .select(Predicate::eq_const("CASE", 1i64))
            .project(["DIAGNOSIS"]),
    )?;
    let hypertension = Tuple::from_iter([Value::text("hypertension")]);
    let conf_hypertension = session
        .confidence(&diagnosis)?
        .into_iter()
        .find(|(t, _)| *t == hypertension)
        .map(|(_, c)| c)
        .unwrap_or(0.0);
    println!("\nconf(diagnosis = hypertension) = {conf_hypertension:.3}");
    println!("session: {}", session.summary());

    // --------------------------------------------------------------
    // 5. The record in the uniform representation (what a hospital DBMS
    //    would store): template + tiny component tables.
    // --------------------------------------------------------------
    let uwsdt = from_wsd(session.backend())?;
    let stats = stats_for(&uwsdt, "PATIENT")?;
    println!(
        "\nUWSDT storage: {} template rows, {} placeholders, {} components, |C| = {}",
        stats.template_rows, stats.placeholders, stats.components, stats.c_size
    );
    Ok(())
}
