//! Managing an inconsistent database through its minimal repairs (§10,
//! "Inconsistent databases").
//!
//! An inconsistent database violates its integrity constraints; one classical
//! way to live with the inconsistency is to consider all *minimal repairs* —
//! consistent instances obtained with a minimal number of changes — as the
//! set of possible worlds.  Repairs overlap almost completely, which makes
//! them a perfect fit for (U)WSDTs: the consistent part of the data lives in
//! the template, the differences between repairs live in small components.
//!
//! This example builds an employee relation that violates the key constraint
//! `EMP → DEPT, SALARY`, represents all minimal value-repairs as a WSD, and
//! queries across the repairs through one `maybms::Session` — reporting both
//! *certain* answers (true in every repair — the consistent query answers of
//! Arenas et al.) and *possible* answers with their confidences.
//!
//! Run with: `cargo run --example inconsistent_repairs -p maybms`

use maybms::prelude::*;
use maybms::{q, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --------------------------------------------------------------
    // 1. A dirty payroll relation: EMP 102 appears twice with conflicting
    //    department/salary values (e.g. after merging two sources).
    // --------------------------------------------------------------
    let schema = Schema::new("PAYROLL", &["EMP", "DEPT", "SALARY"])?;
    let mut dirty = OrSetRelation::new(schema);
    dirty.push(vec![
        OrSet::certain(101i64),
        OrSet::certain("sales"),
        OrSet::certain(50i64),
    ])?;
    // Source A says (research, 65), source B says (marketing, 60): the
    // repairs keep one of the two variants for each conflicting field.
    dirty.push(vec![
        OrSet::certain(102i64),
        OrSet::of(vec!["research", "marketing"]),
        OrSet::of(vec![65i64, 60]),
    ])?;
    dirty.push(vec![
        OrSet::certain(103i64),
        OrSet::of(vec!["sales", "support"]),
        OrSet::certain(55i64),
    ])?;

    println!(
        "dirty relation admits {} candidate repairs before cleaning",
        dirty.world_count()
    );

    // --------------------------------------------------------------
    // 2. Open a session over the candidate repairs and *condition* on the
    //    integrity constraints — the update-language verb that keeps
    //    exactly the worlds satisfying the key and renormalizes, replacing
    //    the old "chase the WSD by hand, then open a session" dance.  The
    //    returned mass is the fraction of candidates that were consistent.
    // --------------------------------------------------------------
    let mut session = Session::new(dirty.to_wsd()?);
    let consistent_mass = session.condition(&[Dependency::Fd(FunctionalDependency::new(
        "PAYROLL",
        vec!["EMP"],
        vec!["DEPT", "SALARY"],
    ))])?;
    println!(
        "{} repairs survive conditioning (P(consistent) = {consistent_mass:.2}), \
represented by {} components",
        session.backend().rep()?.len(),
        session.backend().component_count()
    );

    // --------------------------------------------------------------
    // 3. Query across all repairs through the same session: who earns at
    //    least 55?  `confidence` separates the certain answers (conf = 1)
    //    from the merely possible ones.
    // --------------------------------------------------------------
    let well_paid = session.prepare(
        q("PAYROLL")
            .select(Predicate::cmp_const("SALARY", CmpOp::Ge, 55i64))
            .project(["EMP"]),
    )?;

    println!("\nemployees earning ≥ 55, across all repairs:");
    for (tuple, confidence) in session.confidence(&well_paid)? {
        let certainty = if confidence >= 1.0 - 1e-9 {
            "certain answer"
        } else {
            "possible answer"
        };
        println!("  EMP {}  conf = {confidence:.2}  ({certainty})", tuple[0]);
    }

    // --------------------------------------------------------------
    // 4. Unlike consistent-query-answering systems, the result is itself a
    //    world-set: we can keep querying the same session.  Which departments
    //    could the well-paid employees work in?
    // --------------------------------------------------------------
    let follow_up = session.prepare(
        q("PAYROLL")
            .select(Predicate::cmp_const("SALARY", CmpOp::Ge, 55i64))
            .project(["DEPT"]),
    )?;
    println!("\npossible departments of well-paid employees:");
    for (tuple, confidence) in session.confidence(&follow_up)? {
        println!("  {}  conf = {confidence:.2}", tuple[0]);
    }

    // --------------------------------------------------------------
    // 5. Updates compose with repairs: a raise lands in *every* repair, and
    //    further constraints keep conditioning the same session.
    // --------------------------------------------------------------
    session.apply(&UpdateExpr::modify(
        "PAYROLL",
        Predicate::eq_const("EMP", 103i64),
        vec![("SALARY".to_string(), Value::int(58))],
    ))?;
    let raised = session.prepare(
        q("PAYROLL")
            .select(Predicate::eq_const("EMP", 103i64))
            .project(["SALARY"]),
    )?;
    println!("\nEMP 103's salary after the raise, across repairs:");
    for (tuple, confidence) in session.confidence(&raised)? {
        println!("  {}  conf = {confidence:.2}", tuple[0]);
    }
    println!("\nsession: {}", session.summary());
    Ok(())
}
