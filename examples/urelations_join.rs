//! Join-heavy querying: WSD composition vs. U-relation descriptors.
//!
//! Section 4 of the paper warns that selections with join conditions compose
//! WSD components and can blow the representation up; U-relations (the
//! follow-up representation implemented in `ws-urel`) keep positive queries
//! purely relational by annotating tuples with world-set descriptors.  This
//! example runs the §1 "pairs of persons with different social security
//! numbers" query on both representations — the *same* fluent query through
//! two `maybms::Session`s — compares the representation sizes and verifies
//! that the answers (and their confidences) agree.
//!
//! Run with: `cargo run -p maybms --example urelations_join`

use maybms::prelude::*;
use maybms::{q, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running census example of the paper (Figure 4): 24 worlds.
    let wsd = maybms::core::wsd::example_census_wsd();
    println!("world-set: {} worlds", wsd.world_count());

    // The §1 query: pairs of distinct social security numbers.  Written once,
    // prepared per session — each backend's catalog typechecks it.
    let pairs = q("R")
        .project(["S"])
        .rename("S", "S1")
        .product(q("R").project(["S"]).rename("S", "S2"))
        .select(Predicate::cmp_attr("S1", CmpOp::Ne, "S2"));

    // --- WSD evaluation (components may need to be composed) -------------
    let mut wsd_session = Session::new(wsd.clone());
    let wsd_rows_before: usize = wsd_session
        .backend()
        .components()
        .map(|(_, c)| c.len())
        .sum();
    let prepared = wsd_session.prepare(pairs.clone())?;
    wsd_session.materialize(&prepared)?;
    let wsd_rows_after: usize = wsd_session
        .backend()
        .components()
        .map(|(_, c)| c.len())
        .sum();
    let wsd_answers = wsd_session.confidence(&prepared)?;

    // --- U-relation evaluation (descriptors conjoined pairwise) ----------
    let mut urel_session = Session::new(maybms::urel::from_wsd(&wsd)?);
    let urel_rows_before = urel_session.backend().total_rows();
    let prepared = urel_session.prepare(pairs)?;
    let out = urel_session.materialize(&prepared)?;
    let urel_rows_after = urel_session.backend().total_rows();
    let urel_answers = urel_session.confidence(&prepared)?;
    let _ = out;

    println!("\nrepresentation size (rows):");
    println!("  WSD        {wsd_rows_before} → {wsd_rows_after}");
    println!("  U-relation {urel_rows_before} → {urel_rows_after}");

    println!("\npossible pairs of distinct SSNs (confidence, both systems):");
    for (tuple, wsd_conf) in &wsd_answers {
        let urel_conf = urel_answers
            .iter()
            .find(|(t, _)| t == tuple)
            .map(|(_, c)| *c)
            .unwrap_or(0.0);
        assert!(
            (wsd_conf - urel_conf).abs() < 1e-9,
            "the two systems disagree"
        );
        println!("  {tuple}  conf = {wsd_conf:.3}");
    }

    // --- The related-work size comparison against ULDB x-relations -------
    let mut orset = OrSetRelation::new(Schema::new("O", &["A", "B", "C", "D"]).unwrap());
    orset.push(vec![
        OrSet::of(vec![1i64, 2]),
        OrSet::of(vec![1i64, 2, 3]),
        OrSet::of(vec![0i64, 1]),
        OrSet::of(vec![4i64, 5]),
    ])?;
    let as_wsd = orset.to_wsd()?;
    let as_uldb = UldbRelation::from_or_relation(&orset)?;
    let wsd_cells: usize = as_wsd.components().map(|(_, c)| c.len()).sum();
    println!("\none or-set tuple with fields of sizes 2·3·2·2:");
    println!("  WSD component rows       = {wsd_cells}");
    println!(
        "  ULDB x-tuple alternatives = {}",
        as_uldb.alternative_count()
    );

    Ok(())
}
