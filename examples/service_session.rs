//! The service layer end to end: start a `ws-server` over a durable store,
//! talk to it through the binary wire protocol from several concurrent
//! clients, watch the group-commit batcher coalesce their writes, and prove
//! the store recovers to the served state after a restart.
//!
//! Run with: `cargo run --example service_session -p maybms [store-dir]`
//! (the store defaults to `target/service-session-demo`).

use std::time::Duration;

use maybms::prelude::*;
use maybms::storage::{DirVfs, SyncPolicy, Vfs};
use maybms::{q, AnyBackend, UpdateExpr};
use ws_server::{spawn, Client, ConcurrentStore};

const WRITERS: usize = 4;
const PER_WRITER: i64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/service-session-demo".to_string());
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // --------------------------------------------------------------
    // 1. Start the service: a durable store on disk, writes coalesced
    //    by the group-commit batcher, served on an ephemeral TCP port.
    // --------------------------------------------------------------
    let backend = AnyBackend::Wsd(maybms::core::wsd::example_census_wsd());
    let vfs: Box<dyn Vfs> = Box::new(DirVfs::open(&dir)?);
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create(
        vfs,
        backend,
        SyncPolicy::GroupCommit {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
        },
    )?;
    let handle = spawn("127.0.0.1:0", store.clone())?;
    let addr = handle.addr();
    println!("serving {dir} on {addr}");

    // --------------------------------------------------------------
    // 2. A read session: prepare once, execute against the newest
    //    committed snapshot (the server re-pins per request).
    // --------------------------------------------------------------
    let mut reader = Client::connect(addr)?;
    println!("connected to a {} store", reader.backend_name());
    let names = reader.prepare(q("R").project(["N"]))?;
    println!("prepared: {}", names.display());
    let before = reader.execute(&names)?;
    println!("{} possible names before the writers run", before.len());

    // --------------------------------------------------------------
    // 3. Concurrent writers: each with its own connection, racing
    //    inserts into the same relation.  The committer coalesces
    //    them — watch commit-batches stay well under the update count.
    // --------------------------------------------------------------
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let mut workers = Vec::new();
        for writer in 0..WRITERS {
            workers.push(
                scope.spawn(move || -> Result<f64, ws_server::ServiceError> {
                    let mut client = Client::connect(addr)?;
                    let mut mass = 0.0;
                    for n in 0..PER_WRITER {
                        let row = writer as i64 * PER_WRITER + n;
                        mass += client.apply(&UpdateExpr::insert(
                            "R",
                            Tuple::from_iter([
                                Value::int(9_000 + row),
                                Value::text(format!("Writer{writer}-{n}")),
                                Value::int(row % 4),
                            ]),
                        ))?;
                    }
                    client.close()?;
                    Ok(mass)
                }),
            );
        }
        for worker in workers {
            worker.join().expect("a writer panicked")?;
        }
        Ok(())
    })?;
    let total = WRITERS as i64 * PER_WRITER;
    println!("{WRITERS} writers committed {total} inserts");

    let after = reader.execute(&names)?;
    assert_eq!(after.len(), before.len() + total as usize);
    println!(
        "{} possible names after (snapshot re-pinned per request)",
        after.len()
    );

    let stats = store.stats();
    println!(
        "store counters: {} updates in {} commit batches (mean batch {:.1})",
        stats.batched_updates,
        stats.commit_batches,
        stats.mean_batch()
    );
    println!("session stats: {}", reader.stats()?);

    // --------------------------------------------------------------
    // 4. Checkpoint, stop the service, and recover the store from
    //    disk: the reopened image must answer exactly like the
    //    served one.
    // --------------------------------------------------------------
    let generation = reader.checkpoint()?;
    println!("checkpointed as snapshot generation {generation}");
    let served_seq = store.seq();
    reader.close()?;
    handle.shutdown()?;
    store.close()?;
    println!("-- service stopped --");

    let vfs: Box<dyn Vfs> = Box::new(DirVfs::open(&dir)?);
    let reopened: ConcurrentStore<AnyBackend> =
        ConcurrentStore::open(vfs, SyncPolicy::EveryRecord)?;
    let snapshot = reopened.snapshot();
    assert_eq!(snapshot.generation, generation);
    let mut session = maybms::Session::new(snapshot.backend.clone());
    let plan = session.prepare(q("R").project(["N"]))?;
    let recovered = session.execute(&plan)?.count();
    assert_eq!(
        recovered,
        after.len(),
        "recovery must answer like the service"
    );
    reopened.close()?;
    println!(
        "recovered generation {generation} (served seq {served_seq}): \
         {recovered} names, identical to the served answer ✓"
    );
    Ok(())
}
