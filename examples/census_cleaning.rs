//! Census data cleaning and querying at (scaled-down) scale — the workflow of
//! the paper's evaluation section (§9), driven through `maybms::Session`.
//!
//! Generates a synthetic IPUMS-like census relation, injects or-set noise at
//! a configurable density, loads it into a UWSDT, chases the twelve
//! dependencies of Figure 25, and evaluates the queries Q1–Q6 of Figure 29 on
//! the cleaned representation — one session, six prepared plans — printing
//! the Figure-27-style characteristics of every result.  The single-world
//! baseline streams through the volcano cursor of `ws-relational` without
//! materializing anything.
//!
//! Run with: `cargo run --release --example census_cleaning -p maybms -- [tuples] [density]`
//! (defaults: 20000 tuples, 0.1% density).

use maybms::prelude::*;
use maybms::Session;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let tuples: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let density: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.001);

    println!(
        "generating {tuples} census tuples, or-set density {:.3}%",
        density * 100.0
    );
    let scenario = CensusScenario::new(tuples, density, 0xC0FFEE);
    let noise = scenario.noise();
    println!(
        "injected {} or-sets (average size {:.2})",
        noise.len(),
        maybms::census::average_or_set_size(&noise)
    );

    // Load the dirty relation and clean it with the chase.
    let start = Instant::now();
    let mut uwsdt = scenario.dirty_uwsdt()?;
    println!(
        "loaded dirty UWSDT in {:.3}s",
        start.elapsed().as_secs_f64()
    );
    let before = stats_for(&uwsdt, maybms::census::RELATION_NAME)?;

    let start = Instant::now();
    maybms::uwsdt::chase::chase(&mut uwsdt, &maybms::census::census_dependencies())?;
    let chase_time = start.elapsed();
    let after = stats_for(&uwsdt, maybms::census::RELATION_NAME)?;
    println!(
        "chased the 12 dependencies of Fig. 25 in {:.3}s",
        chase_time.as_secs_f64()
    );
    println!(
        "  components: {} -> {} (multi-placeholder: {} -> {}), |C|: {} -> {}",
        before.components,
        after.components,
        before.components_multi,
        after.components_multi,
        before.c_size,
        after.c_size
    );

    // Evaluate Q1–Q6 on the cleaned UWSDT (one session, prepared plans) and
    // on the single clean world (streamed through the cursor).
    let one_world = scenario.one_world();
    let mut session = Session::new(uwsdt);
    println!(
        "\n{:<4} {:>10} {:>8} {:>9} {:>9} {:>10} {:>12}",
        "query", "rows |R|", "#comp", "#comp>1", "|C|", "uwsdt[s]", "one-world[s]"
    );
    for (label, query) in maybms::census::all_queries() {
        let prepared = session.prepare(query)?;
        let start = Instant::now();
        let out = session.materialize(&prepared)?;
        let uwsdt_time = start.elapsed();
        let stats = stats_for(session.backend(), &out)?;

        let start = Instant::now();
        let baseline_rows = Cursor::open(&one_world, prepared.plan())?.try_count()?;
        let baseline_time = start.elapsed();

        println!(
            "{:<4} {:>10} {:>8} {:>9} {:>9} {:>10.3} {:>12.3}",
            label,
            stats.template_rows,
            stats.components,
            stats.components_multi,
            stats.c_size,
            uwsdt_time.as_secs_f64(),
            baseline_time.as_secs_f64()
        );
        let _ = baseline_rows;
    }
    println!("\nsession: {}", session.summary());

    println!("\nkey observation (as in the paper): the representation of every query answer");
    println!("stays close to the size of a single world, and UWSDT query time tracks the");
    println!("one-world baseline because almost all work happens on the template relation.");
    Ok(())
}
