//! Observability end to end: run an *observed* ws-server over an in-memory
//! store, push a mixed read/write workload through it from concurrent
//! clients, then read everything the observer saw — the Prometheus scrape
//! (over the wire verb *and* over plain HTTP), the slow-query log, and a
//! per-operator `explain_analyze` profile of the workload's main query.
//!
//! Run with: `cargo run --example observed_service -p maybms`

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use maybms::obs::Observer;
use maybms::prelude::*;
use maybms::storage::{MemVfs, SyncPolicy, Vfs};
use maybms::{q, AnyBackend, Session, UpdateExpr};
use ws_server::{serve_metrics, spawn, Client, ConcurrentStore};

const CLIENTS: usize = 3;
const ROUNDS: i64 = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --------------------------------------------------------------
    // 1. One Observer for the whole service: WAL timings, committer
    //    batch sizes, per-operator kernel histograms and query spans
    //    all land in this registry.  Threshold 0 records every query
    //    in the slow-query ring so the demo has something to show.
    // --------------------------------------------------------------
    let observer = Arc::new(Observer::new());
    observer.set_slow_query_threshold(Some(Duration::ZERO));

    let backend = AnyBackend::Wsd(maybms::core::wsd::example_census_wsd());
    let vfs: Box<dyn Vfs> = Box::new(MemVfs::new());
    let store: ConcurrentStore<AnyBackend> = ConcurrentStore::create_observed(
        vfs,
        backend,
        SyncPolicy::GroupCommit {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
        },
        Arc::clone(&observer),
    )?;
    let handle = spawn("127.0.0.1:0", store.clone())?;
    let scrape = serve_metrics("127.0.0.1:0", Arc::clone(&observer))?;
    println!(
        "serving on {}, metrics on http://{}/metrics",
        handle.addr(),
        scrape.addr()
    );

    // --------------------------------------------------------------
    // 2. A mixed workload: concurrent clients interleaving reads
    //    (execute + tuple confidence) with durable inserts.
    // --------------------------------------------------------------
    let answered: usize = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..CLIENTS {
            let addr = handle.addr();
            workers.push(
                scope.spawn(move || -> Result<usize, ws_server::ServiceError> {
                    let mut client = Client::connect(addr)?;
                    let plan = client.prepare(q("R").project(["S"]))?;
                    let mut rows = 0;
                    for round in 0..ROUNDS {
                        rows += client.execute(&plan)?.len();
                        rows += client.confidence(&plan)?.len();
                        let id = worker as i64 * ROUNDS + round;
                        client.apply(&UpdateExpr::insert(
                            "R",
                            Tuple::from_iter([200 + id, 300 + id, 400 + id]),
                        ))?;
                    }
                    client.close()?;
                    Ok(rows)
                }),
            );
        }
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread").expect("client round-trip"))
            .sum()
    });
    println!("{CLIENTS} clients answered {answered} rows over {ROUNDS} rounds each");

    // --------------------------------------------------------------
    // 3. Scrape the registry both ways: the wire verb and plain HTTP.
    // --------------------------------------------------------------
    let mut client = Client::connect(handle.addr())?;
    let wire_text = client.metrics()?;
    let mut http = std::net::TcpStream::connect(scrape.addr())?;
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: demo\r\n\r\n")?;
    let mut http_text = String::new();
    http.read_to_string(&mut http_text)?;
    assert!(http_text.starts_with("HTTP/1.1 200 OK"));

    println!("\n== metrics (a selection of the scrape) ==");
    for line in wire_text.lines().filter(|l| {
        [
            "ws_exec_op_",
            "ws_wal_",
            "ws_store_commit_batch_size",
            "ws_span_",
        ]
        .iter()
        .any(|p| l.starts_with(p))
            && (l.contains("_count ") || !l.contains("quantile"))
    }) {
        println!("  {line}");
    }

    // --------------------------------------------------------------
    // 4. The slow-query log: threshold 0 means every query is "slow",
    //    each with its session/request ids and rendered plan.
    // --------------------------------------------------------------
    println!("\n== slow-query log (threshold 0, newest last) ==");
    for event in observer.slow_queries() {
        println!("  {}", event.render_line());
    }

    // --------------------------------------------------------------
    // 5. explain_analyze: a local session over the *served* state
    //    (the newest snapshot), profiling the workload's main query
    //    operator by operator.
    // --------------------------------------------------------------
    let snapshot = store.snapshot();
    let mut session = Session::new(snapshot.backend.clone());
    let prepared = session.prepare(q("R").project(["S"]))?;
    let profile = session.explain_analyze(&prepared)?;
    println!("\n== explain_analyze over the served state ==");
    print!("{profile}");

    client.shutdown_server()?;
    handle.shutdown()?;
    scrape.shutdown()?;
    store.close()?;
    println!("\ndone.");
    Ok(())
}
